"""Policy coverage — Definitions 9 and 10, Algorithm 1.

Two coverage semantics are provided, because the paper itself uses two:

``compute_coverage``
    Definition 9 exactly: set semantics over ranges,
    ``#(Range_Px ∩ Range_Py) / #Range_Py``.  This is what Figure 3's
    3/6 = 50 % uses.

``compute_entry_coverage``
    Trace (multiset) semantics: the fraction of *audit entries* whose
    ground rule is covered by the policy range.  Section 5 computes
    3/10 = 30 % on Table 1 this way — the five ``Referral:Registration:
    Nurse`` entries are one ground rule but five entries.  Set semantics
    on the same data would give 3/6 again; see EXPERIMENTS.md for the
    discrepancy note.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import CoverageError
from repro.obs.metrics import CARDINALITY_BUCKETS
from repro.obs.runtime import get_registry
from repro.policy.grounding import Grounder, Range
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """The result of one coverage computation.

    ``ratio`` is the paper's coverage number.  ``overlap``, ``covering``
    and ``reference`` keep the ranges around so callers (gap analysis,
    pruning, reports) need not recompute them.
    """

    ratio: float
    overlap: Range
    covering: Range
    reference: Range

    @property
    def complete(self) -> bool:
        """Definition 10: the reference range is fully covered."""
        return self.overlap == self.reference

    @property
    def uncovered(self) -> Range:
        """Reference ground rules the covering policy misses."""
        return self.reference - self.overlap

    def __str__(self) -> str:
        return (
            f"coverage {self.ratio:.1%} "
            f"({self.overlap.cardinality}/{self.reference.cardinality} ground rules)"
        )


def compute_coverage(
    policy_x: Policy,
    policy_y: Policy,
    vocabulary: Vocabulary,
    grounder: Grounder | None = None,
) -> CoverageReport:
    """Algorithm 1: coverage of ``policy_x`` in relation to ``policy_y``.

    Following Definition 9 the result is the fraction of ``policy_y``'s
    range that ``policy_x``'s range intersects.  Raises
    :class:`~repro.errors.CoverageError` when ``policy_y`` has an empty
    range (the ratio would be 0/0).

    Pass a shared :class:`~repro.policy.grounding.Grounder` when computing
    many coverages over one vocabulary; a private one is built otherwise.
    """
    if grounder is None:
        grounder = Grounder(vocabulary)
    elif grounder.vocabulary is not vocabulary:
        raise CoverageError("grounder and coverage call use different vocabularies")
    reg = get_registry()
    with reg.span("repro_coverage_compute", kind="set"):
        range_x = grounder.range_of(policy_x)
        range_y = grounder.range_of(policy_y)
        if range_y.cardinality == 0:
            raise CoverageError(
                f"reference policy {policy_y.name!r} has an empty range; "
                "coverage is undefined"
            )
        overlap = range_x & range_y
        ratio = overlap.cardinality / range_y.cardinality
    if reg.enabled:
        reg.counter("repro_coverage_computations_total", kind="set").inc()
        reg.counter("repro_coverage_recompute_total").inc()
        cardinality = reg.histogram(
            "repro_coverage_range_cardinality", buckets=CARDINALITY_BUCKETS
        )
        cardinality.observe(range_x.cardinality)
        cardinality.observe(range_y.cardinality)
    return CoverageReport(ratio=ratio, overlap=overlap, covering=range_x, reference=range_y)


@dataclass(frozen=True, slots=True)
class EntryCoverageReport:
    """Entry-weighted coverage over an ordered trace of ground rules."""

    ratio: float
    matched: int
    total: int
    covering: Range
    uncovered_entries: tuple[int, ...]

    def __str__(self) -> str:
        return f"entry coverage {self.ratio:.1%} ({self.matched}/{self.total} entries)"


def compute_entry_coverage(
    policy_x: Policy,
    entries: Iterable[Rule],
    vocabulary: Vocabulary,
    grounder: Grounder | None = None,
) -> EntryCoverageReport:
    """Entry-weighted coverage: fraction of ``entries`` inside ``Range_Px``.

    ``entries`` is an ordered trace of (usually ground) rules — one per
    audit entry.  Composite entries count as matched only when their whole
    ground expansion is covered.  Raises :class:`CoverageError` on an empty
    trace.
    """
    if grounder is None:
        grounder = Grounder(vocabulary)
    elif grounder.vocabulary is not vocabulary:
        raise CoverageError("grounder and coverage call use different vocabularies")
    reg = get_registry()
    with reg.span("repro_coverage_compute", kind="entry"):
        range_x = grounder.range_of(policy_x)
        covering_mask = range_x.mask
        matched = 0
        total = 0
        misses: list[int] = []
        for index, entry in enumerate(entries):
            total += 1
            # range_x came from this grounder, so both masks share one interner
            # and "whole expansion covered" is a single bitwise expression.
            if grounder.ground_mask(entry) & ~covering_mask == 0:
                matched += 1
            else:
                misses.append(index)
    if total == 0:
        raise CoverageError("entry coverage over an empty trace is undefined")
    if reg.enabled:
        reg.counter("repro_coverage_computations_total", kind="entry").inc()
        reg.counter("repro_coverage_recompute_total").inc()
        reg.histogram(
            "repro_coverage_range_cardinality", buckets=CARDINALITY_BUCKETS
        ).observe(range_x.cardinality)
    return EntryCoverageReport(
        ratio=matched / total,
        matched=matched,
        total=total,
        covering=range_x,
        uncovered_entries=tuple(misses),
    )


def completely_covers(
    policy_x: Policy, policy_y: Policy, vocabulary: Vocabulary
) -> bool:
    """Definition 10: does ``policy_x`` completely cover ``policy_y``?"""
    return compute_coverage(policy_x, policy_y, vocabulary).complete
