"""Policy coverage (Section 3.2 of the paper).

Public surface:

- :func:`~repro.coverage.engine.compute_coverage` — Algorithm 1 /
  Definition 9 (set semantics).
- :func:`~repro.coverage.engine.compute_entry_coverage` — the
  entry-weighted semantics Section 5 uses on Table 1.
- :func:`~repro.coverage.engine.completely_covers` — Definition 10.
- :func:`~repro.coverage.gaps.analyse_gaps` — paper-style deviation
  explanations for every uncovered access.
- :class:`~repro.coverage.incremental.IncrementalCoverage` — streaming
  tracker for the refinement loop.
"""

from repro.coverage.engine import (
    CoverageReport,
    EntryCoverageReport,
    completely_covers,
    compute_coverage,
    compute_entry_coverage,
)
from repro.coverage.gaps import Deviation, GapReport, analyse_gaps
from repro.coverage.incremental import IncrementalCoverage
from repro.coverage.trends import (
    AttributeCoverage,
    WindowPoint,
    coverage_by_attribute,
    coverage_series,
)

__all__ = [
    "AttributeCoverage",
    "WindowPoint",
    "coverage_by_attribute",
    "coverage_series",
    "CoverageReport",
    "Deviation",
    "EntryCoverageReport",
    "GapReport",
    "IncrementalCoverage",
    "analyse_gaps",
    "completely_covers",
    "compute_coverage",
    "compute_entry_coverage",
]
