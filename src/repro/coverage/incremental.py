"""Incremental coverage tracking for streaming audit entries.

The PRIMA loop runs "at regular intervals or at the request of the
stakeholders"; recomputing Algorithm 1 from scratch over an ever-growing
audit log is wasteful.  :class:`IncrementalCoverage` maintains both
coverage semantics online:

- entries stream in via :meth:`observe` (a counter per distinct ground
  rule keeps multiset information);
- policy-store rules stream in via :meth:`add_rule` (newly covered ground
  rules are credited retroactively to all previously observed entries).

Both operations are amortised O(ground-expansion) instead of O(log size).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import CoverageError
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


class IncrementalCoverage:
    """Online tracker of set- and entry-coverage of a policy over a trace."""

    def __init__(self, vocabulary: Vocabulary, policy: Policy | None = None) -> None:
        self.vocabulary = vocabulary
        self._grounder = Grounder(vocabulary)
        self._covered: set[Rule] = set()
        self._entry_counts: Counter[Rule] = Counter()
        self._matched_entries = 0
        self._total_entries = 0
        if policy is not None:
            for rule in policy:
                self.add_rule(rule)

    # ------------------------------------------------------------------
    # streaming inputs
    # ------------------------------------------------------------------
    def observe(self, entry_rule: Rule) -> bool:
        """Record one audit entry; returns whether it was covered.

        Composite entries are reduced to their ground expansion; the entry
        counts as covered only when the whole expansion is covered (the
        same convention as :func:`compute_entry_coverage`).
        """
        expansion = self._grounder.ground_rules(entry_rule)
        covered = all(ground in self._covered for ground in expansion)
        for ground in expansion:
            self._entry_counts[ground] += 1
        self._total_entries += 1
        if covered:
            self._matched_entries += 1
        return covered

    def add_rule(self, rule: Rule) -> int:
        """Add one policy rule; returns how many new ground rules it covers.

        Entry-coverage credit is recomputed for the ground rules that flip
        from uncovered to covered, so the ratio reflects the *current*
        policy over the *whole* history — what the refinement loop reports
        after each round.
        """
        newly_covered = [
            ground
            for ground in self._grounder.ground_rules(rule)
            if ground not in self._covered
        ]
        if not newly_covered:
            return 0
        self._covered.update(newly_covered)
        # Retroactive credit: a historical entry flips to matched when its
        # single ground rule became covered.  Entries were observed as
        # ground rules (the overwhelmingly common audit case) or composite;
        # composite history cannot be replayed exactly from the counter, so
        # we only credit the ground entries, which is exact for audit logs.
        for ground in newly_covered:
            self._matched_entries += self._entry_counts.get(ground, 0)
        return len(newly_covered)

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        return self._total_entries

    @property
    def matched_entries(self) -> int:
        return self._matched_entries

    @property
    def distinct_ground_entries(self) -> int:
        return len(self._entry_counts)

    def entry_coverage(self) -> float:
        """Entry-weighted coverage over everything observed so far."""
        if self._total_entries == 0:
            raise CoverageError("no entries observed yet; entry coverage undefined")
        return self._matched_entries / self._total_entries

    def set_coverage(self) -> float:
        """Definition 9 coverage over the distinct ground entries so far."""
        if not self._entry_counts:
            raise CoverageError("no entries observed yet; set coverage undefined")
        covered = sum(1 for ground in self._entry_counts if ground in self._covered)
        return covered / len(self._entry_counts)

    def uncovered_ground_entries(self) -> tuple[Rule, ...]:
        """Distinct observed ground rules the policy does not cover."""
        return tuple(
            ground for ground in self._entry_counts if ground not in self._covered
        )
