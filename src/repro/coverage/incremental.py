"""Incremental coverage tracking for streaming audit entries.

The PRIMA loop runs "at regular intervals or at the request of the
stakeholders"; recomputing Algorithm 1 from scratch over an ever-growing
audit log is wasteful.  :class:`IncrementalCoverage` maintains both
coverage semantics online:

- entries stream in via :meth:`observe` (a counter per distinct ground
  rule keeps multiset information);
- policy-store rules stream in via :meth:`add_rule` (newly covered ground
  rules are credited retroactively to all previously observed entries).

Both operations are amortised O(ground-expansion) instead of O(log size).

State is held in the bitset backend's native encoding: the covered set is
one ID bitmask and the per-rule entry counters are keyed by dense
ground-rule IDs from the vocabulary's shared
:class:`~repro.policy.interning.RuleInterner`, so the per-entry coverage
probe is a single bitwise expression rather than a hash lookup per ground
rule.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import CoverageError
from repro.obs.runtime import get_registry
from repro.policy.grounding import Grounder
from repro.policy.interning import iter_bits
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


class IncrementalCoverage:
    """Online tracker of set- and entry-coverage of a policy over a trace."""

    def __init__(self, vocabulary: Vocabulary, policy: Policy | None = None) -> None:
        self.vocabulary = vocabulary
        self._grounder = Grounder(vocabulary)
        self._interner = self._grounder.interner
        self._covered_mask = 0
        self._entry_counts: Counter[int] = Counter()  # ground-rule ID -> entries
        self._matched_entries = 0
        self._total_entries = 0
        # Per-entry observation is the hot path, so telemetry flushes the
        # plain counters above through a weakly-held collector instead of
        # touching the registry per observe() (see DESIGN.md §8).
        self._rules_applied = 0
        self._obs = get_registry()
        self._reported = (0, 0, 0)  # observations, matched, rules applied
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)
        if policy is not None:
            for rule in policy:
                self.add_rule(rule)

    def _flush_metrics(self) -> None:
        reg = self._obs
        current = (self._total_entries, self._matched_entries, self._rules_applied)
        seen = self._reported
        reg.counter("repro_coverage_incremental_observations_total").inc(
            current[0] - seen[0]
        )
        reg.counter("repro_coverage_incremental_matched_total").inc(
            current[1] - seen[1]
        )
        reg.counter("repro_coverage_delta_apply_total").inc(current[2] - seen[2])
        self._reported = current
        reg.gauge("repro_coverage_incremental_distinct_ground_rules").set(
            len(self._entry_counts)
        )

    # ------------------------------------------------------------------
    # streaming inputs
    # ------------------------------------------------------------------
    def observe(self, entry_rule: Rule) -> bool:
        """Record one audit entry; returns whether it was covered.

        Composite entries are reduced to their ground expansion; the entry
        counts as covered only when the whole expansion is covered (the
        same convention as :func:`compute_entry_coverage`).
        """
        mask = self._grounder.ground_mask(entry_rule)
        covered = mask & ~self._covered_mask == 0
        for rule_id in iter_bits(mask):
            self._entry_counts[rule_id] += 1
        self._total_entries += 1
        if covered:
            self._matched_entries += 1
        return covered

    def add_rule(self, rule: Rule) -> int:
        """Add one policy rule; returns how many new ground rules it covers.

        Entry-coverage credit is recomputed for the ground rules that flip
        from uncovered to covered, so the ratio reflects the *current*
        policy over the *whole* history — what the refinement loop reports
        after each round.
        """
        self._rules_applied += 1
        newly_covered = self._grounder.ground_mask(rule) & ~self._covered_mask
        if not newly_covered:
            return 0
        self._covered_mask |= newly_covered
        # Retroactive credit: a historical entry flips to matched when its
        # single ground rule became covered.  Entries were observed as
        # ground rules (the overwhelmingly common audit case) or composite;
        # composite history cannot be replayed exactly from the counter, so
        # we only credit the ground entries, which is exact for audit logs.
        counts = self._entry_counts
        for rule_id in iter_bits(newly_covered):
            self._matched_entries += counts.get(rule_id, 0)
        return newly_covered.bit_count()

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    @property
    def total_entries(self) -> int:
        """How many entries :meth:`observe` has seen."""
        return self._total_entries

    @property
    def matched_entries(self) -> int:
        """How many observed entries the current policy covers."""
        return self._matched_entries

    @property
    def distinct_ground_entries(self) -> int:
        """How many distinct ground rules the trace has produced."""
        return len(self._entry_counts)

    def entry_coverage(self) -> float:
        """Entry-weighted coverage over everything observed so far."""
        if self._total_entries == 0:
            raise CoverageError("no entries observed yet; entry coverage undefined")
        return self._matched_entries / self._total_entries

    def set_coverage(self) -> float:
        """Definition 9 coverage over the distinct ground entries so far."""
        if not self._entry_counts:
            raise CoverageError("no entries observed yet; set coverage undefined")
        covered_mask = self._covered_mask
        covered = sum(
            1 for rule_id in self._entry_counts if (covered_mask >> rule_id) & 1
        )
        return covered / len(self._entry_counts)

    def uncovered_ground_entries(self) -> tuple[Rule, ...]:
        """Distinct observed ground rules the policy does not cover."""
        covered_mask = self._covered_mask
        rule_for = self._interner.rule_for
        return tuple(
            rule_for(rule_id)
            for rule_id in self._entry_counts
            if not (covered_mask >> rule_id) & 1
        )
