"""Gap analysis: *why* is an access outside the policy?

Section 3.3 of the paper walks through each unmatched audit rule and
explains the deviation ("a nurse needed to access referral data for
registration purpose, but the policy allows the use of such data only for
treatment purpose").  This module automates that narrative: for every
uncovered ground rule it finds the store rules that agree on all but one
attribute and names the deviating attribute and the values involved.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.coverage.engine import CoverageReport
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class Deviation:
    """One near-miss between an uncovered rule and a store rule."""

    uncovered: Rule
    nearest: Rule
    attribute: str
    observed: str
    allowed: str

    def describe(self) -> str:
        """Render the paper-style explanation sentence."""
        return (
            f"access {self.uncovered} deviates from policy rule {self.nearest} "
            f"on {self.attribute!r}: observed {self.observed!r} "
            f"where the policy has {self.allowed!r}"
        )


@dataclass(frozen=True, slots=True)
class GapReport:
    """All deviations for one coverage computation."""

    deviations: tuple[Deviation, ...]
    unexplained: tuple[Rule, ...]

    @property
    def explained_count(self) -> int:
        return len({d.uncovered for d in self.deviations})

    def by_attribute(self) -> dict[str, int]:
        """How many deviations each attribute accounts for.

        A histogram over deviating attributes tells a privacy officer where
        the vocabulary or the role model is too coarse — the diagnosis the
        paper's Section 2 discussion calls for.
        """
        counts = Counter(d.attribute for d in self.deviations)
        return dict(counts.most_common())

    def describe(self) -> str:
        """Render every deviation and unexplained access, one per line."""
        lines = [d.describe() for d in self.deviations]
        lines.extend(
            f"access {rule} has no near-miss in the policy store" for rule in self.unexplained
        )
        return "\n".join(lines)


def _single_attribute_deviation(
    uncovered: Rule, candidate: Rule, vocabulary: Vocabulary
) -> Deviation | None:
    """Return the deviation if the rules differ on exactly one attribute."""
    if candidate.cardinality != uncovered.cardinality:
        return None
    mismatches: list[tuple[str, str, str]] = []
    for term in uncovered.terms:
        allowed_value = candidate.value_of(term.attr)
        if allowed_value is None:
            return None  # different attribute sets — not comparable
        covered = vocabulary.subsumes(term.attr, allowed_value, term.value)
        if not covered:
            mismatches.append((term.attr, term.value, allowed_value))
        if len(mismatches) > 1:
            return None
    if len(mismatches) != 1:
        return None
    attribute, observed, allowed = mismatches[0]
    return Deviation(
        uncovered=uncovered,
        nearest=candidate,
        attribute=attribute,
        observed=observed,
        allowed=allowed,
    )


def analyse_gaps(
    report: CoverageReport, policy_store: Policy, vocabulary: Vocabulary
) -> GapReport:
    """Explain every uncovered ground rule in ``report``.

    For each uncovered rule, every store rule at Hamming distance one (on
    the attribute level, with subsumption-aware comparison) contributes a
    :class:`Deviation`.  Rules with no near-miss end up in ``unexplained``
    — in practice these are either violations or signs of a policy that is
    missing a whole statement, not just a broader value.
    """
    deviations: list[Deviation] = []
    unexplained: list[Rule] = []
    uncovered_range = report.uncovered
    if not uncovered_range.cardinality:
        # Complete coverage: the bitset difference is empty, so skip the
        # near-miss scan entirely.
        return GapReport(deviations=(), unexplained=())
    store_rules = tuple(policy_store)
    for uncovered in uncovered_range.rules():
        found = False
        for candidate in store_rules:
            deviation = _single_attribute_deviation(uncovered, candidate, vocabulary)
            if deviation is not None:
                deviations.append(deviation)
                found = True
        if not found:
            unexplained.append(uncovered)
    return GapReport(deviations=tuple(deviations), unexplained=tuple(unexplained))
