"""The synthetic hospital model.

This is the stand-in for the Norwegian healthcare organisation whose audit
trails motivated the paper [Rostad & Edsburg 2006]: a hospital with
departments, role-structured staff, patients, and — crucially — a **true
workflow**: the set of (data, purpose, role) practices staff actually
perform, with relative frequencies.  The documented policy typically
covers only part of the true workflow; the rest surfaces as exception
traffic, which is exactly the regime the study reported and the input
PRIMA's refinement loop needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.vocab.vocabulary import Vocabulary
from repro.workload.entities import Department, Patient, StaffMember, WorkflowPractice


@dataclass
class HospitalModel:
    """Departments, staff, patients and the true workflow."""

    name: str
    vocabulary: Vocabulary
    departments: list[Department] = field(default_factory=list)
    patients: list[Patient] = field(default_factory=list)
    practices: list[WorkflowPractice] = field(default_factory=list)

    # ------------------------------------------------------------------
    # rosters
    # ------------------------------------------------------------------
    def all_staff(self) -> tuple[StaffMember, ...]:
        """Every staff member across all departments."""
        return tuple(
            member for department in self.departments for member in department.staff
        )

    def staff_with_role(self, role: str) -> tuple[StaffMember, ...]:
        """Staff holding ``role`` across all departments."""
        return tuple(
            member
            for department in self.departments
            for member in department.staff_with_role(role)
        )

    def roles(self) -> tuple[str, ...]:
        """Sorted distinct roles actually staffed."""
        return tuple(sorted({member.role for member in self.all_staff()}))

    # ------------------------------------------------------------------
    # workflow
    # ------------------------------------------------------------------
    def add_practice(self, practice: WorkflowPractice) -> None:
        """Add a true-workflow practice (its role must be staffed)."""
        if not self.staff_with_role(practice.role):
            raise WorkloadError(
                f"practice {practice.key()} names role {practice.role!r} "
                "but no staff member holds it"
            )
        self.practices.append(practice)

    def practice_rules(self) -> tuple[Rule, ...]:
        """The true workflow as ground policy rules (deduplicated)."""
        seen: dict[Rule, None] = {}
        for practice in self.practices:
            rule = Rule.of(
                data=practice.data,
                purpose=practice.purpose,
                authorized=practice.role,
            )
            seen.setdefault(rule, None)
        return tuple(seen)

    def documented_store(
        self, fraction: float, rng: random.Random, name: str = "P_PS"
    ) -> PolicyStore:
        """Build an initial policy store covering part of the true workflow.

        A deployment never starts from zero: some practices are documented.
        ``fraction`` of the distinct practice rules (weighted toward the
        most frequent ones, as real policy authors document the common
        cases first) are seeded into the store.
        """
        if not 0.0 <= fraction <= 1.0:
            raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
        by_rule: dict[Rule, float] = {}
        for practice in self.practices:
            rule = Rule.of(
                data=practice.data,
                purpose=practice.purpose,
                authorized=practice.role,
            )
            by_rule[rule] = by_rule.get(rule, 0.0) + practice.weight
        ranked = sorted(by_rule.items(), key=lambda pair: -pair[1])
        keep = round(len(ranked) * fraction)
        store = PolicyStore(name)
        for rule, _ in ranked[:keep]:
            store.add(rule, added_by="initial-deployment", origin="seed")
        # a little realism: the officer also documents a couple of random
        # less-frequent practices, so the seeded set is not a clean prefix
        tail = ranked[keep:]
        if tail and keep:
            for rule, _ in rng.sample(tail, k=min(2, len(tail))):
                store.add(rule, added_by="initial-deployment", origin="seed")
        return store


#: Plausible (data branch, purposes) per role for the built-in hospital.
_ROLE_PROFILE: dict[str, list[tuple[str, str]]] = {
    "nurse": [
        ("prescription", "treatment"),
        ("referral", "treatment"),
        ("lab_results", "treatment"),
        ("referral", "registration"),
        ("prescription", "diagnosis"),
        ("lab_results", "diagnosis"),
        ("name", "treatment"),
        ("psychiatry", "emergency_care"),
    ],
    "physician": [
        ("prescription", "treatment"),
        ("referral", "treatment"),
        ("lab_results", "treatment"),
        ("psychiatry", "treatment"),
        ("lab_results", "diagnosis"),
        ("psychiatry", "diagnosis"),
        ("lab_results", "research"),
    ],
    "doctor": [
        ("prescription", "treatment"),
        ("lab_results", "diagnosis"),
        ("referral", "treatment"),
        ("psychiatry", "treatment"),
    ],
    "clerk": [
        ("address", "billing"),
        ("name", "billing"),
        ("insurance", "billing"),
        ("payment_history", "billing"),
        ("prescription", "billing"),
        ("insurance", "insurance_verification"),
    ],
    "registrar": [
        ("name", "registration"),
        ("address", "registration"),
        ("gender", "registration"),
        ("birth_date", "registration"),
        ("referral", "registration"),
        ("insurance", "insurance_verification"),
    ],
}


def build_hospital(
    vocabulary: Vocabulary,
    departments: int = 3,
    staff_per_role: int = 4,
    patients: int = 200,
    seed: int = 7,
    name: str = "st-elsewhere",
) -> HospitalModel:
    """Build the default synthetic hospital.

    Staffing: every department gets ``staff_per_role`` members of each role
    in the built-in profile.  The true workflow samples each role-profile
    practice with a heavy-tailed weight (a few dominant practices plus a
    long tail), which is what gives refinement experiments their
    characteristic fast-then-slow coverage curves.
    """
    if departments < 1 or staff_per_role < 1 or patients < 1:
        raise WorkloadError("departments, staff_per_role and patients must be >= 1")
    rng = random.Random(seed)
    hospital = HospitalModel(name=name, vocabulary=vocabulary)
    department_names = [f"dept_{index:02d}" for index in range(departments)]
    for dept_name in department_names:
        department = Department(dept_name)
        for role in _ROLE_PROFILE:
            for index in range(staff_per_role):
                department.add_staff(f"{role}_{dept_name}_{index:02d}", role)
        hospital.departments.append(department)
    hospital.patients = [Patient(f"patient_{index:04d}") for index in range(patients)]
    for role, profile in _ROLE_PROFILE.items():
        for data, purpose in profile:
            # heavy-tailed weights: a few practices dominate the workflow
            weight = rng.choice([20.0, 10.0, 5.0, 2.0, 1.0, 0.5])
            hospital.add_practice(
                WorkflowPractice(data=data, purpose=purpose, role=role, weight=weight)
            )
    return hospital
