"""Shift-structured workloads: traffic with a real time-of-day profile.

The plain generator treats time as a bare counter; this variant models a
day per round.  Each access gets an hour — drawn from the practice's
:class:`~repro.policy.conditions.TimeWindow` when it has one, uniformly
otherwise — and a tick computed as ``(day * 24 + hour) * ticks_per_hour
+ offset``, so :func:`repro.mining.temporal.hour_extractor` recovers the
hour exactly.  This is what lets the temporal-refinement extension run
against *generated* hospitals instead of hand-built logs.
"""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.errors import WorkloadError
from repro.policy.conditions import TimeWindow
from repro.policy.store import PolicyStore
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import HospitalModel
from repro.workload.entities import WorkflowPractice


def add_night_practice(
    hospital: HospitalModel,
    data: str,
    purpose: str,
    role: str,
    weight: float = 5.0,
    window: TimeWindow | None = None,
) -> WorkflowPractice:
    """Add a time-confined practice to ``hospital`` (default 22:00-06:00)."""
    practice = WorkflowPractice(
        data=data,
        purpose=purpose,
        role=role,
        weight=weight,
        window=window or TimeWindow(22, 6),
    )
    hospital.add_practice(practice)
    return practice


class ShiftStructuredEnvironment(SyntheticHospitalEnvironment):
    """One round = one day; practices respect their time windows.

    Noise and violation traffic falls uniformly across the day (snoopers
    do not keep office hours).  The parent class's traffic mix, coverage
    logic and ground-truth labelling are inherited unchanged — only the
    timestamping differs.
    """

    def __init__(
        self,
        hospital: HospitalModel,
        config: WorkloadConfig | None = None,
        ticks_per_hour: int = 10,
    ) -> None:
        super().__init__(hospital, config)
        if ticks_per_hour < 1:
            raise WorkloadError(f"ticks_per_hour must be >= 1, got {ticks_per_hour}")
        self.ticks_per_hour = ticks_per_hour
        self._next_day = 0

    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """Simulate one day of operation under ``store``.

        Rounds advance an internal day counter (so repeated calls with
        any ``round_index`` still move time forward monotonically).
        """
        covered = self._covered_rules(store)
        day = self._next_day
        self._next_day += 1
        planned: list = []
        for _ in range(self.config.accesses_per_round):
            draw = self._rng.random()
            if draw < self.config.violation_rate:
                hour = self._rng.randrange(24)
                planned.append(("violation", None, hour))
            elif draw < self.config.violation_rate + self.config.noise_rate:
                hour = self._rng.randrange(24)
                planned.append(("noise", None, hour))
            else:
                practice = self._rng.choices(
                    self.hospital.practices, weights=self._practice_weights, k=1
                )[0]
                if practice.window is not None:
                    hour = self._rng.choice(practice.window.hours())
                else:
                    hour = self._rng.randrange(24)
                planned.append(("workflow", practice, hour))
        # assign in-hour offsets, then emit in chronological order
        events = []
        for kind, practice, hour in planned:
            tick = (day * 24 + hour) * self.ticks_per_hour + self._rng.randrange(
                self.ticks_per_hour
            )
            events.append((tick, kind, practice))
        events.sort(key=lambda item: item[0])
        log = AuditLog(name=f"day_{day}")
        for tick, kind, practice in events:
            if kind == "violation":
                log.append(self._violation_access(covered, tick))
            elif kind == "noise":
                log.append(self._noise_access(covered, tick))
            else:
                log.append(self._practice_access(practice, covered, tick))
        return log

    def _practice_access(self, practice: WorkflowPractice, covered, tick: int):
        """Emit one access for a *specific* practice at ``tick``."""
        from repro.audit.schema import AccessStatus
        from repro.audit.log import make_entry
        from repro.policy.rule import Rule

        member = self._rng.choice(self.hospital.staff_with_role(practice.role))
        rule = Rule.of(
            data=practice.data, purpose=practice.purpose, authorized=practice.role
        )
        sanctioned = rule in covered
        return make_entry(
            time=tick,
            user=member.user_id,
            data=practice.data,
            purpose=practice.purpose,
            authorized=practice.role,
            status=AccessStatus.REGULAR if sanctioned else AccessStatus.EXCEPTION,
            truth="" if sanctioned else "practice",
        )
