"""The synthetic access-trace generator.

:class:`SyntheticHospitalEnvironment` implements the refinement loop's
:class:`~repro.refinement.loop.ClinicalEnvironment` protocol: each round it
samples accesses from the hospital's true workflow, decides — against the
*current* policy store — whether each access goes through the sanctioned
path (``status = regular``) or break-the-glass (``status = exception``),
and stamps ground-truth labels so classifier experiments can score.

Three traffic components, mirroring what real audit studies report:

``workflow``
    Weighted samples from the hospital's true practices.  Covered by the
    store → regular; uncovered → exception labelled ``practice``.
``noise``
    One-off idiosyncratic accesses (a random staff member touching a
    random data category for a random plausible purpose).  These are
    legitimate but unrepeated, so they should never clear the miner's
    thresholds; they keep coverage from reaching 1.0.
``violations``
    Snooping: a single curious user repeatedly pulling data far outside
    their role's profile, labelled ``violation``.  Low distinct-user
    count is exactly the signal the paper's ``c`` condition and our
    classifier key on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import WorkloadError
from repro.hdb.auditing import LogicalClock
from repro.policy.grounding import Grounder
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.workload.hospital import HospitalModel


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Traffic mix for one simulation."""

    accesses_per_round: int = 5000
    noise_rate: float = 0.05
    violation_rate: float = 0.02
    seed: int = 7

    def __post_init__(self) -> None:
        if self.accesses_per_round < 1:
            raise WorkloadError("accesses_per_round must be >= 1")
        if not 0.0 <= self.noise_rate < 1.0:
            raise WorkloadError(f"noise_rate must be in [0, 1), got {self.noise_rate}")
        if not 0.0 <= self.violation_rate < 1.0:
            raise WorkloadError(
                f"violation_rate must be in [0, 1), got {self.violation_rate}"
            )
        if self.noise_rate + self.violation_rate >= 1.0:
            raise WorkloadError("noise_rate + violation_rate must stay below 1")


class SyntheticHospitalEnvironment:
    """Generates audit traffic for a hospital under a live policy store."""

    def __init__(
        self,
        hospital: HospitalModel,
        config: WorkloadConfig | None = None,
        clock: LogicalClock | None = None,
    ) -> None:
        self.hospital = hospital
        self.config = config or WorkloadConfig()
        self.clock = clock or LogicalClock()
        self._rng = random.Random(self.config.seed)
        self._grounder = Grounder(hospital.vocabulary)
        if not hospital.practices:
            raise WorkloadError("the hospital has no workflow practices")
        self._practice_weights = [p.weight for p in hospital.practices]
        data_tree = hospital.vocabulary.tree_for("data")
        purpose_tree = hospital.vocabulary.tree_for("purpose")
        self._data_values = data_tree.leaves() if data_tree else ("record",)
        purpose_leaves = purpose_tree.leaves() if purpose_tree else ("care",)
        # Noise models legitimate-but-unrepeated work, and no legitimate
        # user manually enters "telemarketing" as a purpose — that value
        # is reserved for the snooper, keeping the violation signal
        # single-user (the property the paper's c condition exploits).
        self._purpose_values = tuple(
            purpose for purpose in purpose_leaves if purpose != "telemarketing"
        ) or purpose_leaves
        # one dedicated snooper per simulation keeps the violation signal
        # single-user, matching the threat the classifier targets
        staff = hospital.all_staff()
        if not staff:
            raise WorkloadError("the hospital has no staff")
        self._snooper = self._rng.choice(staff)

    # ------------------------------------------------------------------
    # the ClinicalEnvironment protocol
    # ------------------------------------------------------------------
    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """Simulate one interval of operation under ``store``."""
        covered = self._covered_rules(store)
        log = AuditLog(name=f"round_{round_index}")
        for _ in range(self.config.accesses_per_round):
            draw = self._rng.random()
            if draw < self.config.violation_rate:
                entry = self._violation_access(covered, self.clock.tick())
            elif draw < self.config.violation_rate + self.config.noise_rate:
                entry = self._noise_access(covered, self.clock.tick())
            else:
                entry = self._workflow_access(covered, self.clock.tick())
            log.append(entry)
        return log

    # ------------------------------------------------------------------
    # traffic components
    # ------------------------------------------------------------------
    def _workflow_access(self, covered: set[Rule], time: int):
        practice = self._rng.choices(
            self.hospital.practices, weights=self._practice_weights, k=1
        )[0]
        member = self._rng.choice(self.hospital.staff_with_role(practice.role))
        rule = Rule.of(
            data=practice.data, purpose=practice.purpose, authorized=practice.role
        )
        sanctioned = rule in covered
        return make_entry(
            time=time,
            user=member.user_id,
            data=practice.data,
            purpose=practice.purpose,
            authorized=practice.role,
            status=AccessStatus.REGULAR if sanctioned else AccessStatus.EXCEPTION,
            truth="" if sanctioned else "practice",
        )

    def _noise_access(self, covered: set[Rule], time: int):
        member = self._rng.choice(self.hospital.all_staff())
        data = self._rng.choice(self._data_values)
        purpose = self._rng.choice(self._purpose_values)
        rule = Rule.of(data=data, purpose=purpose, authorized=member.role)
        sanctioned = rule in covered
        return make_entry(
            time=time,
            user=member.user_id,
            data=data,
            purpose=purpose,
            authorized=member.role,
            status=AccessStatus.REGULAR if sanctioned else AccessStatus.EXCEPTION,
            truth="" if sanctioned else "practice",
        )

    def _violation_access(self, covered: set[Rule], time: int):
        member = self._snooper
        # snooping targets sensitive categories for an implausible purpose
        # no sanctioned workflow ever names (see _purpose_values above)
        data = self._rng.choice(("psychiatry", "payment_history", "insurance"))
        purpose = "telemarketing"
        rule = Rule.of(data=data, purpose=purpose, authorized=member.role)
        sanctioned = rule in covered
        return make_entry(
            time=time,
            user=member.user_id,
            data=data,
            purpose=purpose,
            authorized=member.role,
            status=AccessStatus.REGULAR if sanctioned else AccessStatus.EXCEPTION,
            truth="" if sanctioned else "violation",
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _covered_rules(self, store: PolicyStore) -> set[Rule]:
        """Ground rules the current store covers (memoised per rule)."""
        covered: set[Rule] = set()
        for rule in store:
            covered.update(self._grounder.ground_rules(rule))
        return covered
