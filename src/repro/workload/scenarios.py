"""Canned scenarios, including the paper's own worked examples.

:func:`figure3_policy_store` / :func:`figure3_audit_policy` reproduce the
Section 3.3 coverage example (3 composite store rules, 6 ground audit
rules, coverage 3/6 = 50 %).  :func:`table1_audit_log` reproduces the
Section 5 audit trail verbatim — ten entries ``t1 … t10``, including the
``Doctor``-vs-``physician`` mismatch the paper's own 3/10 count relies on.
"""

from __future__ import annotations

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.vocabulary import Vocabulary


def figure3_vocabulary() -> Vocabulary:
    """The vocabulary of Figure 1, used by both worked examples."""
    return healthcare_vocabulary()


def figure3_rules() -> tuple[Rule, Rule, Rule]:
    """The three composite rules of Figure 3(a)'s policy store.

    Reconstructed from the narrative: rule 1 grants nurses the routine
    medical records for treatment (its ground rules 1a/1b match audit
    rules 1 and 2), rule 2 reserves psychiatry for physicians, rule 3
    grants clerks demographic data for billing (3a matches audit rule 5).
    """
    return (
        Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
        Rule.of(data="psychiatry", purpose="treatment", authorized="physician"),
        Rule.of(data="demographic", purpose="billing", authorized="clerk"),
    )


def figure3_policy_store() -> PolicyStore:
    """Figure 3(a) as a versioned policy store."""
    store = PolicyStore("P_PS")
    for rule in figure3_rules():
        store.add(rule, added_by="figure-3", origin="seed")
    return store


def figure3_policy() -> Policy:
    """Figure 3(a) as a plain policy snapshot."""
    return Policy(figure3_rules(), source=PolicySource.POLICY_STORE, name="P_PS")


def figure3_audit_rules() -> tuple[Rule, ...]:
    """The six ground rules of Figure 3(b)'s audit-log policy.

    Rules 3, 4 and 6 are the exception scenarios the paper walks through.
    """
    return (
        Rule.of(data="prescription", purpose="treatment", authorized="nurse"),
        Rule.of(data="referral", purpose="treatment", authorized="nurse"),
        Rule.of(data="referral", purpose="registration", authorized="nurse"),
        Rule.of(data="psychiatry", purpose="treatment", authorized="nurse"),
        Rule.of(data="address", purpose="billing", authorized="clerk"),
        Rule.of(data="prescription", purpose="billing", authorized="clerk"),
    )


def figure3_audit_policy() -> Policy:
    """Figure 3(b) as the paper's ``P_AL``."""
    return Policy(
        figure3_audit_rules(), source=PolicySource.AUDIT_LOG, name="P_AL"
    )


#: Table 1 verbatim: (time, user, data, purpose, authorized, status).
_TABLE_1_ROWS = (
    (1, "John", "Prescription", "Treatment", "Nurse", AccessStatus.REGULAR),
    (2, "Tim", "Referral", "Treatment", "Nurse", AccessStatus.REGULAR),
    (3, "Mark", "Referral", "Registration", "Nurse", AccessStatus.EXCEPTION),
    (4, "Sarah", "Psychiatry", "Treatment", "Doctor", AccessStatus.EXCEPTION),
    (5, "Bill", "Address", "Billing", "Clerk", AccessStatus.REGULAR),
    (6, "Jason", "Prescription", "Billing", "Clerk", AccessStatus.EXCEPTION),
    (7, "Mark", "Referral", "Registration", "Nurse", AccessStatus.EXCEPTION),
    (8, "Tim", "Referral", "Registration", "Nurse", AccessStatus.EXCEPTION),
    (9, "Bob", "Referral", "Registration", "Nurse", AccessStatus.EXCEPTION),
    (10, "Mark", "Referral", "Registration", "Nurse", AccessStatus.EXCEPTION),
)


def table1_audit_log() -> AuditLog:
    """The Section 5 audit trail, entries t1 through t10.

    The paper states "none of the exceptions reported in the logs are
    violations", so every exception entry carries truth ``practice``.
    """
    log = AuditLog(name="table_1")
    for time, user, data, purpose, authorized, status in _TABLE_1_ROWS:
        log.append(
            make_entry(
                time=time,
                user=user,
                data=data,
                purpose=purpose,
                authorized=authorized,
                status=status,
                truth="practice" if status is AccessStatus.EXCEPTION else "",
            )
        )
    return log


def expected_table1_pattern() -> Rule:
    """The single pattern Section 5's refinement run must discover."""
    return Rule.of(data="referral", purpose="registration", authorized="nurse")
