"""Synthetic clinical workloads (the real-audit-trace substitute).

Public surface:

- :func:`~repro.workload.hospital.build_hospital` /
  :class:`HospitalModel` — the synthetic organisation.
- :class:`~repro.workload.generator.SyntheticHospitalEnvironment` /
  :class:`WorkloadConfig` — traffic generation under a live policy store.
- :mod:`repro.workload.scenarios` — the paper's Figure 3 and Table 1
  verbatim.
- :mod:`repro.workload.traces` — reproducible trace bundles.
"""

from repro.workload.entities import (
    Department,
    Patient,
    StaffMember,
    WorkflowPractice,
)
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import HospitalModel, build_hospital
from repro.workload.multisite import MultiSiteEnvironment, SiteTraffic
from repro.workload.shifts import ShiftStructuredEnvironment, add_night_practice
from repro.workload.scenarios import (
    expected_table1_pattern,
    figure3_audit_policy,
    figure3_audit_rules,
    figure3_policy,
    figure3_policy_store,
    figure3_rules,
    figure3_vocabulary,
    table1_audit_log,
)
from repro.workload.traces import load_trace, save_trace

__all__ = [
    "Department",
    "HospitalModel",
    "MultiSiteEnvironment",
    "ShiftStructuredEnvironment",
    "SiteTraffic",
    "add_night_practice",
    "Patient",
    "StaffMember",
    "SyntheticHospitalEnvironment",
    "WorkflowPractice",
    "WorkloadConfig",
    "build_hospital",
    "expected_table1_pattern",
    "figure3_audit_policy",
    "figure3_audit_rules",
    "figure3_policy",
    "figure3_policy_store",
    "figure3_rules",
    "figure3_vocabulary",
    "load_trace",
    "save_trace",
    "table1_audit_log",
]
