"""Entities of the synthetic hospital: staff, patients, departments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.policy.conditions import TimeWindow
from repro.vocab.tree import canonical


@dataclass(frozen=True, slots=True)
class StaffMember:
    """One clinician or administrator."""

    user_id: str
    role: str
    department: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "user_id", canonical(self.user_id))
        object.__setattr__(self, "role", canonical(self.role))
        object.__setattr__(self, "department", canonical(self.department))


@dataclass(frozen=True, slots=True)
class Patient:
    """One data subject."""

    patient_id: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "patient_id", canonical(self.patient_id))


@dataclass
class Department:
    """A hospital unit with its staff roster."""

    name: str
    staff: list[StaffMember] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = canonical(self.name)

    def add_staff(self, user_id: str, role: str) -> StaffMember:
        """Hire one staff member into this department."""
        member = StaffMember(user_id=user_id, role=role, department=self.name)
        self.staff.append(member)
        return member

    def staff_with_role(self, role: str) -> tuple[StaffMember, ...]:
        """Department staff holding ``role``."""
        wanted = canonical(role)
        return tuple(member for member in self.staff if member.role == wanted)


@dataclass(frozen=True, slots=True)
class WorkflowPractice:
    """One element of the hospital's *true* workflow.

    A practice is a (data, purpose, role) combination that the clinical
    staff genuinely perform, with a relative ``weight`` controlling how
    often it happens.  Whether a practice is also *documented* (present in
    the policy store) is exactly the gap PRIMA measures.

    ``window`` optionally confines the practice to a daily time window
    (a :class:`~repro.policy.conditions.TimeWindow`) — night-shift
    routines are the clinical archetype.  Only the shift-structured
    generator honours it; the plain generator ignores timing entirely.
    """

    data: str
    purpose: str
    role: str
    weight: float = 1.0
    window: TimeWindow | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "data", canonical(self.data))
        object.__setattr__(self, "purpose", canonical(self.purpose))
        object.__setattr__(self, "role", canonical(self.role))
        if self.weight <= 0:
            raise WorkloadError(f"practice weights must be positive, got {self.weight}")

    def key(self) -> tuple[str, str, str]:
        """The (data, purpose, role) triple identifying the practice."""
        return (self.data, self.purpose, self.role)
