"""Multi-site clinical environments — federation meets the loop.

The architecture's Audit Management box exists because real organisations
run many systems, each with its own trail.  This module wires the
synthetic workload to that reality: a :class:`MultiSiteEnvironment` runs
one traffic generator per site (sharing one logical clock so consolidated
time stays meaningful), registers every site in an
:class:`~repro.hdb.federation.AuditFederation`, and exposes the
consolidated view to the refinement loop.  Organisation-wide refinement
can then codify a practice that no single site's traffic would push past
the mining thresholds — the quantitative argument *for* federation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.audit.log import AuditLog
from repro.errors import WorkloadError
from repro.hdb.auditing import LogicalClock
from repro.hdb.federation import AuditFederation
from repro.policy.store import PolicyStore
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import HospitalModel


@dataclass(frozen=True)
class SiteTraffic:
    """One member site's generator parameters."""

    name: str
    config: WorkloadConfig


class MultiSiteEnvironment:
    """Per-site traffic, federated audit, one consolidated loop input.

    Implements the refinement loop's ``ClinicalEnvironment`` protocol:
    :meth:`simulate_round` runs every site for one interval and returns
    the *consolidated* window, while per-site logs accumulate in the
    federation for direct inspection (or per-site refinement, for the
    federated-vs-local comparison).
    """

    def __init__(
        self,
        hospital: HospitalModel,
        sites: list[SiteTraffic] | tuple[SiteTraffic, ...],
    ) -> None:
        if not sites:
            raise WorkloadError("a multi-site environment needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate site names: {names}")
        self.hospital = hospital
        self.federation = AuditFederation("multisite")
        self._clock = LogicalClock()
        self._environments: dict[str, SyntheticHospitalEnvironment] = {}
        self._logs: dict[str, AuditLog] = {}
        for index, site in enumerate(sites):
            # decorrelate sites that share a config by offsetting the seed
            config = replace(site.config, seed=site.config.seed + index * 1009)
            environment = SyntheticHospitalEnvironment(
                hospital, config, clock=self._clock
            )
            log = AuditLog(name=site.name)
            self.federation.register(site.name, log)
            self._environments[site.name] = environment
            self._logs[site.name] = log

    @property
    def sites(self) -> tuple[str, ...]:
        return self.federation.sites

    def site_log(self, name: str) -> AuditLog:
        """The accumulated audit log of one member site."""
        return self.federation.member(name)

    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """One interval everywhere; returns the consolidated window.

        Sites run sequentially on the shared clock (interleaving within a
        round does not matter to any consumer — mining and coverage are
        order-insensitive within a window, and consolidated output stays
        time-ordered because the clock is shared and monotone).
        """
        window = AuditLog(name=f"consolidated_round_{round_index}")
        for name, environment in self._environments.items():
            site_window = environment.simulate_round(round_index, store)
            self._logs[name].extend(site_window)
            window.extend(site_window)
        return window
