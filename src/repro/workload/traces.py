"""Reproducible trace bundles: a workload config plus its audit log.

Synthetic experiments live or die on reproducibility, so a generated trace
can be saved as a bundle — a JSON manifest carrying the generator
parameters next to the JSONL entries — and reloaded bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.audit.io import load_jsonl, save_jsonl
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import WorkloadError
from repro.workload.generator import WorkloadConfig

_MANIFEST_SUFFIX = ".manifest.json"
_LOG_SUFFIX = ".entries.jsonl"

# The demo ward's workflow wheel (shared by the E18 and E21 benchmarks):
# skewed like real audit traffic, with denied combinations mixed in so
# both decision outcomes are exercised.
_DEMO_COMBOS = (
    ("prescription", "treatment", "physician", AccessStatus.REGULAR),
    ("referral", "treatment", "nurse", AccessStatus.REGULAR),
    ("name", "billing", "clerk", AccessStatus.REGULAR),
    ("insurance", "billing", "clerk", AccessStatus.REGULAR),
    ("lab_results", "diagnosis", "physician", AccessStatus.REGULAR),
    ("psychiatry", "treatment", "nurse", AccessStatus.REGULAR),
    ("insurance", "treatment", "physician", AccessStatus.EXCEPTION),
    ("address", "registration", "registrar", AccessStatus.REGULAR),
)
_DEMO_WEIGHTS = (24, 20, 14, 12, 10, 9, 6, 5)


def save_trace(
    log: AuditLog, config: WorkloadConfig, directory: str | Path, name: str
) -> tuple[Path, Path]:
    """Write a trace bundle; returns (manifest path, entries path)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest_path = target / f"{name}{_MANIFEST_SUFFIX}"
    entries_path = target / f"{name}{_LOG_SUFFIX}"
    manifest = {
        "name": name,
        "entries_file": entries_path.name,
        "entry_count": len(log),
        "config": asdict(config),
    }
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    save_jsonl(log, entries_path)
    return manifest_path, entries_path


def decision_payloads(log: AuditLog, limit: int | None = None) -> list[dict]:
    """Turn audit traffic into PDP ``decide`` request payloads.

    Each entry becomes one category-level decision request against the
    decision service — the natural replay of the workload generator's
    traffic through a live server (the E18 load phase and ``repro serve
    --load`` both use this).  Ground truth rides along so served trails
    stay minable by the evaluation pipeline.
    """
    payloads: list[dict] = []
    for entry in log:
        if limit is not None and len(payloads) >= limit:
            break
        payloads.append(
            {
                "op": "decide",
                "user": entry.user,
                "role": entry.authorized,
                "purpose": entry.purpose,
                "categories": [entry.data],
                "exception": entry.is_exception,
                "truth": entry.truth,
            }
        )
    return payloads


def demo_decision_payloads(count: int) -> list[dict]:
    """``count`` deterministic decide payloads for the demo deployment.

    A Weyl-style multiplicative walk over a weighted combo wheel: skewed
    enough to reward the interned decision cache, deterministic so two
    replays (single server vs a fleet, cache on vs off) serve the same
    traffic.  The request stream the E18 and E21 benchmarks share.
    """
    wheel: list[int] = []
    for combo_index, weight in enumerate(_DEMO_WEIGHTS):
        wheel.extend([combo_index] * weight)
    log = AuditLog()
    for tick in range(count):
        slot = (tick * 2654435761) % len(wheel)
        data, purpose, role, status = _DEMO_COMBOS[wheel[slot]]
        log.append(
            make_entry(tick + 1, f"user{(tick * 97) % 23}", data, purpose,
                       role, status=status)
        )
    return decision_payloads(log)


def load_trace(directory: str | Path, name: str) -> tuple[AuditLog, WorkloadConfig]:
    """Read a bundle written by :func:`save_trace`."""
    target = Path(directory)
    manifest_path = target / f"{name}{_MANIFEST_SUFFIX}"
    if not manifest_path.exists():
        raise WorkloadError(f"no trace manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        config = WorkloadConfig(**manifest["config"])
        entries_path = target / manifest["entries_file"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise WorkloadError(f"malformed trace manifest {manifest_path}: {exc}") from exc
    log = load_jsonl(entries_path, name=manifest.get("name"))
    if len(log) != manifest.get("entry_count"):
        raise WorkloadError(
            f"trace {name!r} is corrupt: manifest says "
            f"{manifest.get('entry_count')} entries, file has {len(log)}"
        )
    return log, config
