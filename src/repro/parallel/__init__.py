"""Parallel sharded refinement — map-reduce over the audit trail.

The refinement pipeline (Algorithms 3-6) is a single serial pass in the
paper, but every stage decomposes over a partition of the log:

- **shard** (:mod:`repro.parallel.shards`): the trail is split into
  contiguous shards — durable-store segment files, in-memory chunks, or
  federation members — that concatenate back to the global append order;
- **map** (:mod:`repro.parallel.partials`): each worker process streams
  its shard once, computing Filter plus *partial* pattern-mining
  aggregates (mergeable ``group -> (support, user-set)`` state for the
  SQL miner, SON-style local candidates for Apriori) and the per-rule
  entry positions coverage needs;
- **merge** (:mod:`repro.parallel.refine`): the coordinator folds the
  partials together deterministically, re-applies the global ``HAVING``
  thresholds, reconstructs both coverage semantics, and prunes with one
  shared interned grounder so every mask stays comparable.

The result is *byte-identical* to :func:`repro.refinement.engine.refine`
run serially over the same log — same accepted rules in the same order,
same prune partition, same coverage ratios and uncovered-entry indices —
because every merge is over exact counts and the final ordering rules are
re-applied globally.  ``RefinementConfig(execution=ExecutionPolicy(
workers=N))`` opts a refine call in; everything falls back to the serial
path when it cannot help (one shard, one worker, a custom miner, or a
process pool the platform refuses to give us).
"""

from repro.parallel.execution import ExecutionPolicy
from repro.parallel.refine import parallel_refine, supports_parallel_miner
from repro.parallel.shards import Shard, iter_shard, shards_of

__all__ = [
    "ExecutionPolicy",
    "Shard",
    "iter_shard",
    "parallel_refine",
    "shards_of",
    "supports_parallel_miner",
]
