"""Shard planning: split an audit source into worker-sized pieces.

A :class:`Shard` is a small, picklable description of one contiguous
slice of the audit trail — never the entries themselves for disk-backed
sources.  Workers rehydrate a shard with :func:`iter_shard`, streaming
straight off the segment files (or member exports) with no store
recovery and no shared file handles.

The invariant every shard plan satisfies: **iterating the shards in
index order concatenates to exactly the source's global entry order.**
The coordinator relies on this to convert worker-local entry positions
into global indices (entry coverage) by adding per-shard offsets.

Sources and their shapes:

- a :class:`~repro.store.durable.DurableAuditLog` (or raw
  :class:`~repro.store.store.AuditStore`) shards into contiguous groups
  of segment *files*, balanced by committed entry counts from the
  manifest — the active segment is flushed first so nothing is missed;
- an in-memory :class:`~repro.audit.log.AuditLog` shards into contiguous
  entry chunks (entries travel to workers by pickling);
- an :class:`~repro.hdb.federation.AuditFederation` maps each member
  site to one shard, in site order: store-directory members become
  segment shards, still-lazy CSV/JSONL members become file shards parsed
  inside the worker, and already-loaded members become entry chunks.
  The implied global order is site-major (site order, then each member's
  own append order) — the same order the federation's virtual SQL view
  uses, *not* the time-merged ``consolidated_log`` order;
- any other re-iterable entry source (e.g. a
  :class:`~repro.store.durable.StreamedAuditView`) is materialised and
  chunked — correct, but it forfeits the streaming economy, so prefer
  handing the underlying log to the planner.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import RefinementError

#: Shard payload kinds (see :func:`iter_shard`).
SHARD_KINDS: tuple[str, ...] = ("segments", "entries", "csv", "jsonl")


@dataclass(frozen=True)
class Shard:
    """One contiguous, independently-streamable slice of the trail.

    ``planned_entries`` is the entry count the planner *expected* from
    metadata (``None`` for file shards, which are only parsed in the
    worker); the coordinator always offsets by the count the worker
    actually iterated, so a stale plan degrades balance, never
    correctness.
    """

    index: int
    kind: str
    label: str
    segments: tuple[str, ...] = ()
    entries: tuple[AuditEntry, ...] = field(default=(), repr=False)
    path: str = ""
    planned_entries: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in SHARD_KINDS:
            raise RefinementError(
                f"unknown shard kind {self.kind!r} (choose from {SHARD_KINDS})"
            )


def iter_shard(shard: Shard) -> Iterator[AuditEntry]:
    """Stream one shard's entries in order (runs inside the worker)."""
    if shard.kind == "segments":
        from repro.store.segment import iter_segment

        for path in shard.segments:
            yield from iter_segment(Path(path))
    elif shard.kind == "entries":
        yield from shard.entries
    elif shard.kind == "csv":
        from repro.audit import io as audit_io

        yield from audit_io.load_csv(Path(shard.path), name=shard.label)
    else:  # jsonl
        from repro.audit import io as audit_io

        yield from audit_io.load_jsonl(Path(shard.path), name=shard.label)


def _chunk_sizes(total: int, parts: int) -> list[int]:
    """Near-equal contiguous chunk sizes (first chunks take the slack)."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def _segment_groups(weights: list[int], limit: int) -> list[list[int]]:
    """Partition segment indices into ≤ ``limit`` contiguous groups,
    balanced by entry weight.  Deterministic: boundaries fall where the
    running weight crosses the next ``total/limit`` threshold."""
    count = len(weights)
    limit = max(1, min(limit, count))
    total = sum(weights)
    if total <= 0:
        return [list(range(count))] if count else []
    groups: list[list[int]] = []
    current: list[int] = []
    running = 0
    last_group = 0
    for index, weight in enumerate(weights):
        group = min(limit - 1, (running * limit) // total)
        if current and group != last_group:
            groups.append(current)
            current = []
        current.append(index)
        last_group = group
        running += weight
    if current:
        groups.append(current)
    return groups


def _entry_shards(
    entries: tuple[AuditEntry, ...], limit: int, label: str, start_index: int = 0
) -> list[Shard]:
    shards: list[Shard] = []
    position = 0
    for size in _chunk_sizes(len(entries), limit):
        shards.append(
            Shard(
                index=start_index + len(shards),
                kind="entries",
                label=f"{label}[{position}:{position + size}]",
                entries=entries[position : position + size],
                planned_entries=size,
            )
        )
        position += size
    return shards


def _segment_shards(
    snapshot: tuple[tuple[str, int], ...],
    limit: int,
    label: str,
    start_index: int = 0,
) -> list[Shard]:
    weights = [entry_count for _, entry_count in snapshot]
    shards: list[Shard] = []
    for group in _segment_groups(weights, limit):
        first, last = group[0], group[-1]
        shards.append(
            Shard(
                index=start_index + len(shards),
                kind="segments",
                label=f"{label}[seg {first}..{last}]",
                segments=tuple(snapshot[i][0] for i in group),
                planned_entries=sum(weights[i] for i in group),
            )
        )
    return shards


def _store_snapshot(directory: Path) -> tuple[tuple[str, int], ...]:
    """Open a store directory read-side, snapshot its segments, close.

    Opening runs the store's normal recovery, so a torn active tail is
    repaired before workers stream the files.
    """
    from repro.store.store import AuditStore

    store = AuditStore(directory, create=False)
    try:
        return store.segment_snapshot()
    finally:
        store.close()


def shards_past_watermark(
    directory: str | Path,
    sealed: tuple,
    watermark: int,
    limit: int,
    label: str = "tail",
) -> tuple[Shard, ...]:
    """Plan shards covering sealed entries ``[watermark, total)`` only.

    ``sealed`` is the manifest's ordered
    :class:`~repro.store.manifest.SegmentMeta` list; ``watermark`` counts
    entries already consumed from the front of the sealed region.  The
    refinement daemon's watermark normally lands exactly on a segment
    boundary (it only advances past whole sealed segments), but
    compaction may merge consumed and unconsumed segments into one file —
    in that case the straddling segment's already-consumed head is
    skipped by streaming, and the remainder travels as an entries shard.
    Shards concatenate, in index order, to exactly the unconsumed sealed
    suffix in global append order.
    """
    if watermark < 0:
        raise RefinementError(f"watermark must be >= 0, got {watermark}")
    directory = Path(directory)
    snapshot: list[tuple[str, int]] = []
    head_entries: tuple[AuditEntry, ...] = ()
    consumed = 0
    for meta in sealed:
        if consumed + meta.entries <= watermark:
            consumed += meta.entries  # fully behind the watermark
            continue
        if consumed < watermark:
            # compaction merged consumed history into this segment: skip
            # the first (watermark - consumed) entries by streaming
            from repro.store.segment import iter_segment

            skip = watermark - consumed
            head_entries = tuple(iter_segment(directory / meta.name))[skip:]
        else:
            snapshot.append((str(directory / meta.name), meta.entries))
        consumed += meta.entries
    shards: list[Shard] = []
    if head_entries:
        shards.append(
            Shard(
                index=0,
                kind="entries",
                label=f"{label}[straddle:{len(head_entries)}]",
                entries=head_entries,
                planned_entries=len(head_entries),
            )
        )
    if snapshot:
        shards.extend(
            _segment_shards(
                snapshot, max(1, limit - len(shards)), label,
                start_index=len(shards),
            )
        )
    return tuple(shards)


def shards_of(source, limit: int) -> tuple[Shard, ...]:
    """Plan at most ``limit`` shards whose in-order concatenation is
    exactly ``source``'s entry order.  See the module docstring for the
    shapes each source type produces."""
    if limit < 1:
        raise RefinementError(f"shard limit must be >= 1, got {limit}")
    # Imported lazily: the planner must not force the store or federation
    # stacks onto callers sharding plain in-memory logs.
    from repro.hdb.federation import AuditFederation
    from repro.store.durable import DurableAuditLog
    from repro.store.store import AuditStore

    if isinstance(source, AuditFederation):
        shards: list[Shard] = []
        for site, member in source.shard_sources():
            if isinstance(member, Path):
                if member.is_dir():
                    shards.extend(
                        _segment_shards(
                            _store_snapshot(member), 1, site, start_index=len(shards)
                        )
                    )
                else:
                    suffix = member.suffix.lower()
                    kind = "csv" if suffix == ".csv" else "jsonl"
                    shards.append(
                        Shard(
                            index=len(shards),
                            kind=kind,
                            label=site,
                            path=str(member),
                        )
                    )
            elif isinstance(member, DurableAuditLog):
                shards.extend(
                    _segment_shards(
                        member.store.segment_snapshot(),
                        1,
                        site,
                        start_index=len(shards),
                    )
                )
            else:
                shards.extend(
                    _entry_shards(
                        tuple(member), 1, site, start_index=len(shards)
                    )
                )
        return tuple(shards)
    if isinstance(source, DurableAuditLog):
        return tuple(
            _segment_shards(source.store.segment_snapshot(), limit, source.name)
        )
    if isinstance(source, AuditStore):
        return tuple(
            _segment_shards(source.segment_snapshot(), limit, str(source.directory))
        )
    if isinstance(source, AuditLog):
        return tuple(_entry_shards(source.entries, limit, source.name))
    if isinstance(source, Iterable):
        name = getattr(source, "name", "audit_view")
        return tuple(_entry_shards(tuple(source), limit, name))
    raise RefinementError(
        f"cannot shard {type(source).__name__}: not an audit entry source"
    )
