"""The map side: one streaming pass per shard, mergeable results out.

:func:`map_shard` is what a worker process runs.  It streams its shard
exactly once and computes every per-shard quantity the coordinator
needs, keyed so that merging across shards is exact:

- ``rule_entries`` — for every distinct lifted rule (the mining
  attributes, stringified exactly as :meth:`AuditEntry.to_rule` does),
  the *local* positions of its entries.  Contiguous sharding turns these
  into global entry-coverage indices by adding per-shard offsets.
- ``groups`` — the practice-mining partial aggregate
  ``key -> [support, user-set]``.  Counts add and user sets union, which
  is why the user *sets* travel: ``COUNT(DISTINCT user)`` is not
  mergeable but its underlying set is.  For the SQL miner under
  violation screening the key is compounded with the entry's classifier
  rule so suspected groups can be dropped at merge time; for the Apriori
  miner the SON phase-1 reduction keeps only locally frequent keys.
- ``cls_stats`` / ``regular_rules`` — the violation classifier's
  signals (exception support, exception users, regular echo), collected
  per shard so the coordinator can reproduce
  :func:`repro.audit.classify.classify_exceptions` verdicts globally.

:func:`count_shard` is the SON phase 2: an exact recount of the globally
unioned candidate set, run only for the Apriori miner.

Both functions are module-level and operate on picklable dataclasses so
they cross the process boundary under any multiprocessing start method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from operator import attrgetter

from repro.audit.entry import AuditEntry
from repro.audit.schema import RULE_ATTRIBUTES
from repro.parallel.shards import Shard, iter_shard

#: A lifted-rule key: the entry's stringified values over some attributes.
GroupKey = tuple[str, ...]

#: Miner kinds the map phase knows how to partially aggregate.
PARALLEL_MINERS: tuple[str, ...] = ("sql", "apriori")


@lru_cache(maxsize=None)
def _getter(attributes: tuple[str, ...]):
    """A cached ``attrgetter`` per attribute tuple (few distinct tuples)."""
    return attrgetter(*attributes)


def _values(entry: AuditEntry, attributes: tuple[str, ...]) -> GroupKey:
    """The entry's rule key — string conversion matching ``to_rule``."""
    got = _getter(attributes)(entry)
    if len(attributes) == 1:
        return (str(got),)
    return tuple(str(value) for value in got)


@dataclass(frozen=True)
class MapTask:
    """Everything a worker needs to map one shard (picklable)."""

    attributes: tuple[str, ...]
    include_denied: bool
    exclude_suspected: bool
    collect_regular: bool
    miner: str
    local_min_support: int
    #: also collect the *local positions* of the exception entries behind
    #: every practice group (evidence for decision provenance); additive
    #: so existing pickled tasks and call sites are untouched
    collect_exceptions: bool = False


@dataclass
class ShardPartial:
    """One shard's mergeable contribution (see module docstring)."""

    index: int
    entries: int
    practice_entries: int
    rule_entries: dict[GroupKey, list[int]]
    groups: dict
    cls_stats: dict | None
    regular_rules: set | None
    seconds: float
    #: plain-values key -> local exception-entry positions (only when the
    #: task asked via ``collect_exceptions``; None otherwise)
    exception_entries: dict[GroupKey, list[int]] | None = None


def map_shard(shard: Shard, task: MapTask) -> ShardPartial:
    """Stream ``shard`` once; return its partial aggregates."""
    started = time.perf_counter()
    rule_entries: dict[GroupKey, list[int]] = {}
    groups: dict = {}
    exception_entries: dict[GroupKey, list[int]] | None = (
        {} if task.collect_exceptions else None
    )
    cls_stats: dict | None = {} if task.exclude_suspected else None
    regular_rules: set | None = set() if task.collect_regular else None
    needs_cls = task.exclude_suspected or task.collect_regular
    entries = 0
    practice_entries = 0
    compound_keys = task.exclude_suspected and task.miner == "sql"
    for index, entry in enumerate(iter_shard(shard)):
        entries += 1
        values = _values(entry, task.attributes)
        positions = rule_entries.get(values)
        if positions is None:
            rule_entries[values] = [index]
        else:
            positions.append(index)
        is_exception = entry.is_exception
        is_allowed = entry.is_allowed
        cls_values: GroupKey | None = None
        if needs_cls:
            cls_values = _values(entry, RULE_ATTRIBUTES)
            if cls_stats is not None and is_exception and is_allowed:
                slot = cls_stats.get(cls_values)
                if slot is None:
                    cls_stats[cls_values] = [1, {entry.user}]
                else:
                    slot[0] += 1
                    slot[1].add(entry.user)
            if regular_rules is not None and not is_exception and is_allowed:
                regular_rules.add(cls_values)
        if is_exception and (task.include_denied or is_allowed):
            practice_entries += 1
            key = (values, cls_values) if compound_keys else values
            slot = groups.get(key)
            if slot is None:
                groups[key] = [1, {entry.user}]
            else:
                slot[0] += 1
                slot[1].add(entry.user)
            if exception_entries is not None:
                evidence = exception_entries.get(values)
                if evidence is None:
                    exception_entries[values] = [index]
                else:
                    evidence.append(index)
    if task.miner == "apriori":
        # SON phase 1: only locally frequent keys become candidates.  The
        # pigeonhole bound ceil(min_support / shard_count) guarantees no
        # globally frequent key is dropped by every shard.
        groups = {
            key: slot
            for key, slot in groups.items()
            if slot[0] >= task.local_min_support
        }
    return ShardPartial(
        index=shard.index,
        entries=entries,
        practice_entries=practice_entries,
        rule_entries=rule_entries,
        groups=groups,
        cls_stats=cls_stats,
        regular_rules=regular_rules,
        seconds=time.perf_counter() - started,
        exception_entries=exception_entries,
    )


@dataclass(frozen=True)
class CountTask:
    """SON phase 2 instructions: exact-count the candidate union."""

    attributes: tuple[str, ...]
    include_denied: bool
    candidates: frozenset
    suspected: frozenset = field(default_factory=frozenset)


@dataclass
class CountPartial:
    """One shard's exact candidate counts (SON phase 2)."""

    index: int
    counts: dict[GroupKey, list]
    seconds: float


def count_shard(shard: Shard, task: CountTask) -> CountPartial:
    """Exactly count ``task.candidates`` over the shard's practice set."""
    started = time.perf_counter()
    counts: dict[GroupKey, list] = {}
    for entry in iter_shard(shard):
        if not entry.is_exception:
            continue
        if not task.include_denied and not entry.is_allowed:
            continue
        if task.suspected and _values(entry, RULE_ATTRIBUTES) in task.suspected:
            continue
        values = _values(entry, task.attributes)
        if values not in task.candidates:
            continue
        slot = counts.get(values)
        if slot is None:
            counts[values] = [1, {entry.user}]
        else:
            slot[0] += 1
            slot[1].add(entry.user)
    return CountPartial(
        index=shard.index, counts=counts, seconds=time.perf_counter() - started
    )
