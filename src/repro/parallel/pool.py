"""Process-pool execution with a guaranteed in-process fallback.

:func:`run_sharded` fans a worker function out over the shards and
returns the results *in shard order* (merge determinism does not depend
on completion order).  Pool-infrastructure failures — no ``fork``/
``spawn`` support, a crashed worker, an unpicklable payload — degrade to
running every shard in-process; genuine domain errors raised by the
worker function propagate unchanged.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.obs.runtime import get_registry
from repro.parallel.shards import Shard

#: run_sharded modes, as reported back to the coordinator.
MODES: tuple[str, ...] = ("serial", "pool")


def run_sharded(
    worker: Callable,
    shards: Sequence[Shard],
    task,
    workers: int,
) -> tuple[list, str]:
    """Run ``worker(shard, task)`` for every shard; results in shard
    order.  Returns ``(results, mode)`` where mode says whether a pool
    was actually used."""
    if workers <= 1 or len(shards) <= 1:
        return [worker(shard, task) for shard in shards], "serial"
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) as pool:
            futures = [pool.submit(worker, shard, task) for shard in shards]
            return [future.result() for future in futures], "pool"
    # AttributeError/TypeError are how unpicklable payloads surface from
    # the executor; re-running in-process re-raises any genuine bug.
    except (
        BrokenProcessPool,
        OSError,
        pickle.PicklingError,
        AttributeError,
        TypeError,
    ) as exc:
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                "repro_parallel_fallbacks_total", reason=type(exc).__name__
            ).inc()
        return [worker(shard, task) for shard in shards], "serial"
