"""The reduce side: deterministic merge of shard partials.

:func:`parallel_refine` is a drop-in for
:func:`repro.refinement.engine.refine` that executes shard → map → merge
→ prune.  Determinism and serial equivalence come from four commitments:

1. **Exact partials.**  Supports add, user sets union, entry positions
   offset — nothing sampled, nothing approximated — so merged counts
   equal a single global pass.
2. **Global thresholds re-applied at the merge.**  The ``HAVING`` bounds
   (and the classifier's verdict thresholds under violation screening)
   are evaluated only against merged totals; workers never discard a
   group the globals might keep (the SQL path ships every group, the
   Apriori path over-collects candidates via the SON pigeonhole bound).
3. **Global ordering re-applied at the merge.**  Results are re-sorted
   with the serial miners' own keys — ``(support desc, values asc)`` for
   SQL, ``(support desc, str(rule))`` for Apriori — so worker completion
   order never shows through.
4. **One shared grounder.**  Coverage and pruning masks are produced by
   the coordinator's single interned grounder; worker processes never
   ground anything, so every mask is comparable and the prune partition
   is identical to the serial run's.

The produced :class:`~repro.refinement.engine.RefinementResult` matches
the serial path field for field, including
``entry_coverage.uncovered_entries`` (shard offsets restore global
positions) and the lazy ``practice`` view.
"""

from __future__ import annotations

from heapq import merge as heap_merge

from repro.audit.classify import ClassifierConfig
from repro.audit.schema import RULE_ATTRIBUTES
from repro.coverage.engine import EntryCoverageReport, compute_coverage
from repro.errors import RefinementError
from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import Pattern
from repro.mining.sql_patterns import (
    SqlPartialAggregate,
    SqlPatternMiner,
    finalize_patterns,
)
from repro.obs.metrics import CARDINALITY_BUCKETS
from repro.obs.runtime import get_registry
from repro.parallel.partials import (
    CountTask,
    MapTask,
    ShardPartial,
    count_shard,
    map_shard,
)
from repro.parallel.pool import run_sharded
from repro.parallel.shards import shards_of
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.refinement.engine import RefinementConfig, RefinementResult
from repro.refinement.prune import prune_patterns
from repro.vocab.vocabulary import Vocabulary


def supports_parallel_miner(miner) -> bool:
    """Can the map phase partially aggregate for this miner?

    ``None`` (the engine default) and the two built-in miners are
    supported; an arbitrary ``PatternMiner`` implementation has no
    partial-aggregate form, so the engine falls back to serial for it.
    """
    return miner is None or isinstance(miner, (SqlPatternMiner, AprioriPatternMiner))


def _miner_kind(miner) -> str:
    if miner is None or isinstance(miner, SqlPatternMiner):
        return "sql"
    if isinstance(miner, AprioriPatternMiner):
        return "apriori"
    raise RefinementError(
        f"parallel refinement supports the built-in miners, not "
        f"{type(miner).__name__}; run serially for custom miners"
    )


def _merge_suspected(
    partials: list[ShardPartial], config: ClassifierConfig
) -> frozenset:
    """Reproduce ``classify_exceptions`` verdicts from merged signals.

    A rule is suspected iff its merged exception support/user counts fail
    both thresholds *and* no shard saw it echoed through the regular
    path (the echo sets are empty under ``classify_scope="practice"``,
    which is exactly the serial semantics: the practice subset holds no
    regular entries, so the echo rescue never fires there).
    """
    stats: dict = {}
    echoed: set = set()
    for partial in partials:
        for key, (count, users) in (partial.cls_stats or {}).items():
            slot = stats.get(key)
            if slot is None:
                stats[key] = [count, set(users)]
            else:
                slot[0] += count
                slot[1] |= users
        if partial.regular_rules:
            echoed |= partial.regular_rules
    suspected = set()
    for key, (count, users) in stats.items():
        practice_like = (
            count >= config.min_support and len(users) >= config.min_distinct_users
        ) or (config.trust_regular_echo and key in echoed)
        if not practice_like:
            suspected.add(key)
    return frozenset(suspected)


def _sql_patterns(
    partials: list[ShardPartial],
    suspected: frozenset,
    exclude_suspected: bool,
    cfg: RefinementConfig,
) -> tuple[Pattern, ...]:
    """Collapse SQL-path partials and apply the global reduce."""
    aggregate = SqlPartialAggregate(attributes=cfg.mining.attributes)
    for partial in partials:
        for key, (count, users) in partial.groups.items():
            if exclude_suspected:
                values, cls_values = key
                if cls_values in suspected:
                    continue
            else:
                values = key
            slot = aggregate.groups.get(values)
            if slot is None:
                aggregate.groups[values] = [count, set(users)]
            else:
                slot[0] += count
                slot[1] |= users
    return finalize_patterns(aggregate, cfg.mining)


def _apriori_patterns(count_partials: list, cfg: RefinementConfig) -> tuple[Pattern, ...]:
    """Merge SON phase-2 counts and apply the serial miner's reduce."""
    merged: dict = {}
    for partial in count_partials:
        for values, (count, users) in partial.counts.items():
            slot = merged.get(values)
            if slot is None:
                merged[values] = [count, set(users)]
            else:
                slot[0] += count
                slot[1] |= users
    patterns = [
        Pattern(
            rule=Rule.from_pairs(sorted(zip(cfg.mining.attributes, values))),
            support=count,
            distinct_users=len(users),
        )
        for values, (count, users) in merged.items()
        if count >= cfg.mining.min_support
        and len(users) >= cfg.mining.min_distinct_users
    ]
    patterns.sort(key=lambda p: (-p.support, str(p.rule)))
    return tuple(patterns)


def parallel_refine(
    policy_store: Policy,
    audit_log,
    vocabulary: Vocabulary,
    config: RefinementConfig | None = None,
    grounder: Grounder | None = None,
) -> RefinementResult:
    """Algorithm 2 as shard → partial aggregate → deterministic merge.

    Accepts exactly what :func:`repro.refinement.engine.refine` accepts
    (plus requires ``config.execution`` for the worker count) and returns
    an identical :class:`~repro.refinement.engine.RefinementResult` —
    same patterns in the same order, same prune partition, same coverage
    ratios and uncovered-entry indices.
    """
    from repro.parallel.execution import ExecutionPolicy

    cfg = config or RefinementConfig()
    execution = cfg.execution or ExecutionPolicy()
    kind = _miner_kind(cfg.miner)
    if len(audit_log) == 0:
        raise RefinementError("cannot refine against an empty audit log")
    if grounder is None:
        grounder = Grounder(vocabulary)
    elif grounder.vocabulary is not vocabulary:
        raise RefinementError("refine called with a grounder for a different vocabulary")

    reg = get_registry()
    with reg.span("repro_parallel_stage", stage="shard"):
        shards = shards_of(audit_log, execution.shard_limit)
    task = MapTask(
        attributes=cfg.mining.attributes,
        include_denied=cfg.include_denied,
        exclude_suspected=cfg.exclude_suspected_violations,
        collect_regular=(
            cfg.exclude_suspected_violations and cfg.classify_scope == "log"
        ),
        miner=kind,
        local_min_support=max(
            1, -(-cfg.mining.min_support // max(1, len(shards)))
        ),
    )
    with reg.span("repro_parallel_stage", stage="map"):
        partials, mode = run_sharded(map_shard, shards, task, execution.workers)

    if reg.enabled:
        reg.counter("repro_parallel_runs_total", mode=mode, miner=kind).inc()
        reg.counter("repro_parallel_shards_total").inc(len(shards))
        sizes = reg.histogram(
            "repro_parallel_shard_entries", buckets=CARDINALITY_BUCKETS
        )
        worker_seconds = reg.histogram("repro_parallel_worker_seconds")
        for partial in partials:
            sizes.observe(partial.entries)
            worker_seconds.observe(partial.seconds)

    with reg.span("repro_parallel_stage", stage="merge"):
        # Distinct lifted rules in first-global-occurrence order: shard
        # order plus each worker dict's insertion order restores the
        # order a serial scan would have discovered them in.
        rules: dict = {}
        for partial in partials:
            for values in partial.rule_entries:
                if values not in rules:
                    rules[values] = Rule.from_pairs(
                        list(zip(cfg.mining.attributes, values))
                    )
        audit_policy = Policy(
            rules.values(),
            source=PolicySource.AUDIT_LOG,
            name=f"P_AL({getattr(audit_log, 'name', 'audit_log')})",
        )
        coverage = compute_coverage(policy_store, audit_policy, vocabulary, grounder)
        covering_mask = coverage.covering.mask
        uncovered_rules = {
            values
            for values, rule in rules.items()
            if grounder.ground_mask(rule) & ~covering_mask != 0
        }
        misses: list[int] = []
        offset = 0
        for partial in partials:
            if uncovered_rules:
                local = heap_merge(
                    *(
                        positions
                        for values, positions in partial.rule_entries.items()
                        if values in uncovered_rules
                    )
                )
                misses.extend(offset + position for position in local)
            offset += partial.entries
        total = offset
        matched = total - len(misses)
        entry_coverage = EntryCoverageReport(
            ratio=matched / total,
            matched=matched,
            total=total,
            covering=coverage.covering,
            uncovered_entries=tuple(misses),
        )

        suspected: frozenset = frozenset()
        if cfg.exclude_suspected_violations:
            suspected = _merge_suspected(partials, cfg.classifier or ClassifierConfig())

        if kind == "sql":
            patterns = _sql_patterns(
                partials, suspected, cfg.exclude_suspected_violations, cfg
            )
        else:
            candidates = frozenset(
                values for partial in partials for values in partial.groups
            )
            if candidates:
                count_task = CountTask(
                    attributes=cfg.mining.attributes,
                    include_denied=cfg.include_denied,
                    candidates=candidates,
                    suspected=suspected,
                )
                with reg.span("repro_parallel_stage", stage="count"):
                    count_partials, _ = run_sharded(
                        count_shard, shards, count_task, execution.workers
                    )
                patterns = _apriori_patterns(count_partials, cfg)
            else:
                patterns = ()
        if reg.enabled:
            reg.counter("repro_parallel_merged_groups_total").inc(
                sum(len(partial.groups) for partial in partials)
            )

    with reg.span("repro_parallel_stage", stage="prune"):
        prune_result = prune_patterns(patterns, policy_store, vocabulary, grounder)

    practice_source = audit_log
    if not hasattr(audit_log, "where"):
        # Sources without the AuditLog read protocol (an AuditFederation)
        # are exposed through a lazy view over the shard plan, so the
        # returned practice subset streams in the same site-major order
        # the merge used.
        from repro.parallel.shards import iter_shard
        from repro.store.durable import StreamedAuditView

        practice_source = StreamedAuditView(
            lambda: (entry for shard in shards for entry in iter_shard(shard)),
            name=getattr(audit_log, "name", "audit_source"),
        )
    # Same subset filter_practice would produce, but the suspected-rule
    # verdicts come from the merged shard signals instead of an eager
    # re-classification pass over the whole trail.
    suspected_rules = (
        {Rule.from_pairs(list(zip(RULE_ATTRIBUTES, key))) for key in suspected}
        if cfg.exclude_suspected_violations
        else None
    )
    include_denied = cfg.include_denied

    def _is_practice(entry) -> bool:
        if not entry.is_exception:
            return False
        if not include_denied and not entry.is_allowed:
            return False
        return suspected_rules is None or entry.to_rule() not in suspected_rules

    practice = practice_source.where(_is_practice)
    practice.name = f"{getattr(audit_log, 'name', 'audit_source')}.practice"
    if reg.enabled:
        reg.counter("repro_refinement_runs_total").inc()
        reg.counter("repro_refinement_patterns_mined_total").inc(len(patterns))
        reg.counter("repro_refinement_patterns_useful_total").inc(
            len(prune_result.useful)
        )
        reg.counter("repro_refinement_patterns_pruned_total").inc(
            len(prune_result.pruned)
        )
    return RefinementResult(
        practice=practice,
        patterns=patterns,
        useful_patterns=prune_result.useful,
        pruned_patterns=prune_result.pruned,
        coverage=coverage,
        entry_coverage=entry_coverage,
    )
