"""The execution policy: how many workers, how many shards.

Kept dependency-free so :mod:`repro.refinement.engine` can carry an
``ExecutionPolicy`` on its config without importing the pool machinery —
the engine only looks at :attr:`ExecutionPolicy.workers` to decide
whether to delegate to :func:`repro.parallel.refine.parallel_refine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RefinementError


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one refinement run is executed.

    ``workers`` is the process count; ``1`` (the default) means the
    serial in-process pipeline.  ``max_shards`` caps how many shards the
    planner produces (default: one per worker); more shards than workers
    simply queue, which can smooth imbalance between segment sizes.
    """

    workers: int = 1
    max_shards: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RefinementError(
                f"execution workers must be >= 1, got {self.workers}"
            )
        if self.max_shards is not None and self.max_shards < 1:
            raise RefinementError(
                f"execution max_shards must be >= 1, got {self.max_shards}"
            )

    @property
    def shard_limit(self) -> int:
        """The planner's shard cap: ``max_shards`` or one per worker."""
        return self.max_shards if self.max_shards is not None else self.workers

    @property
    def parallel(self) -> bool:
        """True when this policy asks for the sharded execution path."""
        return self.workers > 1
