"""The fleet worker process: one PDP server over one private store.

:func:`worker_main` is the (module-top-level, spawn-picklable) entry the
supervisor launches N times.  Each worker:

1. opens (or creates) its **own** durable audit store under
   ``<store_dir>/worker-NN/`` — the single-writer contract holds because
   no other process ever touches that directory;
2. builds the deterministic demo engine (same ``rows``/``seed``/
   ``rules`` as every sibling, clock advanced past any pre-existing
   trail so a respawn keeps appending monotonically);
3. serves on the shared listener — either binding itself with
   ``SO_REUSEPORT`` on the fleet port, or accepting on the supervisor's
   passed socket (fd mode) — starting **not-ready** so decision traffic
   is shed until replay completes;
4. replays the supervisor's oplog (the admin history it missed), then
   reports ready and runs the control loop until ``stop``;
5. drains the server, syncs and closes the store, and reports
   ``stopped``.

A worker never mutates policy or consent on its own: admin frames that
land on its listener are proxied to the supervisor for fleet-wide
broadcast (see :mod:`repro.fleet.control`).
"""

from __future__ import annotations

import logging
import os
import signal

from repro.fleet.config import FleetConfig
from repro.fleet.control import WorkerControl, apply_broadcast
from repro.fleet.trail import worker_site, worker_store_dir
from repro.serve.engine import build_demo_engine
from repro.serve.server import ServerConfig, ServerThread
from repro.store.durable import DurableAuditLog
from repro.store.store import StoreConfig

_LOGGER = logging.getLogger("repro.fleet.worker")


def _build_engine(config: FleetConfig, index: int):
    """The worker's engine over its private durable segment directory."""
    directory = worker_store_dir(config.store_dir, index)
    directory.mkdir(parents=True, exist_ok=True)
    store_config = (
        StoreConfig(max_segment_entries=config.segment_entries)
        if config.segment_entries is not None
        else None
    )
    audit_log = DurableAuditLog(
        directory, config=store_config, name=worker_site(index), create=True
    )
    engine = build_demo_engine(
        rows=config.rows,
        seed=config.seed,
        rules=list(config.rules) if config.rules is not None else None,
        audit_log=audit_log,
        cache=config.cache,
        cache_size=config.cache_size,
    )
    return engine, audit_log


def worker_main(config: FleetConfig, index: int, conn, listener=None) -> None:
    """Run one fleet worker until the supervisor says stop.

    ``conn`` is the worker end of the control pipe; ``listener`` is the
    supervisor's listening socket in fd mode (None in reuseport mode,
    where this process binds the fleet port itself).
    """
    site = worker_site(index)
    # the supervisor coordinates shutdown: a terminal Ctrl-C must reach
    # it, not kill workers mid-drain underneath it
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - platform-specific
        pass
    control = WorkerControl(site, conn)
    server = None
    audit_log = None
    try:
        engine, audit_log = _build_engine(config, index)
        server_config = ServerConfig(
            host=config.host,
            port=config.port,
            max_inflight=config.max_inflight,
            max_queue=config.max_queue,
            reuse_port=listener is None,
            worker_id=site,
        )
        server = ServerThread(
            engine, server_config, fleet=control, listener=listener,
            ready=False,
        )
        server.start()
        control.attach(engine, server)
        conn.send(("hello", site, os.getpid(), server.port))
        # handshake: the supervisor answers with the oplog this worker
        # missed (empty on first boot); apply it in order, then admit
        message = conn.recv()
        if message[0] != "replay":
            raise RuntimeError(f"expected replay, got {message[0]!r}")
        for payload in message[1]:
            response = apply_broadcast(engine, payload)
            if not response.get("ok"):
                raise RuntimeError(
                    f"oplog replay of {payload.get('op')!r} failed: "
                    f"{response.get('error')}"
                )
            control.version_applied += 1
        server.server.mark_ready()
        conn.send(("ready", site, engine.versions()))
        control.run()
    except (EOFError, OSError, KeyboardInterrupt):
        _LOGGER.warning("%s: control channel lost, shutting down", site)
    except Exception as exc:
        _LOGGER.exception("%s: fatal worker error", site)
        try:
            conn.send(("fatal", site, f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        if server is not None:
            try:
                server.stop(drain=True)
            except Exception:  # pragma: no cover - best-effort drain
                _LOGGER.exception("%s: drain failed", site)
        if audit_log is not None:
            try:
                audit_log.close()
            except Exception:  # pragma: no cover - best-effort close
                _LOGGER.exception("%s: store close failed", site)
        try:
            conn.send(("stopped", site))
        except (OSError, BrokenPipeError):
            pass
        conn.close()
