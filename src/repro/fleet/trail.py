"""The fleet's audit-trail layout and federation plumbing.

Each worker owns one durable store directory under the fleet root —
``<root>/worker-00/``, ``worker-01/``, … — honouring the store layer's
single-writer contract (PR 3): no two processes ever append to the same
segment directory.  Consolidation is the PR 3/4 federation layer over
those directories: :func:`fleet_federation` registers each worker store
as a member site, and :func:`consolidated_trail` k-way merges them into
one time-ordered log — the refinement input that E21 pins byte-equal to
a single-process run.

Live-safety split: :func:`sealed_entry_counts` reads only
``MANIFEST.json`` (atomically replaced, never partially written), so the
supervisor may call it while workers append.  :func:`fleet_federation` /
:func:`consolidated_trail` *open* the member stores — opening runs
recovery, which may rewrite a torn active segment — so they are for
after the fleet has stopped (or for directories copied aside).
"""

from __future__ import annotations

from pathlib import Path

from repro.audit.log import AuditLog
from repro.errors import FleetError
from repro.hdb.federation import AuditFederation
from repro.store.manifest import load_manifest, manifest_path

#: Worker store directories are ``worker-00``, ``worker-01``, …
WORKER_DIR_PREFIX = "worker-"


def worker_site(index: int) -> str:
    """The site/directory name of worker ``index`` (``worker-03``)."""
    if index < 0:
        raise FleetError(f"worker index must be >= 0, got {index}")
    return f"{WORKER_DIR_PREFIX}{index:02d}"


def worker_store_dir(root: str | Path, index: int) -> Path:
    """The durable store directory of worker ``index`` under ``root``."""
    return Path(root) / worker_site(index)


def fleet_sites(root: str | Path) -> tuple[str, ...]:
    """Worker sites present under ``root`` (sorted; manifest required).

    Site order is the federation's member order, so everything derived
    from it — consolidation tie-breaks, daemon consumption order — is
    deterministic across runs.
    """
    base = Path(root)
    if not base.is_dir():
        return ()
    return tuple(
        sorted(
            child.name
            for child in base.iterdir()
            if child.is_dir()
            and child.name.startswith(WORKER_DIR_PREFIX)
            and manifest_path(child).exists()
        )
    )


def sealed_entry_counts(root: str | Path) -> dict[str, int]:
    """Sealed entries per worker site, from manifests only (live-safe)."""
    base = Path(root)
    return {
        site: sum(
            meta.entries for meta in load_manifest(base / site).sealed
        )
        for site in fleet_sites(base)
    }


def fleet_federation(root: str | Path) -> AuditFederation:
    """An :class:`AuditFederation` over the per-worker stores.

    Opens member stores on first access — use after the fleet stopped.
    """
    base = Path(root)
    if not fleet_sites(base):
        raise FleetError(f"{base} holds no worker store directories")
    federation = AuditFederation(name=f"fleet({base.name})")
    federation.register_directory(base)
    return federation


def consolidated_trail(root: str | Path, name: str | None = None) -> AuditLog:
    """The per-worker trails time-merged into one log (post-shutdown).

    Ties on the logical-clock tick keep site order, so the result is
    deterministic; E21 compares its *entry set* (time excluded — each
    worker runs its own logical clock) against a single-process trail.
    """
    return fleet_federation(root).consolidated_log(
        name=name or "fleet.consolidated"
    )
