"""repro.fleet — multi-process decision-service scale-out (PR 8).

One :class:`FleetSupervisor` runs N PDP worker processes behind a shared
listener; each worker owns its engine snapshot, decision cache, and a
private durable audit segment directory; admin mutations broadcast over
a version-stamped control channel; the PR 3/4 federation layer
consolidates the per-worker trails into one refinement input.
"""

from repro.fleet.config import LISTENER_MODES, FleetConfig
from repro.fleet.control import (
    APPLY_OPS,
    REPLAY_OPS,
    WorkerControl,
    apply_broadcast,
)
from repro.fleet.refine import FleetPolicyTarget, FleetRefineDaemon
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.trail import (
    WORKER_DIR_PREFIX,
    consolidated_trail,
    fleet_federation,
    fleet_sites,
    sealed_entry_counts,
    worker_site,
    worker_store_dir,
)
from repro.fleet.worker import worker_main

__all__ = [
    "APPLY_OPS",
    "LISTENER_MODES",
    "REPLAY_OPS",
    "WORKER_DIR_PREFIX",
    "FleetConfig",
    "FleetPolicyTarget",
    "FleetRefineDaemon",
    "FleetSupervisor",
    "WorkerControl",
    "apply_broadcast",
    "consolidated_trail",
    "fleet_federation",
    "fleet_sites",
    "sealed_entry_counts",
    "worker_site",
    "worker_store_dir",
    "worker_main",
]
