"""The closed loop over a fleet: one refinement daemon, N worker trails.

:class:`FleetRefineDaemon` is the PR 6 :class:`RefineDaemon` pointed at a
*federated* evidence base: instead of tailing one store it tails every
worker's sealed segments in site order, folding each into the same
cumulative aggregates.  The PR 4 merge-equivalence argument makes the
mining round over those aggregates equal a serial ``refine()`` over the
consolidated trail — which is exactly what E21 pins byte-for-byte.

Two deltas from the single-store daemon:

- **watermarks are per member.**  ``state.segments_consumed`` holds
  ``"site:count"`` marks (one per worker) instead of segment names;
  ``state.watermark`` stays the fleet-global consumed total so every
  trigger/lag/evidence computation in the base class keeps working.
- **adoption is a broadcast.**  :class:`FleetPolicyTarget` routes
  accepted rules through the supervisor's version-stamped control
  channel, so every worker hot-swaps the same batch; the supervisor's
  shadow policy store is what candidates are pruned against.

Live-safety: consumption reads each member's ``MANIFEST.json`` plus
sealed segment *files* only (:func:`shards_past_watermark` never opens
an :class:`AuditStore`, whose recovery could rewrite a worker's live
active segment).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DaemonError
from repro.fleet.trail import fleet_sites
from repro.parallel.partials import MapTask, map_shard
from repro.parallel.shards import shards_past_watermark
from repro.policy.parser import format_rule
from repro.refine_daemon.daemon import DaemonConfig, RefineDaemon
from repro.refine_daemon.gate import ReviewGate
from repro.store.manifest import load_manifest
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.vocabulary import Vocabulary


class _FederatedTrailView:
    """The minimal store-shaped object the base daemon needs.

    Deliberately has no ``store`` attribute (so the base class treats it
    as the store itself) and no ``add_seal_listener`` (so
    :class:`~repro.refine_daemon.runner.DaemonThread` runs interval-only):
    ``directory`` anchors the persisted daemon state at the fleet root,
    and ``len()`` is the fleet-wide sealed-entry total the lag gauges
    report against.
    """

    def __init__(self, root: str | Path) -> None:
        self.directory = Path(root)

    def __len__(self) -> int:
        return sum(
            sum(meta.entries for meta in load_manifest(self.directory / site).sealed)
            for site in fleet_sites(self.directory)
        )


class FleetPolicyTarget:
    """Adopt through the fleet supervisor's broadcast path.

    ``current_store()`` is the supervisor's shadow store — same initial
    rules as every worker, updated on each successful mutating broadcast
    — so pruning sees the converged fleet policy without a control round
    trip per candidate.
    """

    def __init__(self, supervisor) -> None:
        self.supervisor = supervisor

    def current_store(self):
        """The supervisor's shadow of the converged worker policy."""
        return self.supervisor.policy_store

    def adopt(self, rules, note: str = "") -> int:
        """Broadcast one adoption batch fleet-wide; returns new rules.

        Idempotent like every other target: rules already in the shadow
        store are dropped first, and an empty remainder skips the
        broadcast entirely (no oplog noise from reconcile polls).
        """
        store = self.supervisor.policy_store
        fresh = [rule for rule in rules if rule not in store]
        if not fresh:
            return 0
        response = self.supervisor.adopt_rules(
            [format_rule(rule) for rule in fresh], note=note
        )
        if not response.get("ok"):
            raise DaemonError(
                f"fleet adoption broadcast failed: {response.get('error')}"
            )
        return int(response.get("added", len(fresh)))


class FleetRefineDaemon(RefineDaemon):
    """A :class:`RefineDaemon` whose evidence base is a worker fleet.

    ``root`` is the fleet store directory (one ``worker-NN/`` per
    member); daemon state persists at the root, next to the worker
    directories.  Everything else — triggers, mining, gating, resume —
    is the base class verbatim.
    """

    def __init__(
        self,
        root: str | Path,
        target,
        gate: ReviewGate,
        vocabulary: Vocabulary | None = None,
        config: DaemonConfig | None = None,
        name: str = "fleet-refine-daemon",
        provenance=None,
    ) -> None:
        super().__init__(
            _FederatedTrailView(root),
            target,
            vocabulary if vocabulary is not None else healthcare_vocabulary(),
            gate,
            config=config,
            name=name,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    # per-member watermark plumbing
    # ------------------------------------------------------------------
    def _member_marks(self) -> dict[str, int]:
        """Per-site consumed counts decoded from ``segments_consumed``."""
        marks: dict[str, int] = {}
        for item in self.state.segments_consumed:
            site, _, count = str(item).rpartition(":")
            if site and count.isdigit():
                marks[site] = int(count)
        return marks

    def _consume(self) -> int:
        """Tail every member's sealed segments past its own mark.

        Members are visited in :func:`fleet_sites` order (the federation
        member order), so the evidence-id assignment — fleet-global
        consumption indices continuing from ``state.watermark`` — is
        deterministic across polls and restarts.
        """
        state = self.state
        marks = self._member_marks()
        task = MapTask(
            attributes=self.config.mining.attributes,
            include_denied=False,
            exclude_suspected=False,
            collect_regular=False,
            miner="sql",
            local_min_support=1,
            collect_exceptions=True,
        )
        root = self._store.directory
        consumed_total = 0
        new_marks: dict[str, int] = dict(marks)
        for site in fleet_sites(root):
            directory = root / site
            sealed = load_manifest(directory).sealed
            total = sum(meta.entries for meta in sealed)
            mark = marks.get(site, 0)
            if total < mark:
                raise DaemonError(
                    f"fleet member {site} holds {total} sealed entries but "
                    f"its daemon mark is {mark}; the trail shrank — "
                    f"refusing to tail a rewritten history"
                )
            if total == mark:
                new_marks[site] = total
                continue
            shards = shards_past_watermark(
                directory, sealed, mark, self.config.shard_limit,
                label=f"{self.name}:{site}",
            )
            consumed = 0
            for shard in shards:
                partial = map_shard(shard, task)
                self._merge_partial(
                    partial, state.watermark + consumed_total + consumed
                )
                consumed += partial.entries
            if consumed != total - mark:
                raise DaemonError(
                    f"fleet member {site}: tail pass consumed {consumed} "
                    f"entries but the sealed region grew by {total - mark}; "
                    f"segment files disagree with the manifest — run "
                    f"`repro store verify` on {directory}"
                )
            consumed_total += consumed
            new_marks[site] = total
        state.watermark += consumed_total
        state.segments_consumed = [
            f"{site}:{count}" for site, count in sorted(new_marks.items())
        ]
        return consumed_total
