"""The fleet supervisor: N PDP worker processes behind one listener.

:class:`FleetSupervisor` owns

- the **listener**: in ``reuseport`` mode it binds the fleet port
  *without listening* (reserving it — SO_REUSEPORT only balances across
  *listening* sockets, so the supervisor's bound-but-silent socket never
  steals a connection) and each worker binds the same port itself; in
  ``fd`` mode it binds + listens one socket and ships the fd to every
  worker (shared accept queue), keeping its own copy for respawns;
- the **control channel**: one duplex pipe per worker, serviced by a
  single control thread (the only thread that ever ``recv``s from
  worker pipes — external callers inject work through a queue plus a
  waker pipe included in the ``connection.wait`` set);
- the **admin oplog**: every successful mutating broadcast is appended,
  and a (re)spawned worker replays it over the deterministic initial
  engine before going ready — identical start state + identical op
  sequence = convergence by construction;
- **crash handling**: a worker that dies (or fails to ack a broadcast
  inside the deadline — the divergence guard) is killed and respawned,
  up to the configured budget;
- the optional **fleet refinement daemon**
  (:class:`~repro.fleet.refine.FleetRefineDaemon`), whose adoptions ride
  the same broadcast path as client admin ops.

Shutdown is drain-then-stop fleet-wide: every worker drains its own
in-flight work and flushes its store before the supervisor returns.
"""

from __future__ import annotations

import dataclasses
import logging
import queue
import socket
import threading
import time
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from pathlib import Path

from repro.errors import FleetError
from repro.fleet.config import FleetConfig
from repro.fleet.control import REPLAY_OPS
from repro.fleet.trail import worker_site
from repro.fleet.worker import worker_main
from repro.obs.exposition import render_prometheus
from repro.policy.parser import parse_rule
from repro.policy.store import PolicyStore
from repro.serve import protocol

_LOGGER = logging.getLogger("repro.fleet.supervisor")

#: Accept backlog of the fd-mode shared listener.
_BACKLOG = 512


class _WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    __slots__ = (
        "index", "site", "process", "conn", "port", "pid", "ready",
        "versions", "alive", "reaped",
    )

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.site = worker_site(index)
        self.process = process
        self.conn = conn
        self.port: int | None = None
        self.pid: int | None = None
        self.ready = False
        self.versions: dict | None = None
        self.alive = True
        self.reaped = False

    def send(self, message: tuple) -> bool:
        """Send one control message; marks the handle dead on failure."""
        try:
            self.conn.send(message)
            return True
        except (OSError, BrokenPipeError, ValueError):
            self.alive = False
            return False


class FleetSupervisor:
    """Run and coordinate a fleet of PDP worker processes."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self._mode = config.resolve_listener()
        self._ctx = get_context("spawn")
        self._handles: dict[int, _WorkerHandle] = {}
        self._listener: socket.socket | None = None
        self._port = config.port
        self._oplog: list[dict] = []
        self._version = 0
        self.respawns = 0
        self._started = False
        self._stopped = threading.Event()
        self._shutdown_requested = threading.Event()
        self._requests: queue.Queue = queue.Queue()
        self._waker_recv, self._waker_send = self._ctx.Pipe(duplex=False)
        self._control_thread: threading.Thread | None = None
        #: the supervisor's shadow of the (converged) worker policy
        #: stores: same initial rules, updated on every successful
        #: mutating broadcast — what the fleet refine daemon prunes
        #: candidates against without asking a worker
        self.policy_store = self._build_shadow_store()
        self.daemon = None  # a FleetRefineDaemon, via attach_daemon()
        self._daemon_thread = None

    def _build_shadow_store(self) -> PolicyStore:
        from repro.experiments.harness import DEMO_RULES

        store = PolicyStore(name="fleet-shadow")
        rules = self.config.rules if self.config.rules is not None else DEMO_RULES
        for text in rules:
            store.add(parse_rule(text), added_by="fleet-supervisor",
                      origin="serve")
        return store

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The fleet's shared port (resolved at :meth:`start`)."""
        if not self._started:
            raise FleetError("fleet is not started")
        return self._port

    @property
    def listener_mode(self) -> str:
        """The concrete listener mode in use."""
        return self._mode

    def start(self) -> "FleetSupervisor":
        """Bind the listener, spawn every worker, start the control loop."""
        if self._started:
            raise FleetError("fleet is already started")
        Path(self.config.store_dir).mkdir(parents=True, exist_ok=True)
        self._open_listener()
        worker_config = dataclasses.replace(
            self.config, port=self._port, listener=self._mode
        )
        self._worker_config = worker_config
        try:
            for index in range(self.config.workers):
                self._handles[index] = self._launch(index)
            for handle in self._handles.values():
                self._handshake(handle)
        except BaseException:
            self._kill_all()
            self._close_listener()
            raise
        self._started = True
        self._control_thread = threading.Thread(
            target=self._control_loop, name="fleet-control", daemon=True
        )
        self._control_thread.start()
        _LOGGER.info(
            "fleet up: %d workers on %s:%d (%s listener)",
            len(self._handles), self.host, self._port, self._mode,
        )
        return self

    def _open_listener(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self._mode == "reuseport":
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise FleetError(
                        "listener mode 'reuseport' needs SO_REUSEPORT; "
                        "use 'fd' on this platform"
                    )
                # bind WITHOUT listening: reserves the port for the fleet
                # (workers bind it with SO_REUSEPORT themselves) while a
                # non-listening socket never receives connections
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
            else:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.config.host, self.config.port))
                sock.listen(_BACKLOG)
        except BaseException:
            sock.close()
            raise
        self._listener = sock
        self._port = sock.getsockname()[1]

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._listener = None

    def _launch(self, index: int) -> _WorkerHandle:
        sup_conn, worker_conn = self._ctx.Pipe(duplex=True)
        listener = self._listener if self._mode == "fd" else None
        process = self._ctx.Process(
            target=worker_main,
            args=(self._worker_config, index, worker_conn, listener),
            name=worker_site(index),
            daemon=True,
        )
        process.start()
        worker_conn.close()
        return _WorkerHandle(index, process, sup_conn)

    def _handshake(self, handle: _WorkerHandle) -> None:
        """hello → replay(oplog) → ready, inside the start timeout."""
        deadline = time.monotonic() + self.config.worker_start_timeout
        message = self._expect(handle, "hello", deadline)
        handle.pid, handle.port = message[2], message[3]
        handle.send(("replay", list(self._oplog)))
        message = self._expect(handle, "ready", deadline)
        handle.versions = message[2]
        handle.ready = True

    def _expect(self, handle: _WorkerHandle, want: str, deadline: float):
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(max(0.0, remaining)):
                raise FleetError(
                    f"{handle.site} did not send {want!r} within "
                    f"{self.config.worker_start_timeout:.0f}s"
                )
            try:
                message = handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise FleetError(
                    f"{handle.site} died during startup: {exc}"
                ) from exc
            if message[0] == want:
                return message
            if message[0] == "fatal":
                raise FleetError(f"{handle.site} failed: {message[2]}")
            # anything else during startup is stale chatter; drop it

    # ------------------------------------------------------------------
    # the control loop (the ONLY thread that recvs from worker pipes)
    # ------------------------------------------------------------------
    def _live(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.alive]

    def _wake(self) -> None:
        try:
            self._waker_send.send(b"w")
        except (OSError, BrokenPipeError):  # pragma: no cover - teardown
            pass

    def _control_loop(self) -> None:
        while not self._shutdown_requested.is_set():
            conns = [h.conn for h in self._live()]
            by_conn = {h.conn: h for h in self._live()}
            try:
                ready = mp_connection.wait(
                    conns + [self._waker_recv], timeout=0.25
                )
            except OSError:  # pragma: no cover - teardown race
                ready = []
            for conn in ready:
                if conn is self._waker_recv:
                    try:
                        while self._waker_recv.poll(0):
                            self._waker_recv.recv()
                    except (EOFError, OSError):  # pragma: no cover
                        pass
                    continue
                handle = by_conn.get(conn)
                if handle is not None:
                    self._pump(handle)
            self._reap_and_respawn()
            self._drain_requests()
        self._do_shutdown()

    def _pump(self, handle: _WorkerHandle) -> None:
        while handle.alive:
            try:
                if not handle.conn.poll(0):
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.alive = False
                return
            self._handle_message(handle, message)

    def _handle_message(self, handle: _WorkerHandle, message: tuple) -> None:
        kind = message[0]
        if kind == "admin":
            self._requests.put(
                {"kind": "proxy_admin", "handle": handle,
                 "ticket": message[2], "payload": message[3]}
            )
        elif kind == "fleet":
            self._requests.put(
                {"kind": "proxy_fleet", "handle": handle,
                 "ticket": message[2], "op": message[3]}
            )
        elif kind == "shutdown_req":
            _LOGGER.info("%s requested fleet shutdown", handle.site)
            self._shutdown_requested.set()
        elif kind == "fatal":
            _LOGGER.error("%s reported fatal: %s", handle.site, message[2])
            handle.ready = False
        elif kind == "stopped":
            handle.ready = False
        elif kind == "applied":
            # stale ack from a broadcast whose deadline already passed
            handle.versions = (message[3] or {}).get("versions",
                                                     handle.versions)
        # hello/ready/status/snapshot outside a collect: stale; ignored

    def _reap_and_respawn(self) -> None:
        if self._shutdown_requested.is_set():
            return
        for index, handle in list(self._handles.items()):
            if handle.reaped:
                continue
            if handle.alive and handle.process.is_alive():
                continue
            handle.alive = False
            if not self.config.respawn:
                handle.reaped = True
                continue
            if self.respawns >= self.config.max_respawns:
                _LOGGER.error(
                    "%s is down and the respawn budget (%d) is spent",
                    handle.site, self.config.max_respawns,
                )
                handle.reaped = True
                continue
            _LOGGER.warning("%s died (exit %s); respawning", handle.site,
                            handle.process.exitcode)
            self._dispose(handle)
            self.respawns += 1
            replacement = self._launch(index)
            try:
                self._handshake(replacement)
            except FleetError:
                _LOGGER.exception("respawn of %s failed", handle.site)
                self._dispose(replacement)
                continue
            self._handles[index] = replacement

    def _dispose(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(5.0)

    def _drain_requests(self) -> None:
        while True:
            try:
                request = self._requests.get_nowait()
            except queue.Empty:
                return
            try:
                result = self._execute(request)
            except Exception as exc:  # keep the control loop alive
                _LOGGER.exception("fleet request failed")
                result = protocol.error_response(
                    code=protocol.INTERNAL, error=str(exc)
                )
            kind = request["kind"]
            if kind == "proxy_admin" or kind == "proxy_fleet":
                reply = "admin_reply" if kind == "proxy_admin" else "fleet_reply"
                request["handle"].send((reply, request["ticket"], result))
            else:
                request["result"][0] = result
                request["event"].set()

    def _execute(self, request: dict) -> dict:
        kind = request["kind"]
        if kind == "proxy_admin" or kind == "broadcast":
            return self._broadcast(request["payload"])
        if kind == "proxy_fleet":
            op = request["op"]
            if op == "fleet.status":
                return self._collect_status()
            if op == "fleet.metrics":
                return self._collect_metrics()
            if op == "fleet.sync":
                return self._broadcast({"op": "fleet.sync"})
            return protocol.error_response(
                code=protocol.BAD_REQUEST, error=f"unknown fleet op {op!r}"
            )
        if kind == "status":
            return self._collect_status()
        if kind == "metrics":
            return self._collect_metrics()
        raise FleetError(f"unknown fleet request kind {kind!r}")

    # ------------------------------------------------------------------
    # broadcasts (run on the control thread)
    # ------------------------------------------------------------------
    def _collect(self, targets, message, matcher, timeout: float) -> dict:
        """Send ``message`` to every target; gather matched replies.

        Unrelated messages arriving meanwhile are routed through
        :meth:`_handle_message` (proxy requests just queue up behind the
        current operation — the control thread stays single-minded).
        """
        pending: dict = {}
        for handle in targets:
            if handle.send(message):
                pending[handle.conn] = handle
        replies: dict[str, object] = {}
        deadline = time.monotonic() + timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                ready = mp_connection.wait(list(pending), timeout=remaining)
            except OSError:  # pragma: no cover - teardown race
                break
            for conn in ready:
                handle = pending[conn]
                try:
                    incoming = handle.conn.recv()
                except (EOFError, OSError):
                    handle.alive = False
                    del pending[conn]
                    continue
                matched = matcher(incoming)
                if matched is not None:
                    replies[handle.site] = matched
                    del pending[conn]
                else:
                    self._handle_message(handle, incoming)
        stragglers = [pending[conn] for conn in pending]
        return {"replies": replies, "stragglers": stragglers}

    def _broadcast(self, payload: dict) -> dict:
        """One version-stamped broadcast; returns the converged response.

        The version counter bumps unconditionally (acks are matched on
        it); the oplog records only *successful mutating* ops, so a
        respawned worker replays exactly the state-changing history.  A
        worker that misses the ack deadline may have applied the op or
        not — unknowable — so it is killed and respawned through the
        replay path rather than allowed to drift (the divergence guard).
        """
        targets = [h for h in self._live() if h.ready]
        if not targets:
            return protocol.error_response(
                code=protocol.INTERNAL, error="no ready fleet workers"
            )
        self._version += 1
        version = self._version

        def matcher(incoming):
            if incoming[0] == "applied" and incoming[2] == version:
                return incoming[3]
            return None

        outcome = self._collect(
            targets, ("apply", version, payload), matcher,
            self.config.control_timeout,
        )
        for straggler in outcome["stragglers"]:
            _LOGGER.error(
                "%s missed ack of control version %d; killing (divergence "
                "guard)", straggler.site, version,
            )
            straggler.alive = False
            if straggler.process.is_alive():
                straggler.process.kill()
            # _reap_and_respawn brings it back through oplog replay
        replies = outcome["replies"]
        if not replies:
            return protocol.error_response(
                code=protocol.INTERNAL,
                error=f"no worker acked control version {version}",
            )
        for handle in targets:
            response = replies.get(handle.site)
            if response and response.get("ok"):
                handle.versions = response.get("versions", handle.versions)
        # all workers fold the same op over the same state: any ack
        # represents the converged outcome
        response = dict(next(iter(replies.values())))
        ok = bool(response.get("ok"))
        if ok and payload.get("op") in REPLAY_OPS:
            self._oplog.append(dict(payload))
            self._apply_to_shadow(payload)
        response["fleet"] = {
            "version": version,
            "acks": len(replies),
            "workers": len(targets),
        }
        return response

    def _apply_to_shadow(self, payload: dict) -> None:
        op = payload.get("op")
        if op == "admin.add_rule":
            self.policy_store.add(
                parse_rule(payload["rule"]), added_by="serve-admin",
                origin="serve", note=str(payload.get("note", "")),
            )
        elif op == "admin.retire_rule":
            self.policy_store.retire(
                parse_rule(payload["rule"]), added_by="serve-admin",
                note=str(payload.get("note", "")),
            )
        elif op == "fleet.adopt":
            self.policy_store.add_all(
                tuple(parse_rule(text) for text in payload.get("rules", ())),
                added_by="refine-daemon", origin="refinement",
                note=str(payload.get("note", "")),
            )
        # admin.consent does not touch the policy store

    def _collect_status(self) -> dict:
        targets = [h for h in self._live() if h.ready]

        def matcher(incoming):
            return incoming[2] if incoming[0] == "status" else None

        outcome = self._collect(
            targets, ("status_req",), matcher, self.config.control_timeout
        )
        rows = []
        for index in sorted(self._handles):
            handle = self._handles[index]
            row = outcome["replies"].get(handle.site)
            if row is None:
                row = {
                    "site": handle.site,
                    "pid": handle.pid,
                    "port": handle.port,
                    "ready": False,
                    "versions": handle.versions,
                    "reachable": False,
                }
            else:
                row = dict(row)
                row["reachable"] = True
            rows.append(row)
        stamps = {
            tuple(sorted((row.get("versions") or {}).items()))
            for row in rows
            if row.get("versions")
        }
        status = {
            "size": len(self._handles),
            "ready": sum(1 for row in rows if row.get("ready")),
            "host": self.host,
            "port": self._port,
            "listener": self._mode,
            "control_version": self._version,
            "oplog": len(self._oplog),
            "respawns": self.respawns,
            "converged": len(stamps) <= 1,
            "workers": rows,
        }
        if self.daemon is not None:
            status["refine_daemon"] = self.daemon.status()
        return protocol.ok_response(**status)

    def _collect_metrics(self) -> dict:
        targets = [h for h in self._live() if h.ready]

        def matcher(incoming):
            return incoming[2] if incoming[0] == "snapshot" else None

        outcome = self._collect(
            targets, ("snapshot_req",), matcher, self.config.control_timeout
        )
        merged: dict = {"counters": [], "gauges": [], "histograms": []}
        for site in sorted(outcome["replies"]):
            snapshot = outcome["replies"][site]
            for kind in merged:
                for sample in snapshot.get(kind, []):
                    sample = dict(sample)
                    labels = dict(sample.get("labels") or {})
                    # the per-worker series dimension: one fleet scrape
                    # distinguishes workers without colliding names
                    labels["worker"] = site
                    sample["labels"] = labels
                    # exemplars are per-process trace links; they do not
                    # survive aggregation meaningfully
                    sample.pop("exemplars", None)
                    merged[kind].append(sample)
        return protocol.ok_response(
            workers=len(outcome["replies"]),
            metrics=render_prometheus(merged),
        )

    # ------------------------------------------------------------------
    # the external surface (any thread)
    # ------------------------------------------------------------------
    def _submit(self, request: dict, timeout: float = 60.0) -> dict:
        """Inject one request into the control thread and await it."""
        if not self._started or self._stopped.is_set():
            raise FleetError("fleet is not running")
        request = dict(request)
        request["event"] = threading.Event()
        request["result"] = [None]
        self._requests.put(request)
        self._wake()
        if not request["event"].wait(timeout):
            raise FleetError(f"fleet request {request['kind']!r} timed out")
        return request["result"][0]

    def broadcast_admin(self, payload: dict) -> dict:
        """Broadcast one admin op (``admin.add_rule`` etc.) fleet-wide."""
        return self._submit({"kind": "broadcast", "payload": dict(payload)})

    def adopt_rules(self, rules_dsl, note: str = "") -> dict:
        """Broadcast a refine-daemon adoption batch fleet-wide."""
        return self._submit(
            {"kind": "broadcast",
             "payload": {"op": "fleet.adopt", "rules": list(rules_dsl),
                         "note": note}}
        )

    def sync(self) -> dict:
        """Fan out a durability barrier: every worker fsyncs its store."""
        return self._submit({"kind": "broadcast",
                             "payload": {"op": "fleet.sync"}})

    def request_shutdown(self) -> None:
        """Ask for a fleet-wide drain-then-stop without blocking.

        Signal-handler safe; :meth:`wait` (or :meth:`shutdown`) observes
        completion.
        """
        self._shutdown_requested.set()
        self._wake()

    def status(self) -> dict:
        """Live fleet status (one ``status_req`` round trip per worker)."""
        return self._submit({"kind": "status"})

    def metrics(self) -> dict:
        """Merged Prometheus text across workers (``metrics`` key)."""
        return self._submit({"kind": "metrics"})

    # ------------------------------------------------------------------
    # refinement daemon
    # ------------------------------------------------------------------
    def attach_daemon(self, gate, config=None, interval: float = 5.0):
        """Attach and start a fleet refinement daemon in the supervisor.

        The daemon tails every worker's sealed segments (read-only) and
        broadcasts adoptions through the control channel; see
        :mod:`repro.fleet.refine`.
        """
        from repro.fleet.refine import FleetPolicyTarget, FleetRefineDaemon
        from repro.refine_daemon.runner import DaemonThread

        if self.daemon is not None:
            raise FleetError("fleet already has a refinement daemon")
        self.daemon = FleetRefineDaemon(
            self.config.store_dir,
            FleetPolicyTarget(self),
            gate=gate,
            config=config,
        )
        self._daemon_thread = DaemonThread(self.daemon, interval=interval)
        self._daemon_thread.start()
        return self.daemon

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def _do_shutdown(self) -> None:
        """Drain-then-stop every worker (runs on the control thread)."""
        deadline = time.monotonic() + self.config.worker_start_timeout
        for handle in self._live():
            handle.send(("stop",))
        for handle in self._handles.values():
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(remaining)
            if handle.process.is_alive():
                _LOGGER.error("%s ignored stop; killing", handle.site)
                handle.process.kill()
                handle.process.join(5.0)
            handle.alive = False
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._close_listener()
        self._stopped.set()

    def shutdown(self, timeout: float = 60.0) -> None:
        """Stop the daemon, drain every worker, stop the control loop."""
        if not self._started:
            return
        if self._daemon_thread is not None:
            self._daemon_thread.stop()
            self._daemon_thread = None
        self._shutdown_requested.set()
        self._wake()
        if not self._stopped.wait(timeout):
            _LOGGER.error("fleet shutdown timed out; killing workers")
            self._kill_all()
            self._stopped.set()
        if self._control_thread is not None:
            self._control_thread.join(5.0)
            self._control_thread = None

    def _kill_all(self) -> None:
        for handle in self._handles.values():
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(2.0)
            handle.alive = False
        self._close_listener()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the fleet has stopped (CLI serve-forever path)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
