"""The fleet control channel: message vocabulary + the worker endpoint.

One duplex :class:`multiprocessing.connection.Connection` pair links the
supervisor to each worker.  Messages are small picklable tuples whose
first element names the kind:

worker → supervisor
    ``("hello", site, pid, port)``        the worker is listening
    ``("ready", site, versions)``         oplog replay done, admitting
    ``("applied", site, version, resp)``  ack of one broadcast op
    ``("status", site, data)``            reply to ``status_req``
    ``("snapshot", site, data)``          reply to ``snapshot_req``
    ``("admin", site, ticket, payload)``  proxy an admin op fleet-wide
    ``("fleet", site, ticket, op)``       proxy a ``fleet.*`` read/sync
    ``("shutdown_req", site)``            a client asked the fleet to stop
    ``("stopped", site)``                 drain finished, exiting
    ``("fatal", site, error)``            unrecoverable worker failure

supervisor → worker
    ``("replay", ops)``                   apply the oplog, then go ready
    ``("apply", version, payload)``       one version-stamped broadcast op
    ``("admin_reply", ticket, resp)``     answer to a proxied admin op
    ``("fleet_reply", ticket, resp)``     answer to a proxied fleet op
    ``("status_req",)`` / ``("snapshot_req",)``
    ``("stop",)``                         drain-then-stop this worker

Ordering guarantee: the supervisor is the only writer on each pipe and
applies broadcast ops strictly in version order from a single control
thread, while each worker applies them strictly in arrival order from a
single :class:`WorkerControl` thread — so every worker folds the same op
sequence over the same deterministic initial engine, and the
``{policy, consent, vocab}`` versions converge after every ack round.
"""

from __future__ import annotations

import itertools
import logging
import threading

from repro.errors import FleetError
from repro.policy.parser import parse_rule
from repro.serve import protocol

_LOGGER = logging.getLogger("repro.fleet.control")

#: Broadcast payload ops a worker knows how to apply.
APPLY_OPS = frozenset(
    {"admin.add_rule", "admin.retire_rule", "admin.consent",
     "fleet.adopt", "fleet.sync"}
)

#: Broadcast ops that mutate engine state and therefore belong in the
#: supervisor's replay oplog (``fleet.sync`` is a durability barrier —
#: replaying it would be harmless but is pure noise).
REPLAY_OPS = frozenset(
    {"admin.add_rule", "admin.retire_rule", "admin.consent", "fleet.adopt"}
)

#: Seconds a worker waits on the supervisor to answer a proxied op.
PROXY_TIMEOUT = 30.0


def apply_broadcast(engine, payload: dict) -> dict:
    """Apply one broadcast op to a worker engine; returns the response.

    Shared by the live control thread and the pre-ready oplog replay, so
    a respawned worker folds history through exactly the code path the
    original broadcasts took.
    """
    op = payload.get("op")
    if op not in APPLY_OPS:
        return protocol.error_response(
            code=protocol.BAD_REQUEST, error=f"unknown broadcast op {op!r}"
        )
    if op == "fleet.sync":
        engine.audit_log.sync()
        return protocol.ok_response(synced=len(engine.audit_log))
    if op == "fleet.adopt":
        try:
            rules = tuple(parse_rule(text) for text in payload.get("rules", ()))
        except Exception as exc:  # PolicyParseError et al.
            return protocol.error_response(
                code=protocol.BAD_REQUEST, error=str(exc)
            )
        snapshot, added = engine.adopt_rules(
            rules, note=str(payload.get("note", ""))
        )
        return protocol.ok_response(added=added, versions=snapshot.versions())
    try:
        request = protocol.parse_request(dict(payload))
    except protocol.ProtocolError as exc:
        return protocol.error_response(code=exc.code, error=str(exc))
    return engine.admin(request)


class WorkerControl:
    """The worker-side endpoint of the control channel.

    Runs the receive loop on the worker's main thread (:meth:`run`);
    the :class:`~repro.serve.server.PdpServer` holds it as the ``fleet``
    hook and calls :meth:`admin_request` / :meth:`fleet_request` /
    :meth:`request_shutdown` from event-loop executor threads — those
    block on a ticketed reply, never on the control thread itself.
    """

    def __init__(self, site: str, conn) -> None:
        self.site = site
        self._conn = conn
        self.engine = None
        self._server = None  # the ServerThread, attached after start
        self._send_lock = threading.Lock()
        self._tickets = itertools.count(1)
        self._pending: dict[int, list] = {}  # ticket -> [Event, response]
        self._pending_lock = threading.Lock()
        self.stopping = threading.Event()
        #: control version of the last broadcast op applied
        self.version_applied = 0

    def attach(self, engine, server_thread) -> None:
        """Wire in the engine and server once both exist."""
        self.engine = engine
        self._server = server_thread

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def send(self, message: tuple) -> None:
        """Send one message to the supervisor (thread-safe)."""
        with self._send_lock:
            self._conn.send(message)

    def _proxy(self, kind: str, body) -> dict:
        """Ticketed round trip to the supervisor from a server thread."""
        ticket = next(self._tickets)
        slot = [threading.Event(), None]
        with self._pending_lock:
            self._pending[ticket] = slot
        try:
            self.send((kind, self.site, ticket, body))
            if not slot[0].wait(PROXY_TIMEOUT):
                return protocol.error_response(
                    code=protocol.TIMEOUT,
                    error=f"fleet supervisor did not answer within "
                    f"{PROXY_TIMEOUT:.0f}s",
                )
            return slot[1]
        finally:
            with self._pending_lock:
                self._pending.pop(ticket, None)

    def admin_request(self, payload: dict) -> dict:
        """Proxy one admin op for fleet-wide broadcast; blocks for the ack."""
        return self._proxy("admin", payload)

    def fleet_request(self, op: str) -> dict:
        """Proxy one ``fleet.*`` op to the supervisor; blocks for the reply."""
        return self._proxy("fleet", op)

    def request_shutdown(self) -> None:
        """Ask the supervisor for a fleet-wide drain-then-stop."""
        self.send(("shutdown_req", self.site))

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _status(self) -> dict:
        """This worker's status row for ``fleet.status``."""
        import os

        server = self._server.server if self._server is not None else None
        return {
            "site": self.site,
            "pid": os.getpid(),
            "port": self._server.port if self._server is not None else None,
            "ready": bool(server.ready) if server is not None else False,
            "versions": self.engine.versions(),
            "control_version": self.version_applied,
            "audit_entries": len(self.engine.audit_log),
            "decisions_served": self.engine.decisions_served,
            "queries_served": self.engine.queries_served,
        }

    def _resolve(self, ticket: int, response: dict) -> None:
        with self._pending_lock:
            slot = self._pending.get(ticket)
        if slot is None:
            return  # the waiter timed out and moved on
        slot[1] = response
        slot[0].set()

    def run(self) -> None:
        """The receive loop; returns when ``stop`` arrives or the pipe dies.

        Broadcast ops are applied *here*, in arrival order, on this one
        thread — the worker half of the control channel's total-order
        guarantee.
        """
        if self.engine is None:
            raise FleetError("WorkerControl.run before attach()")
        while not self.stopping.is_set():
            try:
                if not self._conn.poll(0.25):
                    continue
                message = self._conn.recv()
            except (EOFError, OSError):
                # the supervisor vanished; stop serving rather than drift
                _LOGGER.warning("%s: control channel lost, stopping", self.site)
                break
            kind = message[0]
            if kind == "apply":
                _, version, payload = message
                try:
                    response = apply_broadcast(self.engine, payload)
                except Exception as exc:  # never kill the control loop
                    _LOGGER.exception("%s: apply failed", self.site)
                    response = protocol.error_response(
                        code=protocol.INTERNAL, error=str(exc)
                    )
                self.version_applied = version
                self.send(("applied", self.site, version, response))
            elif kind == "admin_reply" or kind == "fleet_reply":
                self._resolve(message[1], message[2])
            elif kind == "status_req":
                self.send(("status", self.site, self._status()))
            elif kind == "snapshot_req":
                from repro.obs.runtime import get_registry

                self.send(("snapshot", self.site, get_registry().snapshot()))
            elif kind == "stop":
                break
            else:
                _LOGGER.warning("%s: unknown control message %r", self.site, kind)
        self.stopping.set()
