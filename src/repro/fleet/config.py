"""Fleet configuration: one picklable object describing the whole fleet.

:class:`FleetConfig` crosses the process boundary — the supervisor ships
it (with the resolved port patched in) to every spawned worker, so it
must stay a plain frozen dataclass of primitives.  The engine-building
fields (``rows``/``seed``/``rules``) match
:func:`repro.serve.engine.build_demo_engine`: every worker builds the
*same* initial engine deterministically, which is what makes oplog
replay a complete convergence story for respawned workers.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.errors import FleetError

#: Listener modes (see :func:`FleetConfig.resolve_listener`).
LISTENER_MODES = ("auto", "reuseport", "fd")


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of one :class:`~repro.fleet.supervisor.FleetSupervisor`."""

    #: root directory holding one ``worker-NN/`` store per worker plus
    #: the fleet refine-daemon state; required
    store_dir: str = ""
    workers: int = 2
    host: str = "127.0.0.1"
    #: 0 = the supervisor reserves an ephemeral port at start
    port: int = 0
    # --- the demo engine every worker builds (must be deterministic) ---
    rows: int = 200
    seed: int = 7
    #: policy DSL lines replacing the demo rules (None keeps them)
    rules: tuple[str, ...] | None = None
    cache: bool = True
    cache_size: int = 4096
    # --- per-worker server admission knobs ---
    max_inflight: int = 64
    max_queue: int = 256
    #: per-worker store segment roll size (None keeps the store default);
    #: small values seal often, which is what feeds the fleet daemon
    segment_entries: int | None = None
    # --- fleet plumbing ---
    #: ``auto`` picks ``reuseport`` where the platform has SO_REUSEPORT
    #: and falls back to supervisor-held fd passing elsewhere
    listener: str = "auto"
    #: seconds a control broadcast waits for every worker's ack before
    #: the straggler is declared diverged and respawned
    control_timeout: float = 10.0
    #: seconds one worker gets to come up (spawn + engine build + bind)
    worker_start_timeout: float = 60.0
    #: respawn crashed workers (replaying the admin oplog first)
    respawn: bool = True
    #: respawn budget across the fleet's lifetime — a crash-looping
    #: worker must not melt the supervisor
    max_respawns: int = 8

    def __post_init__(self) -> None:
        if not self.store_dir:
            raise FleetError(
                "FleetConfig.store_dir is required: every worker needs its "
                "own durable audit segment directory under it"
            )
        if self.workers < 1:
            raise FleetError(f"workers must be >= 1, got {self.workers}")
        if self.listener not in LISTENER_MODES:
            raise FleetError(
                f"unknown listener mode {self.listener!r} "
                f"(choose from {LISTENER_MODES})"
            )

    def resolve_listener(self) -> str:
        """The concrete listener mode this platform will use."""
        if self.listener != "auto":
            return self.listener
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "fd"
