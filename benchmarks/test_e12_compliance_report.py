"""E12 (extension) — the proactive compliance process, costed.

Section 4.2 complains that audit logs "tend to be used only when someone
raises a red flag ... not as a part of a continuous, proactive process".
The compliance report is that process's artifact; for it to run
continuously it must be cheap.  This bench times full report assembly
(both coverages, a ten-window trend, two attribute breakdowns, gap
analysis, exception triage and a refinement pass) at two log sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.audit.reports import compliance_report
from repro.experiments.harness import standard_loop_setup


def _fixture(entries: int):
    setup = standard_loop_setup(accesses_per_round=entries, seed=37)
    log = setup.environment.simulate_round(0, setup.store)
    return setup.store.policy(), log, setup.vocabulary


@pytest.fixture(scope="module")
def small_inputs():
    return _fixture(2000)


@pytest.fixture(scope="module")
def large_inputs():
    return _fixture(20_000)


def test_e12_report_2k(benchmark, small_inputs):
    policy, log, vocabulary = small_inputs
    report = benchmark(compliance_report, policy, log, vocabulary)
    assert report.entries == 2000
    assert report.candidates  # the undocumented workflow must surface


def test_e12_report_20k(benchmark, large_inputs):
    policy, log, vocabulary = large_inputs
    report = benchmark(compliance_report, policy, log, vocabulary)
    assert report.entries == 20_000
    text = report.render()
    assert "PRIMA compliance report" in text
    emit(
        "E12 — compliance report over 20k entries "
        f"({len(report.candidates)} candidates, "
        f"{len(report.trend)} trend windows, "
        f"exception rate {report.exception_rate:.1%})"
    )
