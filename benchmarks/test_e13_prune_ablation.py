"""E13 (ablation) — prune semantics: equivalence-based vs syntactic.

Algorithm 6 prunes via the *ranges* ("set complement"), i.e. by rule
equivalence under the vocabulary, not by syntactic membership in the
store.  The difference matters precisely because stores are composite:
a mined ground pattern ``prescription:treatment:nurse`` is already
covered by ``medical_records:treatment:nurse`` but is not syntactically
*in* the store.  A syntactic pruner would keep re-proposing such
patterns to the review queue every round — pure noise for the privacy
officer.  This bench quantifies the review-queue inflation on a
realistic mined pattern set and times the equivalence-based prune.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.experiments.harness import standard_loop_setup
from repro.experiments.reporting import format_table
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.policy.grounding import policy_range
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.refinement.filtering import filter_practice
from repro.refinement.prune import prune_patterns


def _composite_store(vocabulary) -> Policy:
    """A store written the way officers write them: composite grants."""
    return Policy(
        [
            Rule.of(data="medical_records", purpose="healthcare", authorized="nurse"),
            Rule.of(data="clinical", purpose="healthcare", authorized="physician"),
            Rule.of(data="demographic", purpose="operations", authorized="clerk"),
            Rule.of(data="demographic", purpose="operations", authorized="registrar"),
        ],
        source="PS",
    )


def test_e13_prune_semantics(benchmark):
    setup = standard_loop_setup(
        accesses_per_round=8000, documented_fraction=0.0, seed=53
    )
    log = setup.environment.simulate_round(0, setup.store)
    practice = filter_practice(log)
    patterns = SqlPatternMiner().mine(practice, MiningConfig(min_support=5))
    store = _composite_store(setup.vocabulary)

    # the paper's semantics (equivalence over ranges)
    equivalence = benchmark(prune_patterns, patterns, store, setup.vocabulary)

    # the naive alternative: prune only syntactic members of the store
    store_rules = set(store)
    syntactic_useful = [p for p in patterns if p.rule not in store_rules]

    inflation = len(syntactic_useful) - len(equivalence.useful)
    emit(
        format_table(
            ["pruner", "patterns in", "candidates out", "already-covered kept"],
            [
                ["equivalence (Alg. 6)", len(patterns), len(equivalence.useful), 0],
                ["syntactic (ablation)", len(patterns), len(syntactic_useful),
                 inflation],
            ],
            title="E13 — prune semantics ablation",
        )
    )

    # the syntactic pruner keeps strictly more...
    assert len(syntactic_useful) > len(equivalence.useful)
    # ...and every extra candidate it keeps is in fact already covered
    store_ground = policy_range(store, setup.vocabulary)
    extras = set(p.rule for p in syntactic_useful) - set(
        p.rule for p in equivalence.useful
    )
    assert extras
    for rule in extras:
        assert all(
            ground in store_ground
            for ground in rule.ground_rules(setup.vocabulary)
        )
    # and both agree on the genuinely novel candidates
    assert {p.rule for p in equivalence.useful} <= {
        p.rule for p in syntactic_useful
    }
