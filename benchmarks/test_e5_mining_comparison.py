"""E5 — Section 5 future work: SQL analytics vs Apriori frequent patterns.

The paper proposes Apriori "to detect correlations between attribute pairs
that are not discovered by simple SQL queries".  We plant exactly such a
correlation — (referral, registration) spread across three roles, each
below the f threshold individually — and verify the split: full-width
GROUP BY mining misses it, Apriori's size-2 itemsets find it.  Association
rules over the frequent itemsets name the responsible roles.  Benches time
both miners on the same realistic practice log.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.harness import standard_loop_setup
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import mining_comparison, planted_correlation_log
from repro.mining.apriori import AprioriPatternMiner, apriori, transactions_from_log
from repro.mining.association import derive_rules
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.refinement.filtering import filter_practice


def _practice_log():
    setup = standard_loop_setup(accesses_per_round=10_000, seed=23)
    return filter_practice(setup.environment.simulate_round(0, setup.store))


def test_e5_planted_correlation(benchmark):
    log = planted_correlation_log(per_role_support=4)
    comparison = benchmark(mining_comparison, log)

    emit(
        format_table(
            ["miner", "full-width patterns", "found planted pair", "seconds"],
            [
                ["SQL GROUP BY", len(comparison.sql_patterns),
                 comparison.planted_pair_found_by_sql,
                 f"{comparison.sql_seconds:.4f}"],
                ["Apriori", len(comparison.apriori_patterns),
                 comparison.planted_pair_found_by_apriori,
                 f"{comparison.apriori_seconds:.4f}"],
            ],
            title="E5 — planted cross-role correlation (4 per role, f=5)",
        )
    )
    # the paper's claim: who wins on correlations
    assert not comparison.planted_pair_found_by_sql
    assert comparison.planted_pair_found_by_apriori


def test_e5_association_rules_name_roles(benchmark):
    log = planted_correlation_log(per_role_support=6)
    config = MiningConfig(min_support=5)
    transactions = transactions_from_log(log, config.attributes)
    itemsets = apriori(transactions, config.min_support)
    # three roles share the pair evenly, so per-role confidence is 1/3
    rules = benchmark(derive_rules, itemsets, len(transactions), min_confidence=0.25)
    pair = frozenset({("data", "referral"), ("purpose", "registration")})
    advisories = [r for r in rules if r.antecedent == pair]
    emit("\n".join(str(rule) for rule in rules[:8]))
    # the pair's consequents reveal exactly which roles perform the practice
    consequent_roles = {
        value for advisory in advisories for attr, value in advisory.consequent
        if attr == "authorized"
    }
    assert consequent_roles == {"nurse", "registrar", "clerk"}
    assert all(r.lift > 0.5 for r in advisories)


def test_e5_bench_sql_miner(benchmark):
    log = _practice_log()
    patterns = benchmark(SqlPatternMiner().mine, log, MiningConfig())
    assert patterns


def test_e5_bench_apriori_miner(benchmark):
    log = _practice_log()
    patterns = benchmark(AprioriPatternMiner().mine, log, MiningConfig())
    assert patterns
