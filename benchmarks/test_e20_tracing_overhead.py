"""E20 — tracing overhead and the byte-identity contract (DESIGN.md §13).

The tracing layer (ISSUE 7) makes two promises:

1. **Byte-identical bodies** — a deterministic request sequence, every
   payload stamped with a client ``traceparent``, produces *identical*
   response payloads and *identical* audit trails (truth column
   included) whether the server runs a live :class:`~repro.obs.trace.Tracer`
   or :data:`~repro.obs.trace.NULL_TRACER`.  The echoed ``trace`` field
   comes from the request, never the tracer, so tracing can be toggled
   without changing a single answered byte.
2. **<5 % throughput overhead** — serving the E18 workload with a live
   tracer (default head sampling, one full trace per 64) costs less
   than 5 % of the tracing-off throughput.  Estimator: **both arms run
   as live servers at the same time**, and one client replays the
   workload in alternating chunks — ~100 requests to the off arm, the
   same ~100 to the on arm, order flipping chunk pair to chunk pair.
   Adjacent chunks are milliseconds apart, so whatever regime the host
   is in (co-tenant bursts, thermal throttle, scheduler mood — the
   dominant noise on a small shared box, worth ±15 % across seconds) is
   shared by both sides of each pair and cancels in the per-pair ratio;
   the overhead is the median of those ratios.  A run whose estimate
   misses the bar is retried once in a fresh window.

Knobs: ``E20_REQUESTS`` (default 4000 per arm), ``E20_CHUNK`` (default
50 requests — one pair every ~25 ms keeps the pair inside a single
machine regime, and 4000/50 = 80 pairs keep the median tight).  A JSON perf record lands in
``benchmarks/out/e20_tracing_overhead.json`` and one fully rendered
sample trace in ``benchmarks/out/e20_sample_trace.json`` (the CI
artifact a reviewer can feed to ``repro trace show``).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.test_e18_serve_throughput import (
    _IDENTITY_SEQUENCE,
    _entry_key,
    _workload_payloads,
)
from repro.experiments.reporting import format_table
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import use_registry
from repro.obs.trace import NULL_TRACER, Tracer, format_traceparent, use_tracer
from repro.serve import (
    PdpClient,
    ServerConfig,
    ServerThread,
    build_demo_engine,
)

_REQUESTS = int(os.environ.get("E20_REQUESTS", "4000"))
_CHUNK = int(os.environ.get("E20_CHUNK", "50"))
_ROWS = 200
_SEED = 7
_MAX_OVERHEAD = 0.05

_OUT_PATH = Path(__file__).parent / "out" / "e20_tracing_overhead.json"
_TRACE_PATH = Path(__file__).parent / "out" / "e20_sample_trace.json"


def _stamped_sequence() -> list[dict]:
    """The E18 identity sequence, every payload carrying a fixed,
    deterministic client traceparent (ids derived from the index)."""
    sequence = []
    for index, payload in enumerate(_IDENTITY_SEQUENCE * 4):
        stamped = dict(payload, id=index + 1)
        stamped["trace"] = format_traceparent(
            f"{index + 1:032x}", f"{index + 1:016x}"
        )
        sequence.append(stamped)
    return sequence


def _replay(tracer) -> tuple[list[dict], list, "Tracer"]:
    """Serve the stamped sequence under ``tracer``; responses + trail."""
    with use_registry(MetricsRegistry()), use_tracer(tracer):
        engine = build_demo_engine(rows=60, seed=_SEED)
        srv = ServerThread(engine, ServerConfig(port=0)).start()
    try:
        with PdpClient(srv.host, srv.port) as client:
            responses = [client.request(dict(payload))
                         for payload in _stamped_sequence()]
    finally:
        srv.stop()
    trail = [_entry_key(entry) for entry in engine.audit_log.entries]
    return responses, trail, tracer


def _identity_phase() -> dict:
    traced_tracer = Tracer()
    on_responses, on_trail, _ = _replay(traced_tracer)
    off_responses, off_trail, _ = _replay(NULL_TRACER)
    on_bytes = json.dumps(on_responses, sort_keys=True).encode()
    off_bytes = json.dumps(off_responses, sort_keys=True).encode()

    # the CI artifact: one fully rendered client-linked trace
    retained = traced_tracer.store.list(limit=50)
    sample = None
    for summary in retained:
        full = traced_tracer.store.get(summary["trace_id"])
        if full and full["parent_id"]:  # a client-stamped request
            sample = full
            break
    if sample is not None:
        _TRACE_PATH.parent.mkdir(parents=True, exist_ok=True)
        _TRACE_PATH.write_text(json.dumps(sample, indent=2) + "\n")

    return {
        "requests": len(on_responses),
        "responses_identical": on_bytes == off_bytes,
        "trails_identical": on_trail == off_trail,
        "audit_entries": len(on_trail),
        "traces_retained": len(retained),
        "sample_trace": str(_TRACE_PATH) if sample is not None else None,
    }


def _overhead_attempt() -> dict:
    """One interleaved-chunk comparison of a traced vs untraced server.

    Both servers are live for the whole attempt; a single client
    replays the same workload chunk to each side back-to-back (order
    alternating) so every pair of timings shares its machine regime.
    """
    payloads = _workload_payloads(_REQUESTS)
    chunks = [
        payloads[i:i + _CHUNK] for i in range(0, len(payloads), _CHUNK)
    ]
    tracer = Tracer()
    with use_registry(MetricsRegistry()), use_tracer(NULL_TRACER):
        off_engine = build_demo_engine(rows=_ROWS, seed=_SEED)
        off_srv = ServerThread(off_engine, ServerConfig(port=0)).start()
    with use_registry(MetricsRegistry()), use_tracer(tracer):
        on_engine = build_demo_engine(rows=_ROWS, seed=_SEED)
        on_srv = ServerThread(on_engine, ServerConfig(port=0)).start()

    def run_chunk(client: PdpClient, chunk: list[dict]) -> float:
        started = time.perf_counter()
        for payload in chunk:
            client.request(dict(payload))
        return time.perf_counter() - started

    try:
        with PdpClient(off_srv.host, off_srv.port) as off_client, \
                PdpClient(on_srv.host, on_srv.port) as on_client:
            run_chunk(off_client, chunks[0])  # untimed warm-up
            run_chunk(on_client, chunks[0])
            gc.collect()
            ratios = []
            off_time = on_time = 0.0
            for index, chunk in enumerate(chunks):
                if index % 2 == 0:
                    t_off = run_chunk(off_client, chunk)
                    t_on = run_chunk(on_client, chunk)
                else:
                    t_on = run_chunk(on_client, chunk)
                    t_off = run_chunk(off_client, chunk)
                off_time += t_off
                on_time += t_on
                ratios.append(t_on / t_off - 1.0)
    finally:
        on_srv.stop()
        off_srv.stop()
    return {
        "overhead": statistics.median(ratios),
        "throughput_off_rps": len(payloads) / off_time,
        "throughput_on_rps": len(payloads) / on_time,
        "chunk_pairs": len(ratios),
        "chunk_ratio_p10": sorted(ratios)[len(ratios) // 10],
        "chunk_ratio_p90": sorted(ratios)[-1 - len(ratios) // 10],
        "tracer": tracer.stats(),
    }


def test_e20_tracing_overhead_and_identity():
    identity = _identity_phase()

    # both arms live at once, one client alternating chunks between
    # them: each chunk pair shares its machine regime, so host noise
    # cancels in the per-pair ratio and the median over ~40 pairs is
    # tight.  A run whose estimate misses the bar gets ONE fresh
    # attempt — a co-tenant saturating the box for the entire attempt
    # defeats any in-process estimator
    attempts = []
    for _attempt in range(2):
        result = _overhead_attempt()
        overhead = result["overhead"]
        attempts.append(round(overhead, 4))
        if overhead < _MAX_OVERHEAD:
            break
    sample_every = result["tracer"]["sample_every"]

    record = {
        "experiment": "E20",
        "requests": _REQUESTS,
        "chunk": _CHUNK,
        "identity": identity,
        "overhead": round(overhead, 4),
        "attempts": attempts,
        "max_overhead": _MAX_OVERHEAD,
        **{k: v for k, v in result.items() if k != "overhead"},
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["tracer", "throughput (req/s)"],
            [
                ["null (off)", f"{result['throughput_off_rps']:,.0f}"],
                [
                    f"live, sample 1/{sample_every} (on)",
                    f"{result['throughput_on_rps']:,.0f}",
                ],
                [
                    f"overhead (median of {result['chunk_pairs']} "
                    "interleaved chunk pairs)",
                    f"{overhead:+.1%}",
                ],
            ],
            title=(
                f"E20 — tracing overhead over {_REQUESTS} served requests "
                f"per arm, chunks of {_CHUNK}"
            ),
        )
        + (
            f"\nidentity over {identity['requests']} stamped requests: "
            f"responses={identity['responses_identical']} "
            f"trails={identity['trails_identical']}"
            f"\nJSON record: {_OUT_PATH}"
        )
    )

    assert identity["responses_identical"], (
        "response bodies must be byte-identical with tracing on vs off"
    )
    assert identity["trails_identical"], (
        "audit trails (truth included) must be identical with tracing on vs off"
    )
    assert identity["traces_retained"] > 0
    assert overhead < _MAX_OVERHEAD, (
        f"tracing adds {overhead:+.1%} (median of interleaved chunk "
        f"pairs), above the {_MAX_OVERHEAD:.0%} bar"
    )
