"""E10 (extension) — tree-structured enforcement (the conclusion's
"natural evolution ... to tree-based structures").

Measures subtree retrieval through the tree enforcer against raw path
selection over documents of 100 / 1 000 patients, and verifies the
adapter preserves the relational enforcer's semantics: policy pruning,
break-the-glass, and audit entries that feed the *same* refinement
pipeline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.audit.log import AuditLog
from repro.hdb.auditing import ComplianceAuditor
from repro.hdb.consent import ConsentStore
from repro.policy.parser import parse_rule
from repro.policy.store import PolicyStore
from repro.treestore.enforcement import TreeBinding, TreeEnforcer
from repro.treestore.node import TreeDocument, TreeNode
from repro.treestore.path import compile_path
from repro.vocab.builtin import healthcare_vocabulary


def _document(patients: int) -> TreeDocument:
    root = TreeNode("patients")
    for index in range(patients):
        patient = root.child("patient", {"id": f"p{index:05d}"})
        demographics = patient.child("demographics")
        demographics.child("name", text=f"name-{index}")
        demographics.child("address", text=f"addr-{index}")
        record = patient.child("record")
        record.child("prescription", text=f"rx-{index}")
        record.child("referral", text=f"ref-{index}")
        record.child("psychiatry", text=f"psy-{index}")
    return TreeDocument(root, name="archive")


def _enforcer() -> TreeEnforcer:
    vocabulary = healthcare_vocabulary()
    store = PolicyStore()
    store.add(parse_rule("ALLOW nurse TO USE medical_records FOR treatment"))
    enforcer = TreeEnforcer(
        store, ConsentStore(vocabulary), ComplianceAuditor(AuditLog()), vocabulary
    )
    enforcer.bind_document(
        "archive",
        TreeBinding(
            patient_path="/patients/patient",
            patient_attribute="id",
            categories={
                "//demographics/name": "name",
                "//demographics/address": "address",
                "//record/prescription": "prescription",
                "//record/referral": "referral",
                "//record/psychiatry": "psychiatry",
            },
        ),
    )
    return enforcer


@pytest.fixture(scope="module")
def small_document():
    return _document(100)


@pytest.fixture(scope="module")
def large_document():
    return _document(1000)


def test_e10_raw_selection_100(benchmark, small_document):
    expression = compile_path("/patients/patient/record/prescription")
    nodes = benchmark(expression.select, small_document)
    assert len(nodes) == 100


def test_e10_enforced_retrieval_100(benchmark, small_document):
    enforcer = _enforcer()
    result = benchmark(
        enforcer.retrieve, "nurse_kim", "nurse", "treatment",
        small_document, "/patients/patient",
    )
    assert len(result.subtrees) == 100
    assert "psychiatry" in result.categories_masked


def test_e10_enforced_retrieval_1000(benchmark, large_document):
    enforcer = _enforcer()
    result = benchmark(
        enforcer.retrieve, "nurse_kim", "nurse", "treatment",
        large_document, "/patients/patient",
    )
    assert len(result.subtrees) == 1000


def test_e10_semantics_match_relational(benchmark, small_document):
    """Tree exceptions must feed the shared refinement pipeline."""
    from repro.mining.patterns import MiningConfig
    from repro.refinement.engine import RefinementConfig, refine

    enforcer = _enforcer()
    for user in ("clerk_a", "clerk_b", "clerk_c"):
        for _ in range(2):
            enforcer.retrieve(
                user, "clerk", "billing", small_document,
                "//record/prescription", exception=True,
            )
    result = refine(
        enforcer.policy_store.policy(),
        enforcer.auditor.log,
        enforcer.vocabulary,
        RefinementConfig(mining=MiningConfig(min_support=5)),
    )
    assert len(result.useful_patterns) == 1
    assert result.useful_patterns[0].rule.value_of("data") == "prescription"
    emit(
        "E10 — tree adapter feeds the shared pipeline: "
        f"mined {result.useful_patterns[0]}"
    )
    benchmark(
        enforcer.retrieve, "nurse_kim", "nurse", "treatment",
        small_document, "/patients/patient",
    )
