"""E7 — Audit Management: federated consolidation scaling (Section 4.2).

The paper consolidates per-site audit trails into one virtual view (DB2
Information Integrator in the original).  We measure, across federation
sizes, (a) the k-way merge into a physical consolidated log and (b)
Algorithm 5's GROUP BY query executed directly against the *virtual*
union view.  Expected shape: both scale linearly in total entries; the
virtual view adds no copy cost when only a query is needed.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.audit.log import AuditLog
from repro.experiments.harness import standard_loop_setup
from repro.experiments.reporting import format_table
from repro.hdb.federation import AuditFederation
from repro.sqlmini.database import Database

_ANALYSIS_SQL = (
    "SELECT data, purpose, authorized FROM federated_audit WHERE status = 0 "
    "GROUP BY data, purpose, authorized "
    "HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) >= 2"
)


def _federation(sites: int, entries_per_site: int) -> AuditFederation:
    setup = standard_loop_setup(accesses_per_round=entries_per_site, seed=29)
    federation = AuditFederation()
    for index in range(sites):
        window = setup.environment.simulate_round(index, setup.store)
        federation.register(f"site_{index:02d}", AuditLog(window, name=f"site_{index:02d}"))
    return federation


@pytest.fixture(scope="module")
def small_federation():
    return _federation(sites=4, entries_per_site=2000)


@pytest.fixture(scope="module")
def large_federation():
    return _federation(sites=16, entries_per_site=2000)


def test_e7_consolidation_4_sites(benchmark, small_federation):
    merged = benchmark(small_federation.consolidated_log)
    assert len(merged) == len(small_federation)
    times = [entry.time for entry in merged]
    assert times == sorted(times)


def test_e7_consolidation_16_sites(benchmark, large_federation):
    merged = benchmark(large_federation.consolidated_log)
    assert len(merged) == len(large_federation)


def test_e7_virtual_view_analysis(benchmark, large_federation):
    db = Database()
    large_federation.register_view(db)
    result = benchmark(db.query, _ANALYSIS_SQL)
    assert len(result) > 0  # the undocumented practices surface federally


def test_e7_federated_mining_beats_per_site(benchmark):
    """The quantitative argument for Audit Management: a practice below
    the mining threshold at every site clears it organisation-wide."""
    import random

    from repro.mining.patterns import MiningConfig
    from repro.mining.sql_patterns import SqlPatternMiner
    from repro.policy.store import PolicyStore
    from repro.refinement.filtering import filter_practice
    from repro.vocab.builtin import healthcare_vocabulary
    from repro.workload.generator import WorkloadConfig
    from repro.workload.hospital import build_hospital
    from repro.workload.multisite import MultiSiteEnvironment, SiteTraffic

    hospital = build_hospital(
        healthcare_vocabulary(), departments=2, staff_per_role=3, seed=13
    )
    environment = MultiSiteEnvironment(
        hospital,
        [
            SiteTraffic(f"site_{i}", WorkloadConfig(accesses_per_round=120, seed=13))
            for i in range(4)
        ],
    )
    environment.simulate_round(0, PolicyStore())
    config = MiningConfig(min_support=15)
    miner = SqlPatternMiner()
    per_site: set = set()
    for site in environment.sites:
        practice = filter_practice(environment.site_log(site))
        per_site.update(p.rule for p in miner.mine(practice, config))
    consolidated = environment.federation.consolidated_log()
    federated = {
        p.rule for p in miner.mine(filter_practice(consolidated), config)
    }
    assert per_site <= federated and federated - per_site
    emit(
        f"E7 federated mining: {len(per_site)} patterns visible per-site, "
        f"{len(federated)} organisation-wide (f=15, 4 sites x 120 accesses)"
    )
    benchmark(environment.federation.consolidated_log)


def test_e7_scaling_summary(benchmark, small_federation, large_federation):
    import time

    rows = []
    for label, federation in (("4x2k", small_federation), ("16x2k", large_federation)):
        started = time.perf_counter()
        merged = federation.consolidated_log()
        merge_seconds = time.perf_counter() - started
        db = Database()
        federation.register_view(db)
        started = time.perf_counter()
        db.query(_ANALYSIS_SQL)
        query_seconds = time.perf_counter() - started
        rows.append(
            [label, len(federation), f"{merge_seconds:.4f}", f"{query_seconds:.4f}"]
        )
        assert len(merged) == len(federation)
    emit(
        format_table(
            ["federation", "entries", "merge (s)", "alg5 over view (s)"],
            rows,
            title="E7 — federated audit consolidation",
        )
    )
    benchmark(small_federation.consolidated_log)
