"""E18 — the online PDP server: identity, throughput and cache effect.

DESIGN.md §11 commits the decision service to two promises:

1. **Byte-identical decisions** — a request served over the wire runs
   the exact same Active Enforcement path as an in-process call, so a
   deterministic request sequence replayed both ways produces identical
   response payloads *and* identical audit trails (same entries, same
   order, same logical ticks).
2. **Useful concurrency with a correct cache** — N concurrent clients
   replaying workload traffic sustain a real throughput, the interned
   decision cache repays the skewed replay with a high hit rate, and
   switching the cache off changes latency, never answers.

Knobs: ``E18_REQUESTS`` (default 2000), ``E18_CLIENTS`` (default 8).
A JSON perf record lands in ``benchmarks/out/e18_serve_throughput.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.serve import (
    PdpClient,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    protocol,
    run_load,
)
from repro.workload.traces import demo_decision_payloads

_REQUESTS = int(os.environ.get("E18_REQUESTS", "2000"))
_CLIENTS = int(os.environ.get("E18_CLIENTS", "8"))
_ROWS = 200
_SEED = 7

_OUT_PATH = Path(__file__).parent / "out" / "e18_serve_throughput.json"

# deterministic mixed-op replay for the identity phase: every served
# code path (allow, mask, deny, exception, SQL, admin-free errors)
_IDENTITY_SEQUENCE = (
    {"op": "decide", "user": "w1", "role": "physician", "purpose": "treatment",
     "categories": ["prescription"]},
    {"op": "decide", "user": "w2", "role": "physician", "purpose": "treatment",
     "categories": ["prescription", "insurance"]},
    {"op": "decide", "user": "w3", "role": "nurse", "purpose": "billing",
     "categories": ["insurance"]},
    {"op": "decide", "user": "w3", "role": "nurse", "purpose": "billing",
     "categories": ["insurance"], "exception": True, "truth": "practice"},
    {"op": "query", "user": "w4", "role": "physician", "purpose": "treatment",
     "sql": "SELECT prescription, insurance FROM patients LIMIT 5"},
    {"op": "query", "user": "w5", "role": "clerk", "purpose": "billing",
     "sql": "SELECT name, address FROM patients WHERE pid = 'p000003'"},
    {"op": "query", "user": "w6", "role": "clerk", "purpose": "billing",
     "sql": "SELECT psychiatry FROM patients"},
    {"op": "query", "user": "w7", "role": "nurse", "purpose": "treatment",
     "sql": "SELEC broken"},
)


def _workload_payloads(count: int) -> list[dict]:
    """``count`` decide payloads replayed from a synthetic workload log."""
    return demo_decision_payloads(count)


def _entry_key(entry):
    return (entry.time, entry.op, entry.user, entry.data, entry.purpose,
            entry.authorized, entry.status, entry.truth)


def _identity_phase() -> dict:
    """Replay one deterministic sequence served and in-process."""
    sequence = [dict(payload, id=index + 1)
                for index, payload in enumerate(_IDENTITY_SEQUENCE * 4)]

    local = build_demo_engine(rows=60, seed=_SEED)
    local_responses = []
    for payload in sequence:
        request = protocol.parse_request(payload)
        handler = local.query if request.op == "query" else local.decide
        # the request id is stamped by the transport, not the decision
        # path — add it here so both replays carry identical payloads
        local_responses.append(dict(handler(request), id=payload["id"]))

    served = build_demo_engine(rows=60, seed=_SEED)
    with ServerThread(served, ServerConfig(port=0)) as srv:
        with PdpClient(srv.host, srv.port) as client:
            served_responses = [client.request(dict(payload))
                                for payload in sequence]

    local_bytes = json.dumps(local_responses, sort_keys=True).encode()
    served_bytes = json.dumps(served_responses, sort_keys=True).encode()
    trails_identical = (
        [_entry_key(e) for e in local.audit_log.entries]
        == [_entry_key(e) for e in served.audit_log.entries]
    )
    return {
        "requests": len(sequence),
        "responses_identical": local_bytes == served_bytes,
        "audit_entries": len(local.audit_log),
        "trails_identical": trails_identical,
    }


def _load_phase(payloads: list[dict], cache: bool) -> dict:
    engine = build_demo_engine(rows=_ROWS, seed=_SEED, cache=cache)
    config = ServerConfig(port=0, max_inflight=max(2 * _CLIENTS, 8))
    with ServerThread(engine, config) as srv:
        started = time.perf_counter()
        report = run_load(srv.host, srv.port, payloads, clients=_CLIENTS)
        elapsed = time.perf_counter() - started
        cache_stats = engine.cache.stats() if engine.cache else None
    summary = report.summary()
    summary["wall_seconds"] = round(elapsed, 4)
    summary["cache"] = cache_stats
    summary["audit_entries"] = len(engine.audit_log)
    return summary


def test_e18_serve_throughput():
    identity = _identity_phase()
    payloads = _workload_payloads(_REQUESTS)
    with_cache = _load_phase(payloads, cache=True)
    without_cache = _load_phase(payloads, cache=False)

    hits = with_cache["cache"]["hits"]
    misses = with_cache["cache"]["misses"]
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    record = {
        "experiment": "E18",
        "rows": _ROWS,
        "requests": _REQUESTS,
        "clients": _CLIENTS,
        "identity": identity,
        "cache_on": with_cache,
        "cache_off": without_cache,
        "cache_hit_rate": round(hit_rate, 4),
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["measure", "cache on", "cache off"],
            [
                ["requests", with_cache["requests"], without_cache["requests"]],
                ["throughput (req/s)", with_cache["throughput_rps"],
                 without_cache["throughput_rps"]],
                ["p50 latency (ms)", with_cache["p50_ms"],
                 without_cache["p50_ms"]],
                ["p99 latency (ms)", with_cache["p99_ms"],
                 without_cache["p99_ms"]],
                ["allowed / denied", f"{with_cache['ok']} / {with_cache['denied']}",
                 f"{without_cache['ok']} / {without_cache['denied']}"],
                ["cache hit rate", f"{hit_rate:.1%}", "-"],
            ],
            title=(
                f"E18 — PDP service, {_CLIENTS} clients, "
                f"identity over {identity['requests']} mixed requests: "
                f"{identity['responses_identical']}"
            ),
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    assert identity["responses_identical"], (
        "served responses must be byte-identical to in-process decisions"
    )
    assert identity["trails_identical"], (
        "served and in-process audit trails must match entry for entry"
    )
    assert with_cache["errors"] == 0 and without_cache["errors"] == 0
    assert with_cache["requests"] == _REQUESTS
    # identical traffic, identical verdicts: the cache changes latency only
    assert with_cache["ok"] == without_cache["ok"]
    assert with_cache["denied"] == without_cache["denied"]
    # both engines audit every admitted decision identically
    assert with_cache["audit_entries"] == without_cache["audit_entries"]
    # the skewed replay repays the interned cache
    assert hit_rate > 0.5, f"decision cache hit rate {hit_rate:.1%} too low"
    assert with_cache["throughput_rps"] > 0
