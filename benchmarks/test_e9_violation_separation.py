"""E9 — Section 4.2/4.3: separating violations from informal practice.

The paper requires the refinement process to "differentiate between
violations and informal practice entries".  We inject snooping at 1–20 %
of traffic and score the threshold classifier's precision/recall on the
labelled exceptions, plus the end-to-end effect: with screening enabled,
no violation-born rule reaches the candidate queue even at c=1.  The
bench times one classification pass over a 5 000-access log.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.audit.classify import classify_exceptions
from repro.experiments.harness import standard_loop_setup
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import violation_sweep
from repro.mining.patterns import MiningConfig
from repro.refinement.engine import RefinementConfig, refine
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import build_hospital


def _make_environment_factory():
    vocabulary = healthcare_vocabulary()
    hospital = build_hospital(vocabulary, seed=31)

    def factory(rate):
        environment = SyntheticHospitalEnvironment(
            hospital,
            WorkloadConfig(accesses_per_round=5000, violation_rate=rate, seed=31),
        )
        store = hospital.documented_store(0.5, random.Random(31))
        return environment, store

    return hospital, factory


def test_e9_violation_separation(benchmark):
    hospital, factory = _make_environment_factory()
    points = violation_sweep(factory, rates=(0.01, 0.05, 0.10, 0.20))
    emit(
        format_table(
            ["violation rate", "exceptions", "labelled", "precision", "recall"],
            [
                [f"{p.violation_rate:.0%}", p.exceptions, p.labelled_violations,
                 f"{p.precision:.2f}", f"{p.recall:.2f}"]
                for p in points
            ],
            title="E9 — violation vs informal-practice separation",
        )
    )
    # the snooper must be caught at every rate
    assert all(point.recall > 0.9 for point in points)
    # precision is base-rate bound: at low injection rates the flagged set
    # is dominated by legitimate one-off noise (which a human triage would
    # clear quickly), and it climbs as true violations dominate
    precisions = [point.precision for point in points]
    assert precisions == sorted(precisions)
    assert precisions[-1] > 0.5

    # end to end: screening keeps violation rules out of the candidates
    environment, store = factory(0.10)
    log = environment.simulate_round(0, store)
    screened = refine(
        store.policy(),
        log,
        hospital.vocabulary,
        RefinementConfig(
            mining=MiningConfig(min_distinct_users=1),
            exclude_suspected_violations=True,
        ),
    )
    violation_rules = {
        entry.to_rule() for entry in log if entry.truth == "violation"
    }
    candidate_rules = set(screened.candidate_rules)
    assert not (candidate_rules & violation_rules)

    benchmark(classify_exceptions, log)
