"""E2 — Table 1 / Section 5: the full use-case refinement run.

Paper numbers: entry coverage drops to 3/10 = 30 %; Filter keeps seven
exception entries; mining (f = 5, COUNT(DISTINCT user) > 1 over
(data, purpose, authorized)) extracts exactly Referral:Registration:Nurse
(entries t3, t7-t10); pruning keeps it; adopting it raises entry coverage
to 8/10.  The bench times one full Refinement(P_PS, P_AL, V) invocation
(Algorithm 2: coverage + filter + SQL mining + prune).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.paper import reproduce_table1
from repro.experiments.reporting import format_table
from repro.policy.rule import Rule
from repro.refinement.engine import refine
from repro.workload.scenarios import figure3_policy, table1_audit_log


def test_e2_table1_refinement(benchmark, vocabulary):
    store_policy = figure3_policy()
    log = table1_audit_log()

    result = benchmark(refine, store_policy, log, vocabulary)

    expected = Rule.of(data="referral", purpose="registration", authorized="nurse")
    assert result.entry_coverage.ratio == pytest.approx(0.3)
    assert len(result.practice) == 7
    assert [p.rule for p in result.useful_patterns] == [expected]
    assert result.useful_patterns[0].support == 5
    assert result.useful_patterns[0].distinct_users == 3

    full = reproduce_table1()
    emit(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["entry coverage before", "30%", f"{full.entry_coverage_before.ratio:.0%}"],
                ["practice entries", 7, full.practice_size],
                ["patterns mined", 1, len(full.patterns)],
                ["pattern", "Referral:Registration:Nurse", str(full.patterns[0].rule)],
                ["pattern support", 5, full.patterns[0].support],
                ["distinct users", "3 (>1)", full.patterns[0].distinct_users],
                ["entry coverage after", "8/10", f"{full.entry_coverage_after.ratio:.0%}"],
            ],
            title="E2 / Table 1 — Section 5 use case",
        )
    )
