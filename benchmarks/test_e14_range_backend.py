"""E14 — interned bitset Range backend vs the frozenset baseline.

The bitset backend (see DESIGN.md §7) re-encodes ``Range`` as an ``int``
bitmask over dense ground-rule IDs, so the set algebra behind Algorithm 1
coverage and Algorithm 6 prune runs as bitwise ops instead of hash-table
probes over composite :class:`~repro.policy.rule.Rule` objects.  This
bench reruns the E8 coverage-scaling workload shape at >= 10k ground
rules, materialises each policy's range once under both backends, and
times the algebra phase (intersection, union, difference, subset,
cardinality over every policy pair) head to head.  A JSON perf record
lands in ``benchmarks/out/e14_range_backend.json``.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro import obs
from repro.experiments.reporting import format_table
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary

#: 3 attributes x (5 branches x 5 leaves) = 25 leaves each -> 15 625
#: possible ground rules, comfortably past the 10k floor.
_BRANCHES = 5
_LEAVES_PER_BRANCH = 5
_POLICIES = 8
_RULES_PER_POLICY = 150
_REPEATS = 40

_OUT_PATH = Path(__file__).parent / "out" / "e14_range_backend.json"


def _scale_vocabulary() -> Vocabulary:
    vocab = Vocabulary("e14-scale")
    for attr in ("data", "purpose", "authorized"):
        tree = vocab.new_tree(attr)
        for b in range(_BRANCHES):
            tree.add_branch(
                f"{attr}_b{b}",
                [f"{attr}_b{b}_l{i}" for i in range(_LEAVES_PER_BRANCH)],
            )
    return vocab


def _random_policy(vocab: Vocabulary, rules: int, seed: int) -> Policy:
    rng = random.Random(seed)
    trees = [vocab.tree_for(attr) for attr in ("data", "purpose", "authorized")]
    choices = []
    for tree in trees:
        nodes = list(tree)
        choices.append(
            (
                [n for n in nodes if not tree.is_leaf(n)],
                [n for n in nodes if tree.is_leaf(n)],
            )
        )
    out = []
    for _ in range(rules):
        picked = []
        for internal, leaves in choices:
            pool = internal if rng.random() < 0.5 else leaves
            picked.append(rng.choice(pool))
        out.append(
            Rule.of(data=picked[0], purpose=picked[1], authorized=picked[2])
        )
    return Policy(out)


def _algebra_frozenset(sets: list[frozenset]) -> int:
    checksum = 0
    for i, a in enumerate(sets):
        for b in sets[i + 1 :]:
            checksum += len(a & b)
            checksum += len(a | b)
            checksum += len(a - b)
            checksum += a <= b
    return checksum


def _algebra_bitset(ranges: list) -> int:
    checksum = 0
    for i, a in enumerate(ranges):
        for b in ranges[i + 1 :]:
            checksum += (a & b).cardinality
            checksum += (a | b).cardinality
            checksum += (a - b).cardinality
            checksum += a <= b
    return checksum


def test_e14_bitset_backend_speedup(benchmark):
    vocab = _scale_vocabulary()
    universe = 1
    for attr in ("data", "purpose", "authorized"):
        universe *= len(vocab.tree_for(attr).leaves())
    assert universe >= 10_000, "workload must cover >= 10k ground rules"

    policies = [
        _random_policy(vocab, _RULES_PER_POLICY, seed=11 * (i + 1))
        for i in range(_POLICIES)
    ]
    # Ground once, outside the timed region: the expansion cost is
    # identical under both backends; E14 isolates the algebra itself.
    # A private registry observes the grounding so the perf record can
    # carry the telemetry snapshot (cache behaviour, interner size).
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        grounder = Grounder(vocab)
        bitset_ranges = [grounder.range_of(policy) for policy in policies]
    frozen_sets = [frozenset(rng) for rng in bitset_ranges]
    ground_total = len(frozenset().union(*frozen_sets))

    assert _algebra_frozenset(frozen_sets) == _algebra_bitset(bitset_ranges)

    started = time.perf_counter()
    for _ in range(_REPEATS):
        _algebra_frozenset(frozen_sets)
    frozen_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(_REPEATS):
        _algebra_bitset(bitset_ranges)
    bitset_seconds = time.perf_counter() - started

    speedup = frozen_seconds / bitset_seconds
    record = {
        "experiment": "E14",
        "ground_universe": universe,
        "distinct_ground_rules": ground_total,
        "policies": _POLICIES,
        "rules_per_policy": _RULES_PER_POLICY,
        "pairs": _POLICIES * (_POLICIES - 1) // 2,
        "repeats": _REPEATS,
        "frozenset_seconds": round(frozen_seconds, 6),
        "bitset_seconds": round(bitset_seconds, 6),
        "speedup": round(speedup, 2),
        "metrics": registry.snapshot(),
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["backend", f"seconds ({_REPEATS}x pairwise algebra)"],
            [
                ["frozenset baseline", f"{frozen_seconds:.4f}"],
                ["interned bitset", f"{bitset_seconds:.4f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
            title=(
                f"E14 — Range backend on {ground_total} distinct ground rules "
                f"(universe {universe})"
            ),
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    assert speedup >= 3.0, (
        f"bitset backend should be >= 3x faster than frozensets, got {speedup:.2f}x"
    )
    benchmark(_algebra_bitset, bitset_ranges)


def test_e14_coverage_end_to_end(benchmark):
    """The E8 shape end to end on the bitset backend (grounding included)."""
    from repro.coverage.engine import compute_coverage

    vocab = _scale_vocabulary()
    store = _random_policy(vocab, 300, seed=3)
    audit = _random_policy(vocab, 200, seed=7)
    grounder = Grounder(vocab)
    report = benchmark(compute_coverage, store, audit, vocab, grounder)
    assert 0.0 <= report.ratio <= 1.0
