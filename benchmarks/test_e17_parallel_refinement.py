"""E17 — parallel sharded refinement over the segmented audit store.

DESIGN.md §10 commits the map-reduce refinement path to two promises:

1. **Byte-identical results** — sharding the trail, mining partial
   aggregates per worker and merging them deterministically produces
   exactly the serial pipeline's output: same patterns in the same
   order, same useful/pruned partition, same coverage ratios, same
   uncovered-entry indices.
2. **Wall-clock wins at scale** — on a multi-core host, four workers
   over a ≥100k-entry segmented store beat the serial pipeline by at
   least 2×.  The single streaming pass per shard also makes the
   parallel path competitive even when only one CPU is available, so
   the identity checks always run; the 2× floor is asserted only when
   the host actually has the cores to honour it.

Knobs: ``E17_ENTRIES`` (default 100_000), ``E17_WORKERS`` (default 4).
A JSON perf record lands in ``benchmarks/out/e17_parallel_refinement.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.experiments.reporting import format_table
from repro.parallel.execution import ExecutionPolicy
from repro.parallel.shards import shards_of
from repro.policy.grounding import Grounder
from repro.refinement.engine import RefinementConfig, refine
from repro.store.durable import DurableAuditLog
from repro.store.store import StoreConfig
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.scenarios import figure3_policy

_ENTRIES = int(os.environ.get("E17_ENTRIES", "100000"))
_WORKERS = int(os.environ.get("E17_WORKERS", "4"))
_SEGMENT_ENTRIES = 8_000
_MIN_SPEEDUP = 2.0
_MIN_CPUS_FOR_SPEEDUP = 4

_OUT_PATH = Path(__file__).parent / "out" / "e17_parallel_refinement.json"

# a skewed ward mix: common workflows dominate, rare combinations give
# the miner thresholds something to reject
_COMBOS = (
    ("referral", "registration", "nurse"),
    ("lab_results", "treatment", "doctor"),
    ("prescription", "treatment", "nurse"),
    ("insurance", "billing", "clerk"),
    ("referral", "treatment", "physician"),
    ("payment_history", "billing", "registrar"),
    ("psychiatry", "diagnosis", "physician"),
    ("name", "registration", "registrar"),
)
_WEIGHTS = (24, 20, 16, 12, 10, 8, 3, 2)


def _build_store(directory) -> DurableAuditLog:
    """Write a deterministic skewed workload into a segmented store."""
    wheel: list[int] = []
    for combo_index, weight in enumerate(_WEIGHTS):
        wheel.extend([combo_index] * weight)
    durable = DurableAuditLog(
        directory,
        StoreConfig(max_segment_entries=_SEGMENT_ENTRIES, fsync="off"),
        name="e17_trail",
    )

    def entries():
        for tick in range(_ENTRIES):
            # a multiplicative-hash walk over the wheel: deterministic,
            # cheap, and scrambles combo/user/status correlations
            slot = (tick * 2654435761) % len(wheel)
            data, purpose, role = _COMBOS[wheel[slot]]
            status = (
                AccessStatus.EXCEPTION
                if (tick * 40503) % 100 < 55
                else AccessStatus.REGULAR
            )
            yield make_entry(
                tick, f"user{(tick * 97) % 41}", data, purpose, role,
                status=status,
            )

    durable.extend(entries())
    return durable


def _timed_refine(policy, durable, vocabulary, execution):
    grounder = Grounder(vocabulary)
    config = RefinementConfig(execution=execution)
    started = time.perf_counter()
    result = refine(policy, durable, vocabulary, config, grounder)
    return result, time.perf_counter() - started


def test_e17_parallel_refinement(tmp_path):
    vocabulary = healthcare_vocabulary()
    policy = figure3_policy()
    durable = _build_store(tmp_path / "store")
    try:
        stats = durable.stats()
        shards = shards_of(durable, _WORKERS)
        serial, serial_seconds = _timed_refine(policy, durable, vocabulary, None)
        parallel, parallel_seconds = _timed_refine(
            policy, durable, vocabulary, ExecutionPolicy(workers=_WORKERS)
        )
    finally:
        durable.close()

    identical = (
        serial.patterns == parallel.patterns
        and serial.useful_patterns == parallel.useful_patterns
        and serial.pruned_patterns == parallel.pruned_patterns
        and serial.coverage.ratio == parallel.coverage.ratio
        and serial.entry_coverage.matched == parallel.entry_coverage.matched
        and serial.entry_coverage.uncovered_entries
        == parallel.entry_coverage.uncovered_entries
    )
    cpus = os.cpu_count() or 1
    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")

    record = {
        "experiment": "E17",
        "entries": _ENTRIES,
        "workers": _WORKERS,
        "cpus": cpus,
        "segments": stats.segments,
        "shards": [
            {"label": shard.label, "planned_entries": shard.planned_entries}
            for shard in shards
        ],
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 3),
        "patterns": len(serial.patterns),
        "useful_patterns": len(serial.useful_patterns),
        "entry_coverage": round(serial.entry_coverage.ratio, 4),
        "identical_results": identical,
        "speedup_floor_asserted": cpus >= _MIN_CPUS_FOR_SPEEDUP,
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["measure", "value"],
            [
                ["store", f"{_ENTRIES:,} entries / {stats.segments} segments"],
                ["shards", f"{len(shards)} (workers={_WORKERS}, cpus={cpus})"],
                ["serial refine", f"{serial_seconds:.3f}s"],
                ["parallel refine", f"{parallel_seconds:.3f}s"],
                ["speedup", f"{speedup:.2f}x"],
                ["patterns mined", len(serial.patterns)],
                ["entry coverage", f"{serial.entry_coverage.ratio:.1%}"],
                ["results identical", identical],
            ],
            title=f"E17 — parallel refinement with {_WORKERS} workers",
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    assert identical, (
        "the parallel pipeline must reproduce the serial results exactly"
    )
    assert serial.patterns, "the workload must mine a non-trivial rule set"
    assert len(shards) == min(_WORKERS, stats.segments)
    if cpus >= _MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= _MIN_SPEEDUP, (
            f"{_WORKERS} workers on {cpus} CPUs reached only {speedup:.2f}x "
            f"(floor {_MIN_SPEEDUP}x)"
        )
    else:
        # on starved hosts the single-pass map stage must still keep the
        # parallel path from regressing behind serial
        assert speedup >= 0.8, (
            f"parallel path {speedup:.2f}x slower than serial on {cpus} CPU(s)"
        )
