"""E19 — online refinement: live coverage converges without a restart.

DESIGN.md §12's closing claim, measured: a PDP server with an embedded
refinement daemon, fed the E18 load driver's skewed ward traffic
(including break-the-glass exceptions), *converges its policy coverage
to the offline refinement figure while serving* — no restart, no
re-deploy, every adoption one hot snapshot swap.

Protocol per round: drive a slice of decide traffic through the live
server (write-through to the durable trail), seal the segment, let the
daemon poll (tail → mine → gate → swap), and sample coverage + wall
time.  After N rounds the serving policy store must be byte-identical to
what the offline :class:`~repro.refinement.loop.RefinementLoop` accepts
over the very same recorded trail, and the live coverage equals the
offline figure exactly.

Knobs: ``E19_REQUESTS`` (default 1200, per round), ``E19_ROUNDS``
(default 4), ``E19_CLIENTS`` (default 6).  A JSON record lands in
``benchmarks/out/e19_online_refinement.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.coverage.engine import compute_coverage
from repro.experiments.harness import DEMO_RULES, ReplayEnvironment
from repro.experiments.reporting import format_table
from repro.mining.patterns import MiningConfig
from repro.policy.parser import format_rule, parse_rule
from repro.policy.store import PolicyStore
from repro.refine_daemon import (
    AutoAcceptGate,
    DaemonConfig,
    EnginePolicyTarget,
    RefineDaemon,
)
from repro.refinement.engine import RefinementConfig
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import ThresholdReview
from repro.serve import (
    PdpClient,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    protocol,
    run_load,
)
from repro.store.durable import DurableAuditLog
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.traces import decision_payloads

_REQUESTS = int(os.environ.get("E19_REQUESTS", "1200"))
_ROUNDS = int(os.environ.get("E19_ROUNDS", "4"))
_CLIENTS = int(os.environ.get("E19_CLIENTS", "6"))
_ROWS = 60
_SEED = 7
_MINING = MiningConfig(min_support=5, min_distinct_users=2)

_OUT_PATH = Path(__file__).parent / "out" / "e19_online_refinement.json"

# the E18 ward wheel, tilted toward undocumented-but-legitimate practice:
# three exception combos the demo policy does not cover — the daemon's
# job is to mine them back into the store while the server runs
_COMBOS = (
    ("prescription", "treatment", "physician", AccessStatus.REGULAR),
    ("referral", "treatment", "nurse", AccessStatus.REGULAR),
    ("name", "billing", "clerk", AccessStatus.REGULAR),
    ("insurance", "treatment", "physician", AccessStatus.EXCEPTION),
    ("lab_results", "treatment", "nurse", AccessStatus.EXCEPTION),
    ("referral", "registration", "registrar", AccessStatus.EXCEPTION),
    ("lab_results", "diagnosis", "physician", AccessStatus.REGULAR),
)
_WEIGHTS = (22, 18, 14, 14, 12, 1, 9)


def _round_payloads(round_index: int, count: int) -> list[dict]:
    """``count`` decide payloads for one round, deterministic by round."""
    wheel: list[int] = []
    for combo_index, weight in enumerate(_WEIGHTS):
        wheel.extend([combo_index] * weight)
    log = AuditLog()
    base = round_index * count
    for offset in range(count):
        tick = base + offset
        slot = (tick * 2654435761) % len(wheel)
        data, purpose, role, status = _COMBOS[wheel[slot]]
        log.append(
            make_entry(tick + 1, f"user{(tick * 97) % 23}", data, purpose,
                       role, status=status)
        )
    return decision_payloads(log)


def _coverage_of(store: PolicyStore, trail, vocabulary) -> float:
    audit_policy = AuditLog(tuple(trail)).to_policy(_MINING.attributes)
    return compute_coverage(store.policy(), audit_policy, vocabulary).ratio


def test_e19_online_refinement(tmp_path):
    vocabulary = healthcare_vocabulary()
    durable = DurableAuditLog(tmp_path / "served", name="served")
    engine = build_demo_engine(rows=_ROWS, seed=_SEED, audit_log=durable)
    daemon = RefineDaemon(
        durable,
        EnginePolicyTarget(engine),
        vocabulary,
        AutoAcceptGate(
            min_support=_MINING.min_support,
            min_distinct_users=_MINING.min_distinct_users,
        ),
        DaemonConfig(mining=_MINING),
    )
    rounds = []
    boundaries = [0]
    started = time.perf_counter()
    with ServerThread(engine, ServerConfig(port=0), daemon=daemon) as srv:
        for round_index in range(_ROUNDS):
            payloads = _round_payloads(round_index, _REQUESTS)
            load = run_load(srv.host, srv.port, payloads, clients=_CLIENTS)
            durable.seal_active()
            trail_so_far = list(durable)
            before = _coverage_of(
                engine.manager.current.policy_store, trail_so_far, vocabulary
            )
            report = daemon.poll()
            boundaries.append(len(durable))
            rounds.append(
                {
                    "round": round_index,
                    "requests": load.summary()["requests"],
                    "elapsed_s": round(time.perf_counter() - started, 3),
                    "coverage_before": round(before, 4),
                    "consumed": report.consumed,
                    "accepted": [format_rule(r) for r in report.accepted],
                    "rules": len(engine.manager.current.policy_store),
                    "coverage": round(
                        _coverage_of(
                            engine.manager.current.policy_store,
                            trail_so_far,
                            vocabulary,
                        ),
                        4,
                    ),
                    "snapshot": engine.manager.current.snapshot_id,
                }
            )
        # the server never restarted: it still answers, on the same port
        with PdpClient(srv.host, srv.port) as client:
            ping = client.ping()
        assert ping["code"] == protocol.OK
        live_store = engine.manager.current.policy_store
        live_rules = sorted(format_rule(r) for r in live_store.policy())
        trail = list(durable)
    durable.close()

    # offline comparator: the stock loop over the same recorded trail,
    # from the same seed policy, same thresholds
    windows = [
        trail[boundaries[i] : boundaries[i + 1]] for i in range(_ROUNDS)
    ]
    offline_store = PolicyStore()
    for dsl in DEMO_RULES:
        offline_store.add(parse_rule(dsl))
    offline = RefinementLoop(
        ReplayEnvironment(windows),
        offline_store,
        vocabulary,
        ThresholdReview(_MINING.min_support, _MINING.min_distinct_users),
        config=RefinementConfig(mining=_MINING),
    )
    offline_result = offline.run(_ROUNDS)
    offline_rules = sorted(format_rule(r) for r in offline_store.policy())
    offline_coverage = round(_coverage_of(offline_store, trail, vocabulary), 4)

    record = {
        "experiment": "E19",
        "rows": _ROWS,
        "requests_per_round": _REQUESTS,
        "rounds": _ROUNDS,
        "clients": _CLIENTS,
        "series": rounds,
        "live_coverage": rounds[-1]["coverage"],
        "offline_coverage": offline_coverage,
        "identical_rule_sets": live_rules == offline_rules,
        "snapshot_swaps": rounds[-1]["snapshot"] - 1,
        "trail_entries": len(trail),
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["round", "t (s)", "consumed", "accepted", "rules",
             "coverage before → after"],
            [
                [r["round"], r["elapsed_s"], r["consumed"],
                 len(r["accepted"]), r["rules"],
                 f"{r['coverage_before']:.3f} → {r['coverage']:.3f}"]
                for r in rounds
            ],
            title=(
                f"E19 — online refinement under live load: coverage "
                f"{rounds[0]['coverage_before']:.3f} → "
                f"{rounds[-1]['coverage']:.3f} "
                f"(offline figure {offline_coverage:.3f}), no restart"
            ),
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    # the daemon actually refined: rules were adopted via hot swaps
    assert any(r["accepted"] for r in rounds)
    assert rounds[-1]["snapshot"] > 1
    # convergence: the live service ends byte-identical to the offline
    # loop over the same trail, with exactly the offline coverage
    assert live_rules == offline_rules
    assert rounds[-1]["coverage"] == offline_coverage
    # and coverage improved over the run (the paper's Figure-3 arc, live)
    assert rounds[-1]["coverage"] > rounds[0]["coverage_before"]
    assert offline_result.rounds[-1].coverage_after == offline_coverage
