"""E3 — Figure 2 quantified: coverage improvement over refinement rounds.

The paper claims refinement "gradually" improves coverage and reduces
reliance on break-the-glass.  We run the closed loop on the synthetic
hospital (5 000 accesses/round, 6 rounds) under two review policies:

- accept-all (the optimistic upper bound), and
- threshold-gated review (a cautious officer),

and additionally a clean-workflow variant (no noise/violations) where the
entry coverage must climb monotonically toward ~1.0.  The bench times one
refinement round (mine + prune over the cumulative log).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.harness import run_refinement_loop, standard_loop_setup
from repro.experiments.reporting import format_table
from repro.refinement.review import AcceptAll, ThresholdReview


def _series_rows(label, result):
    return [
        [
            label,
            report.round_index,
            f"{report.exception_rate:.1%}",
            f"{report.entry_coverage_before:.1%}",
            f"{report.entry_coverage_after:.1%}",
            report.patterns_useful,
            report.rules_accepted,
            report.store_size_after,
        ]
        for report in result.rounds
    ]


def test_e3_loop_dynamics(benchmark):
    accept_all = run_refinement_loop(
        standard_loop_setup(seed=7), AcceptAll(), rounds=6
    )
    gated = run_refinement_loop(
        standard_loop_setup(seed=7),
        ThresholdReview(min_support=25, min_distinct_users=3),
        rounds=6,
    )
    clean = run_refinement_loop(
        standard_loop_setup(seed=7, noise_rate=0.0, violation_rate=0.0),
        AcceptAll(),
        rounds=6,
    )

    rows = (
        _series_rows("accept-all", accept_all)
        + _series_rows("threshold", gated)
        + _series_rows("clean/accept", clean)
    )
    emit(
        format_table(
            ["review", "round", "exc-rate", "entry-cov before", "after",
             "useful", "accepted", "store"],
            rows,
            title="E3 — coverage vs refinement rounds (5k accesses/round)",
        )
    )

    # Paper-shape assertions: break-the-glass traffic collapses and
    # coverage climbs once practice is codified.
    first, last = accept_all.rounds[0], accept_all.rounds[-1]
    assert first.exception_rate > 3 * last.exception_rate
    assert last.entry_coverage_after > first.entry_coverage_before

    # the cautious reviewer accepts fewer rules but still improves coverage
    assert len(gated.store) <= len(accept_all.store)
    assert gated.rounds[-1].entry_coverage_after > gated.rounds[0].entry_coverage_before

    # with no noise/violations the loop converges to (near-)complete
    # entry coverage, monotonically
    series = [r.entry_coverage_after for r in clean.rounds]
    assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
    assert series[-1] > 0.99

    # benchmark one refinement round over an already-collected log
    from repro.refinement.engine import refine

    setup = standard_loop_setup(seed=13)
    log = setup.environment.simulate_round(0, setup.store)
    benchmark(refine, setup.store.policy(), log, setup.vocabulary)
