"""Shared helpers for the experiment benches.

Every bench prints the paper-style result rows (run with ``-s`` to see
them) and asserts the qualitative claim it reproduces, so ``pytest
benchmarks/ --benchmark-only`` doubles as the experiment regression suite.
EXPERIMENTS.md records one captured run.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a result block, padded for readability under -s."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def vocabulary():
    from repro.vocab.builtin import healthcare_vocabulary

    return healthcare_vocabulary()
