"""E11 (extension) — temporal conditions (the Section 4.2 augmentation).

A night-shift-only practice is planted into an otherwise ordinary
workload (three staff members pulling referral data for registration,
22:00-06:00 only).  Plain mining proposes a blanket grant; temporal
mining proposes the same rule scoped to a ~8-hour window — the tighter,
more privacy-preserving amendment.  The bench times temporal mining over
the practice log.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.experiments.reporting import format_table
from repro.mining.patterns import MiningConfig
from repro.mining.temporal import hour_extractor, mine_temporal_patterns
from repro.refinement.filtering import filter_practice


def _workload(days: int = 14, seed: int = 41) -> AuditLog:
    rng = random.Random(seed)
    events: list[tuple[int, str, str, str, str]] = []
    for day in range(days):
        base = day * 24
        # the planted night practice: 2 accesses per night, rotating staff
        for index in range(2):
            hour = rng.choice((22, 23, 0, 1, 2, 3, 4, 5))
            tick = base + (hour if hour >= 22 else hour + 24)
            user = f"night_nurse_{(day + index) % 3}"
            events.append((tick, user, "referral", "registration", "nurse"))
        # day-time practice, spread across the whole day
        for _ in range(6):
            hour = rng.randrange(24)
            user = f"day_nurse_{rng.randrange(4)}"
            events.append((base + hour, user, "prescription", "treatment", "nurse"))
    events.sort()
    log = AuditLog()
    for tick, user, data, purpose, role in events:
        log.append(
            make_entry(tick, user, data, purpose, role,
                       status=AccessStatus.EXCEPTION, truth="practice")
        )
    return log


def test_e11_temporal_conditions(benchmark):
    log = _workload()
    practice = filter_practice(log)
    config = MiningConfig(min_support=5)

    temporal = benchmark(
        mine_temporal_patterns, practice, config,
        hour_extractor(), None, 10, 0.9,
    )
    by_data = {t.pattern.rule.value_of("data"): t for t in temporal}

    # the night practice gets a window; the day practice does not
    assert "referral" in by_data
    assert "prescription" not in by_data
    night = by_data["referral"]
    assert night.window.span <= 10
    assert all(hour in (22, 23, 0, 1, 2, 3, 4, 5) for hour in night.window.hours())

    emit(
        format_table(
            ["candidate", "plain amendment", "temporal amendment"],
            [
                [
                    str(night.pattern.rule),
                    "blanket 24h grant",
                    night.to_conditional_rule().to_dsl(),
                ]
            ],
            title="E11 — temporal refinement proposes the tighter grant",
        )
    )


def test_e11_generated_shift_workload(benchmark):
    """Same experiment on the shift-structured synthetic hospital."""
    from repro.policy.conditions import TimeWindow
    from repro.policy.store import PolicyStore
    from repro.vocab.builtin import healthcare_vocabulary
    from repro.workload.generator import WorkloadConfig
    from repro.workload.hospital import build_hospital
    from repro.workload.shifts import ShiftStructuredEnvironment, add_night_practice

    hospital = build_hospital(
        healthcare_vocabulary(), departments=1, staff_per_role=3, seed=43
    )
    add_night_practice(hospital, "insurance", "registration", "nurse", weight=8.0)
    environment = ShiftStructuredEnvironment(
        hospital,
        WorkloadConfig(accesses_per_round=2000, noise_rate=0.0,
                       violation_rate=0.0, seed=43),
        ticks_per_hour=10,
    )
    log = environment.simulate_round(0, PolicyStore())
    practice = filter_practice(log)

    temporal = benchmark(
        mine_temporal_patterns, practice, MiningConfig(min_support=10),
        hour_extractor(ticks_per_hour=10), None, 10, 0.9,
    )
    windowed = {
        (t.pattern.rule.value_of("data"), t.pattern.rule.value_of("purpose"))
        for t in temporal
    }
    assert ("insurance", "registration") in windowed
    night = next(
        t for t in temporal
        if t.pattern.rule.value_of("data") == "insurance"
    )
    assert set(night.window.hours()) <= set(TimeWindow(22, 6).hours())
