"""E1 — Figure 3: the coverage worked example (Section 3.3).

Paper numbers: Range(P_PS) = 8 ground rules, Range(P_AL) = 6, overlap 3,
coverage 3/6 = 50 %.  The bench times one full ComputeCoverage invocation
(Algorithm 1) including range materialisation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.coverage.engine import compute_coverage
from repro.coverage.gaps import analyse_gaps
from repro.experiments.reporting import format_table
from repro.workload.scenarios import figure3_audit_policy, figure3_policy


def test_e1_figure1_vocabulary(benchmark, vocabulary):
    """Regenerate Figure 1: the sample privacy policy vocabulary."""
    from repro.vocab.render import render_vocabulary

    text = benchmark(render_vocabulary, vocabulary)
    # the Figure 1 facts the formal model depends on
    assert "demographic" in text
    assert text.count("|-- name") + text.count("`-- name") >= 1
    emit("Figure 1 — sample privacy policy vocabulary\n" + text)


def test_e1_figure3_coverage(benchmark, vocabulary):
    store = figure3_policy()
    audit = figure3_audit_policy()

    report = benchmark(compute_coverage, store, audit, vocabulary)

    assert report.overlap.cardinality == 3
    assert report.reference.cardinality == 6
    assert report.covering.cardinality == 8
    assert report.ratio == pytest.approx(0.5)

    gaps = analyse_gaps(report, store, vocabulary)
    emit(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["#Range(P_PS)", 8, report.covering.cardinality],
                ["#Range(P_AL)", 6, report.reference.cardinality],
                ["#overlap", 3, report.overlap.cardinality],
                ["coverage", "50%", f"{report.ratio:.0%}"],
                ["exception scenarios", 3, gaps.explained_count],
            ],
            title="E1 / Figure 3 — coverage worked example",
        )
    )
