"""E8 — ComputeCoverage (Algorithm 1) scaling and the grounding ablation.

Coverage reduces to range materialisation plus a set intersection; the
refinement loop recomputes it constantly over an evolving store, so the
memoised :class:`~repro.policy.grounding.Grounder` is the design choice
DESIGN.md calls out.  We measure coverage over stores of 10–1 000
composite rules, and the ablation: memoised vs naive re-expansion when
the same policy is ground ten times (the loop's actual access pattern).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.coverage.engine import compute_coverage
from repro.experiments.reporting import format_table
from repro.policy.grounding import Grounder, Range
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.builtin import healthcare_vocabulary

VOCAB = healthcare_vocabulary()


def _random_policy(rules: int, seed: int, composite_bias: float = 0.5) -> Policy:
    rng = random.Random(seed)
    data_tree = VOCAB.tree_for("data")
    purpose_tree = VOCAB.tree_for("purpose")
    role_tree = VOCAB.tree_for("authorized")

    def pick(tree):
        nodes = list(tree)
        internal = [n for n in nodes if not tree.is_leaf(n)]
        leaves = [n for n in nodes if tree.is_leaf(n)]
        if internal and rng.random() < composite_bias:
            return rng.choice(internal)
        return rng.choice(leaves)

    return Policy(
        [
            Rule.of(
                data=pick(data_tree),
                purpose=pick(purpose_tree),
                authorized=pick(role_tree),
            )
            for _ in range(rules)
        ]
    )


@pytest.mark.parametrize("store_rules", [10, 100, 1000])
def test_e8_coverage_scaling(benchmark, store_rules):
    store = _random_policy(store_rules, seed=store_rules)
    audit = _random_policy(200, seed=7, composite_bias=0.0)
    report = benchmark(compute_coverage, store, audit, VOCAB)
    assert 0.0 <= report.ratio <= 1.0


def test_e8_memoised_vs_naive_ablation(benchmark):
    import time

    policy = _random_policy(300, seed=3)
    repeats = 10

    def naive() -> Range:
        result = Range()
        for _ in range(repeats):
            rules = set()
            for rule in policy:
                rules.update(rule.ground_rules(VOCAB))
            result = Range(rules)
        return result

    def memoised() -> Range:
        grounder = Grounder(VOCAB)
        result = Range()
        for _ in range(repeats):
            result = grounder.range_of(policy)
        return result

    assert naive() == memoised()

    started = time.perf_counter()
    naive()
    naive_seconds = time.perf_counter() - started
    started = time.perf_counter()
    memoised()
    memo_seconds = time.perf_counter() - started
    emit(
        format_table(
            ["grounding", "seconds (10x range of 300-rule policy)"],
            [
                ["naive re-expansion", f"{naive_seconds:.4f}"],
                ["memoised grounder", f"{memo_seconds:.4f}"],
                ["speedup", f"{naive_seconds / memo_seconds:.2f}x"],
            ],
            title="E8 ablation — memoised vs naive grounding",
        )
    )
    # the ablation's point: memoisation wins on repeated range computation
    assert memo_seconds < naive_seconds
    benchmark(memoised)
