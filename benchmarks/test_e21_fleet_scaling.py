"""E21 — the decision-service fleet: scale-out, identity, federation.

DESIGN.md §14 commits the multi-process fleet to three promises:

1. **Scale-out that scales** — N workers behind one shared port serve
   real multiples of one worker's throughput (asserted ≥3× at 4 workers,
   but only on a host with ≥4 CPUs — a 1-core container runs the probe
   and records the ratio without enforcing it).
2. **Federated trails lose nothing** — each worker audits into its own
   durable segment directory; consolidating them through the PR 3/4
   federation layer yields exactly the entry set a single-process server
   produces for the same traffic (times excluded: each worker runs its
   own logical clock).
3. **One refinement input** — ``refine()`` over the consolidated fleet
   trail is byte-identical to ``refine()`` over the single-process
   trail, so the closed loop neither multiplies nor drops evidence when
   the deployment scales out.

Plus the control-channel check: an admin broadcast issued *while decide
traffic is in flight* converges every worker to the same versions.

Knobs: ``E21_REQUESTS`` (default 1200), ``E21_WORKERS`` (default
min(4, cpus), floor 2).  A JSON record lands in
``benchmarks/out/e21_fleet_scaling.json``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from benchmarks.conftest import emit
from repro.experiments.reporting import format_table
from repro.fleet import FleetConfig, FleetSupervisor, consolidated_trail
from repro.policy.parser import format_rule, parse_policy
from repro.refinement.engine import refine
from repro.experiments.harness import DEMO_RULES
from repro.serve import (
    PdpClient,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    run_load,
    run_load_open,
)
from repro.store.durable import DurableAuditLog
from repro.store.store import StoreConfig
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.traces import demo_decision_payloads

_REQUESTS = int(os.environ.get("E21_REQUESTS", "1200"))
_WORKERS = int(os.environ.get(
    "E21_WORKERS", str(max(2, min(4, os.cpu_count() or 1)))
))
_ROWS = 120
_SEED = 7
_SEGMENT_ENTRIES = 64
_SWEEP_RATES = (500.0, 1000.0, 2000.0, 4000.0)

_OUT_PATH = Path(__file__).parent / "out" / "e21_fleet_scaling.json"


def _entry_key(entry):
    """Identity key with time excluded: worker clocks tick independently."""
    return (entry.op, entry.user, entry.data, entry.purpose,
            entry.authorized, entry.status, entry.truth)


def _refine_bytes(trail) -> bytes:
    """Canonical serialization of one ``refine()`` run over ``trail``."""
    store = parse_policy("\n".join(DEMO_RULES))
    result = refine(store, trail, healthcare_vocabulary())
    document = {
        "set_coverage": round(result.coverage.ratio, 12),
        "entry_coverage": round(result.entry_coverage.ratio, 12),
        "patterns": [
            {"rule": format_rule(pattern.rule), "support": pattern.support,
             "users": pattern.distinct_users}
            for pattern in result.patterns
        ],
        "useful": [
            {"rule": format_rule(pattern.rule), "support": pattern.support,
             "users": pattern.distinct_users}
            for pattern in result.useful_patterns
        ],
    }
    return json.dumps(document, sort_keys=True).encode()


def _single_process_phase(root: Path, payloads) -> dict:
    """The baseline: one server, one durable trail, closed-loop load."""
    directory = root / "single"
    audit_log = DurableAuditLog(
        directory, config=StoreConfig(max_segment_entries=_SEGMENT_ENTRIES),
        name="served",
    )
    engine = build_demo_engine(rows=_ROWS, seed=_SEED, audit_log=audit_log)
    with ServerThread(engine, ServerConfig(port=0)) as srv:
        report = run_load(srv.host, srv.port, payloads, clients=4)
    audit_log.close()
    trail = DurableAuditLog(directory, name="served", create=False)
    summary = report.summary()
    summary["audit_entries"] = len(trail)
    return {
        "summary": summary,
        "keys": sorted(_entry_key(entry) for entry in trail),
        "refine": _refine_bytes(trail),
    }


def _fleet_phase(root: Path, payloads) -> dict:
    """The fleet run: same traffic, plus a mid-load admin broadcast."""
    store_dir = root / "fleet"
    config = FleetConfig(
        store_dir=str(store_dir), workers=_WORKERS, rows=_ROWS, seed=_SEED,
        segment_entries=_SEGMENT_ENTRIES,
    )
    broadcast: dict = {}
    with FleetSupervisor(config) as supervisor:

        def converge_mid_load():
            # fire while the closed-loop replay below is in flight, so the
            # broadcast interleaves with live decide traffic on every
            # worker.  Consent does not alter demo decide outcomes (the
            # decide path is policy-only), so the trails stay comparable.
            with PdpClient(supervisor.host, supervisor.port) as admin:
                broadcast["response"] = admin.record_consent(
                    "p000001", "research", True
                )

        timer = threading.Timer(0.1, converge_mid_load)
        timer.start()
        report = run_load(
            supervisor.host, supervisor.port, payloads,
            clients=max(4, 2 * _WORKERS),
        )
        timer.join()
        status = supervisor.status()
        supervisor.sync()
    trail = consolidated_trail(store_dir)
    summary = report.summary()
    summary["audit_entries"] = len(trail)
    per_worker = {
        worker["site"]: worker["audit_entries"]
        for worker in status["workers"]
    }
    return {
        "summary": summary,
        "keys": sorted(_entry_key(entry) for entry in trail),
        "refine": _refine_bytes(trail),
        "status": status,
        "broadcast": broadcast.get("response"),
        "per_worker_entries": per_worker,
    }


def _capacity_probe(root: Path, workers: int, payloads) -> dict:
    """Open-loop saturation sweep against a fresh ``workers``-sized fleet."""
    config = FleetConfig(
        store_dir=str(root / f"capacity-{workers}"), workers=workers,
        rows=_ROWS, seed=_SEED,
    )
    processes = 2 if (os.cpu_count() or 1) >= 4 else 1
    sweep = []
    with FleetSupervisor(config) as supervisor:
        for rate in _SWEEP_RATES:
            report = run_load_open(
                supervisor.host, supervisor.port, payloads,
                target_rps=rate, clients=4, processes=processes,
            )
            sweep.append(report.summary())
    return {
        "workers": workers,
        "driver_processes": processes,
        "sweep": sweep,
        "capacity_rps": max(point["achieved_rps"] for point in sweep),
    }


def test_e21_fleet_scaling(tmp_path):
    payloads = demo_decision_payloads(_REQUESTS)

    single = _single_process_phase(tmp_path, payloads)
    fleet = _fleet_phase(tmp_path, payloads)
    probe_payloads = demo_decision_payloads(min(_REQUESTS, 800))
    baseline = _capacity_probe(tmp_path, 1, probe_payloads)
    scaled = _capacity_probe(tmp_path, _WORKERS, probe_payloads)
    speedup = scaled["capacity_rps"] / max(baseline["capacity_rps"], 1e-9)

    cpus = os.cpu_count() or 1
    speedup_enforced = cpus >= 4 and _WORKERS >= 4
    refine_identical = single["refine"] == fleet["refine"]
    trails_identical = single["keys"] == fleet["keys"]

    record = {
        "experiment": "E21",
        "requests": _REQUESTS,
        "workers": _WORKERS,
        "rows": _ROWS,
        "cpus": cpus,
        "single": single["summary"],
        "fleet": fleet["summary"],
        "per_worker_entries": fleet["per_worker_entries"],
        "trails_identical": trails_identical,
        "refine_identical": refine_identical,
        "converged_under_load": fleet["status"]["converged"],
        "capacity": {"single": baseline, "fleet": scaled},
        "speedup": round(speedup, 3),
        "speedup_enforced": speedup_enforced,
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["measure", "single", f"fleet ({_WORKERS}w)"],
            [
                ["closed-loop rps", single["summary"]["throughput_rps"],
                 fleet["summary"]["throughput_rps"]],
                ["audit entries", single["summary"]["audit_entries"],
                 fleet["summary"]["audit_entries"]],
                ["open-loop capacity (rps)", baseline["capacity_rps"],
                 scaled["capacity_rps"]],
                ["trail entry sets", "-",
                 "identical" if trails_identical else "DIVERGED"],
                ["refine() output", "-",
                 "byte-identical" if refine_identical else "DIVERGED"],
                ["converged under load", "-",
                 fleet["status"]["converged"]],
            ],
            title=(
                f"E21 — fleet scale-out, {_REQUESTS} requests, "
                f"{cpus} cpus, speedup {speedup:.2f}x"
                f"{'' if speedup_enforced else ' (not enforced)'}"
            ),
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    # closed-loop phases must audit every request exactly once: no
    # shedding, no errors, or the identity comparison is meaningless
    assert single["summary"]["errors"] == 0
    assert fleet["summary"]["errors"] == 0
    assert single["summary"]["shed"] == 0
    assert fleet["summary"]["shed"] == 0
    assert single["summary"]["audit_entries"] == _REQUESTS

    # (b) federated per-worker trails consolidate to the single-process
    # entry set — nothing lost, nothing duplicated
    assert fleet["summary"]["audit_entries"] == _REQUESTS
    assert trails_identical, "consolidated fleet trail diverged from baseline"
    assert sum(fleet["per_worker_entries"].values()) == _REQUESTS

    # (c) one refinement input: byte-identical refine() either way
    assert refine_identical, "refine() over the federated trail diverged"

    # admin broadcast under concurrent decide traffic converged the fleet
    assert fleet["broadcast"]["ok"] is True
    assert fleet["broadcast"]["fleet"]["acks"] == _WORKERS
    assert fleet["status"]["converged"] is True
    consent_versions = [worker["versions"]["consent"]
                        for worker in fleet["status"]["workers"]]
    assert consent_versions == [1] * _WORKERS

    # (a) ≥3× capacity at 4 workers — enforced only where the host can
    assert speedup > 0
    if speedup_enforced:
        assert speedup >= 3.0, (
            f"fleet of {_WORKERS} reached only {speedup:.2f}x of one worker"
        )
