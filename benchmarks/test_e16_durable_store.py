"""E16 — durable audit store: throughput, crash recovery, streamed refinement.

The segmented store (DESIGN.md §9) makes three quantitative promises:

1. **Append throughput** — framing + CRC + indexing keeps sustained
   appends above 10k entries/s without fsync (the batching policies only
   add I/O waits, not CPU).
2. **Crash recovery is cheap and exact** — reopening a store whose active
   segment has a torn tail recovers every committed entry, drops only the
   torn bytes, and completes in well under a second at bench scale.
3. **Streamed refinement is leaner than in-memory** — running Algorithm 2
   directly off disk allocates less peak memory than first materialising
   the same log, and a 3-round refinement loop writing through a
   :class:`~repro.store.durable.DurableAuditLog` accepts exactly the same
   rules as the in-memory loop.

A JSON perf record lands in ``benchmarks/out/e16_durable_store.json``.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

from benchmarks.conftest import emit
from repro.audit.log import AuditLog, make_entry
from repro.experiments.harness import run_refinement_loop, standard_loop_setup
from repro.experiments.reporting import format_table
from repro.refinement.engine import refine
from repro.refinement.review import ThresholdReview
from repro.store.durable import DurableAuditLog, copy_to_durable
from repro.store.manifest import load_manifest
from repro.store.store import AuditStore, StoreConfig
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.scenarios import figure3_policy

_APPEND_ENTRIES = 30_000
_MIN_APPENDS_PER_SECOND = 10_000
_RECOVERY_MAX_SECONDS = 1.0
_LOOP_ROUNDS = 3
_LOOP_ACCESSES = 1500

_OUT_PATH = Path(__file__).parent / "out" / "e16_durable_store.json"


def _entry(tick: int):
    return make_entry(
        tick, f"user{tick % 7}", "referral", "registration", "nurse"
    )


def _bench_append_throughput(tmp_path) -> dict:
    """Sustained append rate with durability left to the OS (fsync=off)."""
    store = AuditStore(tmp_path / "throughput", StoreConfig(fsync="off"))
    started = time.perf_counter()
    store.extend(_entry(tick) for tick in range(1, _APPEND_ENTRIES + 1))
    store.sync()
    elapsed = time.perf_counter() - started
    stats = store.stats()
    store.close()
    return {
        "entries": _APPEND_ENTRIES,
        "seconds": round(elapsed, 4),
        "appends_per_second": round(_APPEND_ENTRIES / elapsed),
        "segments": stats.segments,
        "bytes": stats.size_bytes,
    }


def _bench_recovery(tmp_path) -> dict:
    """Reopen time after a simulated torn write at the active tail."""
    directory = tmp_path / "recovery"
    with AuditStore(
        directory, StoreConfig(max_segment_entries=4000, fsync="off")
    ) as store:
        store.extend(_entry(tick) for tick in range(1, _APPEND_ENTRIES + 1))
    active = directory / load_manifest(directory).active
    garbage = b"\x70\x01\x00\x00\xde\xad\xbe\xef" + b"torn-mid-write"
    with active.open("ab") as handle:
        handle.write(garbage)
    started = time.perf_counter()
    store = AuditStore(directory, create=False)
    elapsed = time.perf_counter() - started
    report = store.last_recovery
    recovered = len(store)
    store.close()
    return {
        "committed_entries": _APPEND_ENTRIES,
        "recovered_entries": recovered,
        "torn_bytes_dropped": report.torn_bytes_dropped,
        "torn_bytes_injected": len(garbage),
        "seconds": round(elapsed, 4),
    }


def _bench_streamed_refinement(tmp_path) -> dict:
    """Peak allocations: refine off disk vs refine a materialised log."""
    vocabulary = healthcare_vocabulary()
    policy = figure3_policy()
    source = AuditLog()
    source.extend(_entry(tick) for tick in range(1, _APPEND_ENTRIES + 1))
    directory = tmp_path / "streamed"
    copy_to_durable(source, directory, StoreConfig(fsync="off")).close()
    del source

    durable = DurableAuditLog(directory, create=False)
    tracemalloc.start()
    refine(policy, durable, vocabulary)
    _, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    durable.close()

    tracemalloc.start()
    materialised = AuditLog()
    materialised.extend(iter(DurableAuditLog(directory, create=False)))
    refine(policy, materialised, vocabulary)
    _, in_memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "entries": _APPEND_ENTRIES,
        "streamed_peak_bytes": streamed_peak,
        "in_memory_peak_bytes": in_memory_peak,
        "saving": round(1 - streamed_peak / in_memory_peak, 3),
    }


def _bench_loop_equivalence(tmp_path) -> dict:
    """The disk-backed loop must accept exactly the in-memory rules."""
    kwargs = dict(accesses_per_round=_LOOP_ACCESSES, seed=13)
    in_memory = run_refinement_loop(
        standard_loop_setup(**kwargs), ThresholdReview(), rounds=_LOOP_ROUNDS
    )
    durable = DurableAuditLog(tmp_path / "loop", StoreConfig(fsync="off"))
    on_disk = run_refinement_loop(
        standard_loop_setup(**kwargs), ThresholdReview(), rounds=_LOOP_ROUNDS,
        cumulative_log=durable,
    )
    same_rules = tuple(on_disk.store.policy()) == tuple(in_memory.store.policy())
    result = {
        "rounds": _LOOP_ROUNDS,
        "entries_persisted": len(durable),
        "accepted_in_memory": sum(r.rules_accepted for r in in_memory.rounds),
        "accepted_on_disk": sum(r.rules_accepted for r in on_disk.rounds),
        "identical_rules": same_rules,
        "store_verifies": durable.verify().ok,
    }
    durable.close()
    return result


def test_e16_durable_store(tmp_path):
    throughput = _bench_append_throughput(tmp_path)
    recovery = _bench_recovery(tmp_path)
    memory = _bench_streamed_refinement(tmp_path)
    loop = _bench_loop_equivalence(tmp_path)

    record = {
        "experiment": "E16",
        "append": throughput,
        "recovery": recovery,
        "refinement_memory": memory,
        "loop_equivalence": loop,
        "min_appends_per_second": _MIN_APPENDS_PER_SECOND,
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["measure", "value"],
            [
                ["append rate", f"{throughput['appends_per_second']:,}/s "
                                f"({throughput['segments']} segments)"],
                ["recovery time", f"{recovery['seconds']:.3f}s for "
                                  f"{recovery['recovered_entries']:,} entries"],
                ["torn bytes dropped", recovery["torn_bytes_dropped"]],
                ["refine peak (streamed)", f"{memory['streamed_peak_bytes']:,} B"],
                ["refine peak (in-memory)", f"{memory['in_memory_peak_bytes']:,} B"],
                ["peak-memory saving", f"{memory['saving']:.0%}"],
                ["loop rules identical", loop["identical_rules"]],
            ],
            title=f"E16 — durable store at {_APPEND_ENTRIES:,} entries",
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    assert throughput["appends_per_second"] >= _MIN_APPENDS_PER_SECOND, (
        f"append rate {throughput['appends_per_second']}/s below the "
        f"{_MIN_APPENDS_PER_SECOND}/s floor"
    )
    assert recovery["recovered_entries"] == recovery["committed_entries"], (
        "recovery must keep every committed entry"
    )
    assert recovery["torn_bytes_dropped"] == recovery["torn_bytes_injected"], (
        "recovery must drop exactly the torn bytes"
    )
    assert recovery["seconds"] < _RECOVERY_MAX_SECONDS
    assert memory["streamed_peak_bytes"] < memory["in_memory_peak_bytes"], (
        "streaming refinement off disk must allocate less than materialising"
    )
    assert loop["identical_rules"], (
        "the disk-backed loop must accept exactly the in-memory rules"
    )
    assert loop["store_verifies"]
