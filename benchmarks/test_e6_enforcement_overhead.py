"""E6 — Section 4.2's overhead concern: what do enforcement + auditing cost?

The paper's first worry about retroactive controls is "the degradation in
system performance and the increased storage demand"; HDB's pitch is
"minimal impact, storage and performance efficient logs".  We measure the
same query served three ways over a 1 000 / 10 000-row patients table:

- raw: straight to the sqlmini engine, no middleware;
- enforced: Active Enforcement (policy check + AST rewrite + consent
  post-filter) + Compliance Auditing;
- break-the-glass: the exception path (no policy masking, still audited).

Expected shape: a modest constant-factor overhead that does not change
the query's asymptotic cost (both scale linearly with table size).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.harness import clinical_db_setup

_SQL = "SELECT name, prescription, referral FROM patients WHERE pid LIKE 'p00%'"


@pytest.fixture(scope="module")
def small_setup():
    return clinical_db_setup(rows=1000)


@pytest.fixture(scope="module")
def large_setup():
    return clinical_db_setup(rows=10_000)


def test_e6_raw_query_1k(benchmark, small_setup):
    result = benchmark(small_setup.control_center.database.query, _SQL)
    assert len(result) > 0


def test_e6_enforced_query_1k(benchmark, small_setup):
    center = small_setup.control_center
    result = benchmark(
        center.run, "n1", "nurse", "treatment", _SQL
    )
    # nurses hold treatment grants on medical records and demographics
    assert result.categories_returned == ("name", "prescription", "referral")
    assert result.categories_masked == ()


def test_e6_break_the_glass_1k(benchmark, small_setup):
    center = small_setup.control_center
    result = benchmark(
        center.run, "n1", "nurse", "emergency_care", _SQL, True
    )
    assert result.categories_masked == ()


def test_e6_raw_query_10k(benchmark, large_setup):
    result = benchmark(large_setup.control_center.database.query, _SQL)
    assert len(result) > 0


def test_e6_enforced_query_10k(benchmark, large_setup):
    center = large_setup.control_center
    result = benchmark(center.run, "n1", "nurse", "treatment", _SQL)
    assert len(result.result) > 0


def test_e6_overhead_summary(benchmark, small_setup):
    """Quantify the per-query overhead factor and audit storage cost."""
    import time

    center = small_setup.control_center

    def timed(callable_, *args):
        started = time.perf_counter()
        for _ in range(20):
            callable_(*args)
        return (time.perf_counter() - started) / 20

    raw = timed(center.database.query, _SQL)
    enforced = timed(center.run, "n1", "nurse", "treatment", _SQL)
    factor = enforced / raw
    entries_per_query = 3  # one per touched category
    emit(
        f"E6 — enforcement overhead (1k rows)\n"
        f"raw query        : {raw * 1e3:.3f} ms\n"
        f"enforced query   : {enforced * 1e3:.3f} ms\n"
        f"overhead factor  : {factor:.2f}x\n"
        f"audit entries/qry: {entries_per_query}"
    )
    # the paper's qualitative claim: enforcement costs a constant factor,
    # not an asymptotic blowup; generous bound to stay robust in CI
    assert factor < 25
    benchmark(center.database.query, _SQL)
