"""E4 — Section 5's "clearly subjective" thresholds, quantified.

Sweep the miner's f (minimum support) and c (distinct users) over a
10 000-access synthetic log with labelled ground truth.  Mined patterns
are classified against the hospital's true workflow: genuine practices,
injected snooping (violations), and repeated noise.  Expected shape: low
f floods the review queue (high recall, junk included), high f starves it
(clean but low recall); the distinct-user condition is what screens the
single-user snooper.  The bench times one sweep cell (mine at the paper's
defaults f=5, c=2).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.harness import standard_loop_setup
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import threshold_sweep
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.refinement.filtering import filter_practice


def test_e4_threshold_sensitivity(benchmark):
    # 3 000 accesses: enough for the head of the workflow to clear any
    # threshold while the long tail (lowest practice weights) lands at
    # ~5-15 occurrences, so high f visibly costs recall
    setup = standard_loop_setup(
        accesses_per_round=3_000, violation_rate=0.03, seed=17
    )
    log = setup.environment.simulate_round(0, setup.store)
    workflow = set(setup.hospital.practice_rules())

    points = threshold_sweep(
        log, workflow, support_values=(2, 3, 5, 10, 20), user_values=(1, 2, 3)
    )
    emit(
        format_table(
            ["f", "c", "patterns", "workflow", "violation", "noise", "wf-recall"],
            [
                [p.min_support, p.min_distinct_users, p.patterns_found,
                 p.workflow_found, p.violation_found, p.noise_found,
                 f"{p.workflow_recall:.2f}"]
                for p in points
            ],
            title="E4 — miner sensitivity to f (support) and c (distinct users)",
        )
    )

    by_key = {(p.min_support, p.min_distinct_users): p for p in points}
    # recall can only fall as f rises (fixed c=2)
    recalls = [by_key[(f, 2)].workflow_recall for f in (2, 3, 5, 10, 20)]
    assert recalls == sorted(recalls, reverse=True)
    # pattern count can only fall as f rises
    counts = [by_key[(f, 2)].patterns_found for f in (2, 3, 5, 10, 20)]
    assert counts == sorted(counts, reverse=True)
    # the distinct-user condition is what screens the snooper
    assert by_key[(5, 1)].violation_found > 0
    assert by_key[(5, 2)].violation_found == 0
    # low f admits repeated noise into the review queue; high f does not
    assert by_key[(2, 1)].noise_found >= by_key[(20, 1)].noise_found
    # the paper's defaults find real workflow and nothing injected
    default = by_key[(5, 2)]
    assert default.workflow_found > 0
    assert default.violation_found == 0

    practice = filter_practice(log)
    benchmark(SqlPatternMiner().mine, practice, MiningConfig())
