"""E15 — telemetry overhead: instrumented vs dark coverage computation.

The telemetry layer (DESIGN.md §8) promises that instrumentation is cheap
enough to leave on: hot paths keep plain ints flushed by collectors at
snapshot time, and per-call extras are a single span plus a few counter
increments.  This bench runs the E8/E14 coverage-scaling workload shape
twice — once under :data:`repro.obs.NULL_REGISTRY` (dark) and once under a
live :class:`~repro.obs.MetricsRegistry` — with interleaved trials and a
min-of-trials comparison, and asserts the instrumented run stays within
5 % of dark.  A JSON perf record (including the live run's telemetry
snapshot) lands in ``benchmarks/out/e15_obs_overhead.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.test_e14_range_backend import _random_policy, _scale_vocabulary
from repro import obs
from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.experiments.reporting import format_table
from repro.policy.grounding import Grounder

_STORE_RULES = 400
_AUDIT_RULES = 250
_ENTRY_TRACE = 300
_REPEATS = 12  # coverage computations per timed trial
_TRIALS = 15  # interleaved dark/live trials; min-of-trials is compared
_MAX_OVERHEAD = 0.05

_OUT_PATH = Path(__file__).parent / "out" / "e15_obs_overhead.json"


def _build_workload(registry: obs.MetricsRegistry):
    """Vocabulary, policies, entry trace and a *warm* grounder under ``registry``.

    Everything (grounder included) is constructed while ``registry`` is
    active, because components capture the active registry at construction
    — this is the A/B mechanism the runtime layer provides.
    """
    with obs.use_registry(registry):
        vocab = _scale_vocabulary()
        store = _random_policy(vocab, _STORE_RULES, seed=3)
        audit = _random_policy(vocab, _AUDIT_RULES, seed=7)
        entries = list(_random_policy(vocab, _ENTRY_TRACE, seed=11))
        grounder = Grounder(vocab)
        # Warm up: populate the grounder memo and interner so the timed
        # region measures steady-state coverage, not first-touch grounding.
        compute_coverage(store, audit, vocab, grounder)
        compute_entry_coverage(store, iter(entries), vocab, grounder)
    return vocab, store, audit, entries, grounder


def _timed_trial(registry, vocab, store, audit, entries, grounder) -> float:
    """One trial: ``_REPEATS`` coverage computations under ``registry``."""
    with obs.use_registry(registry):
        started = time.perf_counter()
        for _ in range(_REPEATS):
            compute_coverage(store, audit, vocab, grounder)
            compute_entry_coverage(store, iter(entries), vocab, grounder)
        return time.perf_counter() - started


def test_e15_instrumentation_overhead_within_5_percent():
    live_registry = obs.MetricsRegistry()
    dark_workload = _build_workload(obs.NULL_REGISTRY)
    live_workload = _build_workload(live_registry)

    # One untimed warm-up trial per arm: the first pass through either
    # workload pays allocator/branch-predictor setup that would otherwise
    # bias whichever arm runs first.
    _timed_trial(obs.NULL_REGISTRY, *dark_workload)
    _timed_trial(live_registry, *live_workload)

    dark_trials: list[float] = []
    live_trials: list[float] = []
    for _ in range(_TRIALS):  # interleaved so drift hits both arms equally
        dark_trials.append(_timed_trial(obs.NULL_REGISTRY, *dark_workload))
        live_trials.append(_timed_trial(live_registry, *live_workload))

    dark_best = min(dark_trials)
    live_best = min(live_trials)
    overhead = live_best / dark_best - 1.0

    snapshot = live_registry.snapshot()
    cache_hits = next(
        (
            sample["value"]
            for sample in snapshot["counters"]
            if sample["name"] == "repro_policy_grounder_cache_hits_total"
        ),
        0.0,
    )
    assert cache_hits > 0, "live run must have recorded grounder cache hits"

    record = {
        "experiment": "E15",
        "store_rules": _STORE_RULES,
        "audit_rules": _AUDIT_RULES,
        "entry_trace": _ENTRY_TRACE,
        "repeats_per_trial": _REPEATS,
        "trials": _TRIALS,
        "dark_seconds": round(dark_best, 6),
        "instrumented_seconds": round(live_best, 6),
        "overhead": round(overhead, 4),
        "max_overhead": _MAX_OVERHEAD,
        "metrics": snapshot,
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["registry", f"best of {_TRIALS} trials (s)"],
            [
                ["null (dark)", f"{dark_best:.4f}"],
                ["live (instrumented)", f"{live_best:.4f}"],
                ["overhead", f"{overhead:+.1%}"],
            ],
            title=(
                f"E15 — telemetry overhead on {_REPEATS} coverage "
                f"computations/trial"
            ),
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    assert overhead < _MAX_OVERHEAD, (
        f"instrumented coverage must stay within {_MAX_OVERHEAD:.0%} of dark, "
        f"measured {overhead:+.1%}"
    )
