"""E23 — explanation-ranked triage beats support ranking at corpus scale.

The tentpole claim: joining the audit trail with clinical state and
scoring each exception against mined explanation templates
(:mod:`repro.explain`) orders the privacy officer's review queue
*better* than the paper's implicit support ordering — legitimate
practice candidates surface first, injected misuse sinks — measured as
interpolated precision at every recall level and as average precision,
against the corpus generator's persisted ground-truth labels
(:mod:`repro.corpus`).

Protocol: generate a HIPAA-scale corpus (hundreds of rules over the
deep role/purpose/data hierarchies, break-the-glass surges, shift
handoffs, referral chains, and injected misuse — colluding ring, lone
snooper, off-hours export), mine candidates from the trace exactly as
the refinement loop would, rank them two ways, and grade both rankings
on the ``practice``-is-positive retrieval task.  Ground truth never
feeds the ranking — template weights are learned from the
regular-versus-exception split alone.

Also asserted: the corpus is byte-identical when regenerated from the
same seed (the determinism contract every digest in a bundle manifest
depends on).

Knobs: ``E23_DEPARTMENTS`` (default 6), ``E23_PATIENTS`` (default 300),
``E23_ROUNDS`` (default 5), ``E23_ACCESSES`` (default 10000, per
round), ``E23_PROTOCOL_RULES`` (default 60), ``E23_SEED`` (default
20260807).  Defaults produce >= 200 rules and >= 50k audit entries.  A
JSON record lands in ``benchmarks/out/e23_explanation_triage.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.corpus import (
    CorpusSpec,
    generate_corpus,
    save_corpus,
    simulate_corpus_trace,
)
from repro.experiments.reporting import format_table
from repro.explain import (
    ExplanationContext,
    average_precision,
    build_index,
    explanation_ranking,
    interpolated_precision,
    mine_template_weights,
    precision_recall_points,
    ranking_flags,
    support_ranking,
)
from repro.mining.patterns import MiningConfig
from repro.policy.grounding import Grounder
from repro.refinement.extract import extract_patterns
from repro.refinement.filtering import filter_practice
from repro.refinement.prune import prune_patterns

_DEPARTMENTS = int(os.environ.get("E23_DEPARTMENTS", "6"))
_PATIENTS = int(os.environ.get("E23_PATIENTS", "300"))
_ROUNDS = int(os.environ.get("E23_ROUNDS", "5"))
_ACCESSES = int(os.environ.get("E23_ACCESSES", "10000"))
_PROTOCOL_RULES = int(os.environ.get("E23_PROTOCOL_RULES", "60"))
_SEED = int(os.environ.get("E23_SEED", "20260807"))

_RECALL_GRID = tuple(level / 10 for level in range(11))
_MINING = MiningConfig(min_support=5, min_distinct_users=2)

_OUT_PATH = Path(__file__).parent / "out" / "e23_explanation_triage.json"


def _spec() -> CorpusSpec:
    return CorpusSpec(
        seed=_SEED,
        departments=_DEPARTMENTS,
        staff_per_role=3,
        patients=_PATIENTS,
        rounds=_ROUNDS,
        accesses_per_round=_ACCESSES,
        protocol_rules=_PROTOCOL_RULES,
        name="e23-corpus",
    )


def test_explanation_triage_dominates_support_ranking(tmp_path):
    spec = _spec()
    started = time.perf_counter()
    corpus = generate_corpus(spec)
    trace = simulate_corpus_trace(corpus)
    generate_seconds = time.perf_counter() - started

    # --- determinism: the same seed reproduces the bundle byte-for-byte
    digest_a = save_corpus(corpus, trace, tmp_path / "a")
    again = generate_corpus(spec)
    digest_b = save_corpus(again, simulate_corpus_trace(again), tmp_path / "b")
    assert digest_a == digest_b, "same seed must reproduce the corpus bundle"

    entries = len(tuple(trace.log))
    if "E23_ACCESSES" not in os.environ:
        assert len(corpus.rules) >= 200, "corpus must reach paper scale"
        assert entries >= 50_000, "trace must reach audit scale"

    # --- the triage task: mine candidates exactly as the loop would
    started = time.perf_counter()
    context = ExplanationContext(trace.state, trace.log)
    weights = mine_template_weights(trace.log, context)
    index = build_index(trace.log, context, weights)
    patterns = extract_patterns(filter_practice(trace.log), _MINING)
    prune = prune_patterns(
        patterns, corpus.store.policy(), corpus.vocabulary,
        Grounder(corpus.vocabulary),
    )
    explain_seconds = time.perf_counter() - started
    candidates = prune.useful
    assert candidates, "pruning must leave candidates to triage"

    explained = ranking_flags(explanation_ranking(candidates, index), index)
    supported = ranking_flags(support_ranking(candidates), index)
    explain_curve = interpolated_precision(
        precision_recall_points(explained), _RECALL_GRID
    )
    support_curve = interpolated_precision(
        precision_recall_points(supported), _RECALL_GRID
    )
    explain_ap = average_precision(explained)
    support_ap = average_precision(supported)

    rows = [
        [f"{level:.1f}", f"{e:.3f}", f"{s:.3f}", f"{e - s:+.3f}"]
        for level, e, s in zip(_RECALL_GRID, explain_curve, support_curve)
    ]
    emit(format_table(
        ["recall", "explanation", "support", "delta"],
        rows,
        title=(
            f"E23 interpolated precision ({len(corpus.rules)} rules, "
            f"{entries} entries, {len(candidates)} candidates, "
            f"AP {explain_ap:.4f} vs {support_ap:.4f})"
        ),
    ))

    # --- the headline: better precision at equal recall, strictly
    #     somewhere, never worse anywhere, and strictly better AP
    assert all(
        e >= s for e, s in zip(explain_curve, support_curve)
    ), "explanation curve must dominate the support curve everywhere"
    assert any(
        e > s for e, s in zip(explain_curve, support_curve)
    ), "dominance must be strict at some recall level"
    assert explain_ap > support_ap

    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps({
        "spec": spec.to_dict(),
        "digest": digest_a,
        "rules": len(corpus.rules),
        "entries": entries,
        "violations": trace.violations,
        "practices": trace.practices,
        "candidates": len(candidates),
        "recall_grid": list(_RECALL_GRID),
        "explanation_precision": list(explain_curve),
        "support_precision": list(support_curve),
        "explanation_ap": explain_ap,
        "support_ap": support_ap,
        "generate_seconds": round(generate_seconds, 3),
        "explain_seconds": round(explain_seconds, 3),
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
