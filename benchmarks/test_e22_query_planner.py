"""E22 — the plan-DAG query planner and secondary indexes.

DESIGN.md §15 commits the sqlmini planner to two promises:

1. **Index seeks beat full scans** — point (hash) and range (ordered)
   lookups over a 100k-row audit table run ≥10× faster than the same
   query executed as a filtered full scan, while returning byte-identical
   rows (seeks yield ascending positions = scan order).
2. **The miner's grouped scan got faster** — the Algorithm 5
   ``GROUP BY / HAVING`` statement through the compiled plan executor
   measurably outruns the pre-planner baseline (the preserved
   nested-loop, dict-environment :class:`ReferenceExecutor`), with
   byte-identical result rows, so ``refine()`` is faster for free.

Knobs: ``E22_ROWS`` (default 100000; the 10× floor is enforced only at
≥100k rows, smaller smoke runs enforce 3×), ``E22_REPEATS`` (default 5).
A JSON record lands in ``benchmarks/out/e22_query_planner.json``.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import Counter
from pathlib import Path

from benchmarks.conftest import emit
from repro.audit.schema import audit_table_schema, create_audit_indexes
from repro.experiments.reporting import format_table
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import build_analysis_sql
from repro.sqlmini.database import Database
from repro.sqlmini.parser import parse
from repro.sqlmini.reference import ReferenceExecutor

_ROWS = int(os.environ.get("E22_ROWS", "100000"))
_REPEATS = int(os.environ.get("E22_REPEATS", "5"))
_SEED = 22

_OUT_PATH = Path(__file__).parent / "out" / "e22_query_planner.json"

_USERS = 400
_DATA_ITEMS = 60
_PURPOSES = ("treatment", "billing", "research", "operations", "emergency")
_AUTHORIZED = ("nurse", "physician", "clerk", "auditor")


def _build_rows(rows: int) -> list[tuple]:
    """Deterministic synthetic audit rows with skewed hot keys."""
    rng = random.Random(_SEED)
    out = []
    for tick in range(rows):
        # triangular-ish skew: low user/data ids are hot, like real logs
        user = f"u{min(rng.randrange(_USERS), rng.randrange(_USERS)):04d}"
        data = f"record-{min(rng.randrange(_DATA_ITEMS), rng.randrange(_DATA_ITEMS)):03d}"
        out.append((
            tick,
            1,
            user,
            data,
            rng.choice(_PURPOSES),
            rng.choice(_AUTHORIZED),
            rng.randrange(2),
        ))
    return out


def _database(rows: list[tuple], indexed: bool) -> Database:
    db = Database("e22-indexed" if indexed else "e22-scan")
    table = db.create_table(audit_table_schema("audit_log"))
    for row in rows:
        table.insert(row)
    if indexed:
        create_audit_indexes(table)
    return db


def _best_seconds(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _compare(label: str, indexed: Database, scan: Database, sql: str) -> dict:
    """Time ``sql`` on both databases; assert byte-identical results."""
    indexed_rows = indexed.query(sql).rows
    scan_rows = scan.query(sql).rows
    assert indexed_rows == scan_rows, f"{label}: indexed result diverged"
    seek_seconds = _best_seconds(lambda: indexed.query(sql))
    scan_seconds = _best_seconds(lambda: scan.query(sql))
    return {
        "label": label,
        "sql": sql,
        "matching_rows": len(indexed_rows),
        "seek_seconds": seek_seconds,
        "scan_seconds": scan_seconds,
        "speedup": scan_seconds / max(seek_seconds, 1e-12),
        "plan": indexed.explain(sql),
    }


def test_e22_query_planner():
    rows = _build_rows(_ROWS)
    indexed = _database(rows, indexed=True)
    scan = _database(rows, indexed=False)

    point = _compare(
        "point (hash seek)", indexed, scan,
        "SELECT data, purpose FROM audit_log WHERE user = 'u0042'",
    )
    window = max(_ROWS // 100, 1)
    range_seek = _compare(
        "range (ordered seek)", indexed, scan,
        f"SELECT user, data FROM audit_log "
        f"WHERE time BETWEEN {_ROWS // 2} AND {_ROWS // 2 + window - 1}",
    )
    in_seek = _compare(
        "IN (hash seek)", indexed, scan,
        "SELECT data FROM audit_log WHERE user IN ('u0001', 'u0007', 'u0042')",
    )

    # the miner's grouped scan vs the pre-planner execution strategy
    miner_sql = build_analysis_sql(
        "audit_log", MiningConfig(min_support=10, min_distinct_users=2)
    )
    planned_result = indexed.query(miner_sql)
    reference = ReferenceExecutor(indexed)
    reference_result = reference.execute(parse(miner_sql))
    assert planned_result.columns == reference_result.columns
    assert planned_result.rows == reference_result.rows, (
        "miner GROUP BY diverged between planned and reference execution"
    )
    miner_repeats = max(2, _REPEATS - 2)
    planned_seconds = _best_seconds(
        lambda: indexed.query(miner_sql), miner_repeats
    )
    reference_seconds = _best_seconds(
        lambda: reference.execute(parse(miner_sql)), miner_repeats
    )
    miner_speedup = reference_seconds / max(planned_seconds, 1e-12)

    assert "IndexSeek" in point["plan"]
    assert "hash" in point["plan"]
    assert "IndexSeek" in range_seek["plan"]
    assert "ordered" in range_seek["plan"]
    assert "IndexSeek" in in_seek["plan"]

    lookups = [point, range_seek, in_seek]
    floor = 10.0 if _ROWS >= 100_000 else 3.0
    record = {
        "experiment": "E22",
        "rows": _ROWS,
        "repeats": _REPEATS,
        "speedup_floor": floor,
        "lookups": [
            {key: value for key, value in entry.items() if key != "plan"}
            for entry in lookups
        ],
        "miner": {
            "sql": miner_sql,
            "groups": len(planned_result.rows),
            "planned_seconds": planned_seconds,
            "reference_seconds": reference_seconds,
            "speedup": miner_speedup,
        },
    }
    _OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    _OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    emit(
        format_table(
            ["query", "rows out", "scan (ms)", "seek (ms)", "speedup"],
            [
                [entry["label"], entry["matching_rows"],
                 round(entry["scan_seconds"] * 1e3, 3),
                 round(entry["seek_seconds"] * 1e3, 3),
                 f"{entry['speedup']:.1f}x"]
                for entry in lookups
            ]
            + [[
                "miner GROUP BY", len(planned_result.rows),
                round(reference_seconds * 1e3, 3),
                round(planned_seconds * 1e3, 3),
                f"{miner_speedup:.1f}x",
            ]],
            title=f"E22 — query planner + indexes, {_ROWS} audit rows",
        )
        + f"\nJSON record: {_OUT_PATH}"
    )

    for entry in lookups:
        assert entry["speedup"] >= floor, (
            f"{entry['label']} reached only {entry['speedup']:.1f}x "
            f"(floor {floor}x at {_ROWS} rows)"
        )
    # grouped mining must beat the pre-planner baseline, not just tie it
    assert miner_speedup >= 1.2, (
        f"miner grouped scan only {miner_speedup:.2f}x over the "
        "pre-planner reference"
    )

    # sanity: the hot keys actually exist, so the seeks did real work
    users = Counter(row[2] for row in rows)
    assert users["u0042"] == point["matching_rows"]
