"""Tests for the compliance report."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog
from repro.audit.reports import compliance_report
from repro.errors import AuditError
from repro.experiments.harness import standard_loop_setup


@pytest.fixture(scope="module")
def report():
    setup = standard_loop_setup(accesses_per_round=1500, seed=5)
    log = setup.environment.simulate_round(0, setup.store)
    return compliance_report(setup.store.policy(), log, setup.vocabulary)


class TestComplianceReport:
    def test_headline_numbers_consistent(self, report):
        assert report.entries == 1500
        assert 0.0 <= report.set_coverage.ratio <= 1.0
        assert 0.0 <= report.entry_coverage.ratio <= 1.0
        assert 0.0 < report.exception_rate < 1.0

    def test_trend_has_about_ten_windows(self, report):
        assert 8 <= len(report.trend) <= 11

    def test_weakest_first_ordering(self, report):
        ratios = [item.entry_coverage for item in report.weakest_roles]
        assert ratios == sorted(ratios)

    def test_candidates_present_for_undocumented_workflow(self, report):
        assert report.candidates  # 60% of the workflow is undocumented

    def test_triage_splits_exceptions(self, report):
        classified = len(report.triage.practice) + len(report.triage.violations)
        assert classified > 0

    def test_render_contains_all_sections(self, report):
        text = report.render()
        for expected in (
            "PRIMA compliance report",
            "break-the-glass rate",
            "coverage trend",
            "least-covered roles",
            "least-covered data categories",
            "exception triage",
            "refinement candidates",
        ):
            assert expected in text

    def test_render_truncates_long_lists(self, report):
        text = report.render(max_items=1)
        if len(report.candidates) > 1:
            assert "more" in text

    def test_table1_report(self, vocabulary, fig3_policy, table1_log):
        result = compliance_report(
            fig3_policy, table1_log, vocabulary, window_size=5
        )
        assert result.entry_coverage.ratio == pytest.approx(0.3)
        assert len(result.candidates) == 1
        text = result.render()
        assert "referral" in text

    def test_empty_log_rejected(self, vocabulary, fig3_policy):
        with pytest.raises(AuditError):
            compliance_report(fig3_policy, AuditLog(), vocabulary)
