"""Unit tests for the violation/practice classifier."""

from __future__ import annotations

import pytest

from repro.audit.classify import ClassifierConfig, classify_exceptions
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessOp, AccessStatus


def _practice_log() -> AuditLog:
    """Three staff members repeating one combination (clear practice)."""
    log = AuditLog()
    for tick, user in enumerate(["a", "b", "c", "a", "b"], start=1):
        log.append(
            make_entry(
                tick, user, "referral", "registration", "nurse",
                status=AccessStatus.EXCEPTION, truth="practice",
            )
        )
    return log


def _snooper_log() -> AuditLog:
    """One user repeatedly pulling psychiatry data (clear violation)."""
    log = AuditLog()
    for tick in range(1, 5):
        log.append(
            make_entry(
                tick, "creep", "psychiatry", "telemarketing", "clerk",
                status=AccessStatus.EXCEPTION, truth="violation",
            )
        )
    return log


class TestVerdicts:
    def test_recurring_multiuser_combo_is_practice(self):
        report = classify_exceptions(_practice_log())
        assert len(report.practice) == 5
        assert report.violations == ()

    def test_single_user_combo_is_violation(self):
        report = classify_exceptions(_snooper_log())
        assert len(report.violations) == 4
        assert report.practice == ()

    def test_low_support_is_violation(self):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "insurance", "research", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        log.append(
            make_entry(2, "b", "insurance", "research", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        report = classify_exceptions(log, ClassifierConfig(min_support=3))
        assert len(report.violations) == 2

    def test_regular_echo_rescues_low_support(self):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.REGULAR)
        )
        log.append(
            make_entry(2, "b", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="practice")
        )
        report = classify_exceptions(log)
        assert len(report.practice) == 1

    def test_regular_echo_can_be_disabled(self):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.REGULAR)
        )
        log.append(
            make_entry(2, "b", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        config = ClassifierConfig(trust_regular_echo=False)
        report = classify_exceptions(log, config)
        assert len(report.violations) == 1

    def test_denied_requests_always_violations(self):
        log = AuditLog()
        log.append(
            make_entry(1, "x", "psychiatry", "research", "clerk",
                       op=AccessOp.DENY, truth="violation")
        )
        report = classify_exceptions(log)
        assert len(report.violations) == 1

    def test_evidence_recorded(self):
        report = classify_exceptions(_practice_log())
        item = report.classified[0]
        assert item.support == 5
        assert item.distinct_users == 3
        assert item.regular_echo is False


class TestScoring:
    def test_confusion_matrix(self):
        log = AuditLog()
        for entry in _practice_log():
            log.append(entry)
        for entry in _snooper_log():
            log.append(
                make_entry(entry.time + 10, entry.user, entry.data, entry.purpose,
                           entry.authorized, status=entry.status, truth=entry.truth)
            )
        report = classify_exceptions(log)
        confusion = report.confusion()
        assert confusion == {"tp": 4, "fp": 0, "tn": 5, "fn": 0}
        assert report.precision() == 1.0
        assert report.recall() == 1.0

    def test_unlabelled_entries_skipped_in_scoring(self):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION)  # no truth
        )
        report = classify_exceptions(log)
        assert report.confusion() == {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
        assert report.precision() == 0.0
        assert report.recall() == 0.0

    def test_table1_has_no_violations(self, table1_log):
        # Section 5 assumes "none of the exceptions ... are violations";
        # with the default thresholds the lone psychiatry and billing
        # one-offs look suspicious, so tune support down to the example's
        # scale and verify the dominant pattern classifies as practice.
        report = classify_exceptions(table1_log)
        practice_rules = {e.to_rule() for e in report.practice}
        from repro.policy.rule import Rule
        assert Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        ) in practice_rules
