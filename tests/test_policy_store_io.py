"""Tests for policy store persistence."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy import store_io
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore


def _store() -> PolicyStore:
    store = PolicyStore("hospital")
    store.add(
        Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
        added_by="cpo", origin="seed",
    )
    store.add(
        Rule.of(data="referral", purpose="registration", authorized="nurse"),
        added_by="loop-review", origin="refinement", note="support=12",
    )
    store.retire(
        Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
        added_by="cpo", note="superseded",
    )
    return store


class TestRoundTrip:
    def test_records_survive(self):
        original = _store()
        rebuilt = store_io.loads(store_io.dumps(original))
        assert rebuilt.name == original.name
        assert rebuilt.revision == original.revision
        assert set(rebuilt) == set(original)
        retired = [r for r in rebuilt.records(include_retired=True) if not r.active]
        assert len(retired) == 1

    def test_provenance_survives(self):
        rebuilt = store_io.loads(store_io.dumps(_store()))
        record = rebuilt.record_for(
            Rule.of(data="referral", purpose="registration", authorized="nurse")
        )
        assert record.origin == "refinement"
        assert record.note == "support=12"
        assert record.added_by == "loop-review"

    def test_history_survives(self):
        rebuilt = store_io.loads(store_io.dumps(_store()))
        actions = [event.action for event in rebuilt.history]
        assert actions == ["add", "add", "retire"]

    def test_store_remains_usable_after_load(self):
        rebuilt = store_io.loads(store_io.dumps(_store()))
        added = rebuilt.add(
            Rule.of(data="address", purpose="billing", authorized="clerk")
        )
        assert added is True
        assert rebuilt.revision == 4  # continues from the loaded counter

    def test_file_round_trip(self, tmp_path):
        path = store_io.save(_store(), tmp_path / "store.json")
        rebuilt = store_io.load(path)
        assert len(rebuilt) == 1

    def test_rules_serialised_as_dsl(self):
        text = store_io.dumps(_store())
        assert "ALLOW nurse TO USE referral FOR registration" in text


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(PolicyError):
            store_io.loads("{broken")

    def test_missing_fields(self):
        with pytest.raises(PolicyError):
            store_io.loads('{"name": "x"}')
