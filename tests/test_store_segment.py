"""Unit tests for segment files: writer, scanner, iterator."""

from __future__ import annotations

import pytest

from repro.audit.log import make_entry
from repro.errors import StoreError
from repro.store.codec import HEADER_SIZE, SEGMENT_HEADER
from repro.store.segment import (
    SegmentWriter,
    iter_segment,
    read_record_at,
    scan_segment,
    segment_name,
)


def _entries(count: int):
    return [
        make_entry(tick, f"user{tick % 3}", "referral", "registration", "nurse")
        for tick in range(1, count + 1)
    ]


class TestNaming:
    def test_zero_padded(self):
        assert segment_name(1) == "seg-00000001.seg"
        assert segment_name(42) == "seg-00000042.seg"


class TestWriterAndScan:
    def test_round_trip(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        written = _entries(5)
        for entry in written:
            writer.append(entry)
        writer.close()
        assert list(iter_segment(path)) == written

    def test_append_reports_offsets(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        offset, size = writer.append(_entries(1)[0])
        writer.close()
        assert offset == HEADER_SIZE
        assert size > 0
        with path.open("rb") as handle:
            assert read_record_at(handle, offset) == _entries(1)[0]

    def test_scan_tracks_time_bounds(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        for entry in _entries(4):
            writer.append(entry)
        writer.close()
        scan = scan_segment(path)
        assert not scan.torn
        assert (scan.first_time, scan.last_time) == (1, 4)
        assert scan.entries == 4
        assert scan.valid_bytes == path.stat().st_size

    def test_scan_flags_torn_tail(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        for entry in _entries(3):
            writer.append(entry)
        writer.close()
        intact = path.stat().st_size
        with path.open("ab") as handle:
            handle.write(b"\x99\x00\x00\x00\xde\xad\xbe\xefpartial")
        scan = scan_segment(path)
        assert scan.torn
        assert scan.entries == 3
        assert scan.valid_bytes == intact

    def test_scan_visit_callback_sees_offsets(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        offsets = [writer.append(entry)[0] for entry in _entries(3)]
        writer.close()
        seen: list[int] = []
        scan_segment(path, visit=lambda offset, entry: seen.append(offset))
        assert seen == offsets

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(b"NOPE" + SEGMENT_HEADER[4:])
        with pytest.raises(StoreError):
            scan_segment(path)

    def test_reopen_existing_appends(self, tmp_path):
        path = tmp_path / segment_name(1)
        writer = SegmentWriter(path, create=True)
        writer.append(_entries(1)[0])
        writer.close()
        size = path.stat().st_size
        writer = SegmentWriter(path, create=False, entries=1, size=size,
                               first_time=1, last_time=1)
        writer.append(make_entry(2, "tim", "referral", "registration", "nurse"))
        writer.close()
        assert [entry.time for entry in iter_segment(path)] == [1, 2]
