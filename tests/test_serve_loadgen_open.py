"""The open-loop load driver: histogram math and coordinated omission."""

from __future__ import annotations

import pytest

from repro.serve import (
    LatencyHistogram,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    run_load_open,
    saturation_sweep,
)
from repro.serve.loadgen import OpenLoadReport
from repro.workload.traces import demo_decision_payloads


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_records_land_in_geometric_buckets(self):
        hist = LatencyHistogram()
        for value in (0.5, 1.0, 2.0, 4.0, 8.0):
            hist.record(value)
        assert hist.count == 5
        assert hist.max == 8.0
        assert hist.quantile(1.0) == 8.0
        assert 0.4 <= hist.quantile(0.0) <= 0.6

    def test_quantile_error_is_bounded_by_bucket_width(self):
        hist = LatencyHistogram()
        values = [0.1 + 0.01 * i for i in range(1000)]
        for value in values:
            hist.record(value)
        exact = sorted(values)[int(0.9 * (len(values) - 1))]
        # geometric growth 1.25 bounds relative error to ~±12.5%
        assert abs(hist.quantile(0.9) - exact) / exact < 0.13

    def test_merge_equals_single_histogram(self):
        left, right, both = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for index in range(200):
            value = 0.05 * (index + 1)
            (left if index % 2 else right).record(value)
            both.record(value)
        left.merge(right)
        assert left.count == both.count
        assert left.sum == pytest.approx(both.sum)
        assert left.max == both.max
        for quantile in (0.5, 0.9, 0.99):
            assert left.quantile(quantile) == pytest.approx(
                both.quantile(quantile)
            )

    def test_dict_round_trip(self):
        hist = LatencyHistogram()
        for value in (0.2, 3.5, 700.0):
            hist.record(value)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.max == hist.max
        assert clone.quantile(0.5) == pytest.approx(hist.quantile(0.5))

    def test_negative_and_zero_latencies_clamp_to_first_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(-1.0)  # a behind-schedule send measured generously
        assert hist.count == 2


@pytest.fixture(scope="module")
def served():
    engine = build_demo_engine(rows=30, seed=7)
    srv = ServerThread(engine, ServerConfig(port=0)).start()
    try:
        yield srv
    finally:
        srv.stop()


class TestOpenLoop:
    def test_rejects_nonpositive_rate(self, served):
        with pytest.raises(ValueError):
            run_load_open(served.host, served.port, [{"op": "ping"}],
                          target_rps=0)

    def test_open_load_reports_schedule_and_latencies(self, served):
        payloads = demo_decision_payloads(80)
        report = run_load_open(
            served.host, served.port, payloads, target_rps=400.0, clients=4
        )
        assert isinstance(report, OpenLoadReport)
        assert report.scheduled == 80
        assert report.completed == 80
        assert report.errors == 0
        assert report.target_rps == 400.0
        assert report.seconds > 0
        assert sum(report.codes.values()) == 80
        assert report.histogram.count == 80
        assert report.histogram.quantile(0.99) >= report.histogram.quantile(0.5)
        assert "p99_ms" in report.summary()

    def test_latency_measured_from_intended_send_time(self, served):
        # an absurd target rate forces every send behind schedule: with
        # coordinated omission fixed, measured latency must include the
        # queueing delay (p99 >> a single request's service time) and the
        # driver must admit how often it fell behind
        payloads = demo_decision_payloads(120)
        report = run_load_open(
            served.host, served.port, payloads, target_rps=1_000_000.0,
            clients=2,
        )
        assert report.completed == 120
        assert report.late_sends > 0
        solo = run_load_open(
            served.host, served.port, demo_decision_payloads(10),
            target_rps=5.0, clients=1,
        )
        # the backlogged run's p99 carries wait time the solo run lacks
        assert report.histogram.quantile(0.99) > solo.histogram.quantile(0.05)

    def test_saturation_sweep_one_report_per_rate(self, served):
        payloads = demo_decision_payloads(30)
        reports = saturation_sweep(
            served.host, served.port, payloads, rates=(200.0, 400.0),
            clients=2,
        )
        assert [r.target_rps for r in reports] == [200.0, 400.0]
        assert all(r.completed == 30 for r in reports)
