"""Property-based tests for the sqlmini engine (hypothesis).

The engine's aggregates and clauses are checked against plain-Python
recomputations of the same quantity over the same rows.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlmini.database import Database
from repro.sqlmini.types import sort_key

names = st.sampled_from(["ann", "bob", "cid", "dee", "eve"])
groups = st.sampled_from(["er", "icu", "lab"])
amounts = st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000))

rows = st.lists(st.tuples(names, groups, amounts), min_size=0, max_size=40)


def _database(data) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (name TEXT, grp TEXT, amount INTEGER)")
    table = db.table("t")
    for row in data:
        table.insert(row)
    return db


class TestAggregateProperties:
    @settings(max_examples=60)
    @given(rows)
    def test_count_star_matches_len(self, data):
        db = _database(data)
        assert db.query("SELECT COUNT(*) FROM t").scalar() == len(data)

    @settings(max_examples=60)
    @given(rows)
    def test_sum_matches_python(self, data):
        db = _database(data)
        values = [amount for _, _, amount in data if amount is not None]
        expected = sum(values) if values else None
        assert db.query("SELECT SUM(amount) FROM t").scalar() == expected

    @settings(max_examples=60)
    @given(rows)
    def test_count_column_skips_nulls(self, data):
        db = _database(data)
        expected = sum(1 for _, _, amount in data if amount is not None)
        assert db.query("SELECT COUNT(amount) FROM t").scalar() == expected

    @settings(max_examples=60)
    @given(rows)
    def test_count_distinct_matches_set(self, data):
        db = _database(data)
        expected = len({name for name, _, _ in data})
        assert db.query("SELECT COUNT(DISTINCT name) FROM t").scalar() == expected

    @settings(max_examples=60)
    @given(rows)
    def test_min_max_match_python(self, data):
        db = _database(data)
        values = [amount for _, _, amount in data if amount is not None]
        row = db.query("SELECT MIN(amount), MAX(amount) FROM t").first()
        if values:
            assert row == (min(values), max(values))
        else:
            assert row == (None, None)

    @settings(max_examples=60)
    @given(rows)
    def test_group_counts_sum_to_total(self, data):
        db = _database(data)
        result = db.query("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp")
        assert sum(result.column("n")) == len(data)
        assert len(result) == len({grp for _, grp, _ in data})


class TestClauseProperties:
    @settings(max_examples=60)
    @given(rows, names)
    def test_where_equality_partition(self, data, needle):
        db = _database(data)
        hits = db.query(f"SELECT COUNT(*) FROM t WHERE name = '{needle}'").scalar()
        misses = db.query(f"SELECT COUNT(*) FROM t WHERE name <> '{needle}'").scalar()
        assert hits == sum(1 for name, _, _ in data if name == needle)
        assert hits + misses == len(data)  # name is never NULL here

    @settings(max_examples=60)
    @given(rows)
    def test_order_by_sorts_with_nulls_first(self, data):
        db = _database(data)
        ordered = db.query("SELECT amount FROM t ORDER BY amount").column("amount")
        assert ordered == sorted(
            (amount for _, _, amount in data), key=sort_key
        )

    @settings(max_examples=60)
    @given(rows)
    def test_distinct_matches_set_semantics(self, data):
        db = _database(data)
        result = db.query("SELECT DISTINCT name, grp FROM t")
        assert set(result.rows) == {(name, grp) for name, grp, _ in data}
        assert len(result) == len(set(result.rows))

    @settings(max_examples=60)
    @given(rows, st.integers(min_value=0, max_value=10))
    def test_limit_truncates(self, data, limit):
        db = _database(data)
        result = db.query(f"SELECT name FROM t LIMIT {limit}")
        assert len(result) == min(limit, len(data))

    @settings(max_examples=40)
    @given(rows)
    def test_union_all_doubles(self, data):
        db = _database(data)
        result = db.query("SELECT name FROM t UNION ALL SELECT name FROM t")
        assert len(result) == 2 * len(data)

    @settings(max_examples=40)
    @given(rows)
    def test_delete_then_count_zero(self, data):
        db = _database(data)
        removed = db.execute("DELETE FROM t")
        assert removed == len(data)
        assert db.query("SELECT COUNT(*) FROM t").scalar() == 0

    @settings(max_examples=40)
    @given(rows, st.integers(min_value=-5, max_value=5))
    def test_update_shifts_sum(self, data, delta):
        db = _database(data)
        values = [amount for _, _, amount in data if amount is not None]
        db.execute(f"UPDATE t SET amount = amount + {delta} WHERE amount IS NOT NULL")
        expected = sum(values) + delta * len(values) if values else None
        assert db.query("SELECT SUM(amount) FROM t").scalar() == expected
