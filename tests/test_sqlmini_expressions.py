"""Unit tests for expression evaluation (three-valued logic, LIKE, etc.)."""

from __future__ import annotations

import pytest

from repro.sqlmini.errors import SqlExecutionError, SqlPlanError
from repro.sqlmini.expressions import evaluate, to_bool
from repro.sqlmini.parser import parse_expression


def ev(text: str, env: dict | None = None):
    return evaluate(parse_expression(text), env or {})


class TestArithmetic:
    def test_basics(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("7 % 3") == 1
        assert ev("8 / 2") == 4.0
        assert ev("-(2 + 3)") == -5

    def test_null_propagates(self):
        assert ev("1 + NULL") is None
        assert ev("-x", {"x": None}) is None

    def test_division_by_zero(self):
        with pytest.raises(SqlExecutionError):
            ev("1 / 0")
        with pytest.raises(SqlExecutionError):
            ev("1 % 0")

    def test_arithmetic_on_text_rejected(self):
        with pytest.raises(SqlExecutionError):
            ev("'a' + 1")

    def test_unary_minus_on_text_rejected(self):
        with pytest.raises(SqlExecutionError):
            ev("-'a'")


class TestComparisons:
    def test_equality_and_ordering(self):
        assert ev("2 = 2") is True
        assert ev("2 <> 3") is True
        assert ev("2 < 3") is True
        assert ev("'abc' >= 'abb'") is True

    def test_null_comparisons_are_unknown(self):
        assert ev("NULL = NULL") is None
        assert ev("1 < NULL") is None

    def test_incomparable_types_are_unknown(self):
        assert ev("'1' = 1") is None


class TestBooleanLogic:
    def test_truth_tables_with_unknown(self):
        # SQL three-valued logic
        assert ev("FALSE AND NULL") is False
        assert ev("TRUE AND NULL") is None
        assert ev("TRUE OR NULL") is True
        assert ev("FALSE OR NULL") is None
        assert ev("NOT NULL") is None

    def test_plain_and_or_not(self):
        assert ev("TRUE AND TRUE") is True
        assert ev("TRUE OR FALSE") is True
        assert ev("NOT FALSE") is True

    def test_to_bool_rejects_non_boolean(self):
        with pytest.raises(SqlExecutionError):
            to_bool(5)

    def test_to_bool_none(self):
        assert to_bool(None) is None


class TestPredicates:
    def test_is_null(self):
        assert ev("x IS NULL", {"x": None}) is True
        assert ev("x IS NOT NULL", {"x": 1}) is True

    def test_in_list(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("5 IN (1, 2)") is False
        assert ev("5 NOT IN (1, 2)") is True

    def test_in_with_null_option_is_unknown_on_miss(self):
        assert ev("5 IN (1, NULL)") is None
        assert ev("1 IN (1, NULL)") is True
        assert ev("NULL IN (1)") is None

    def test_between(self):
        assert ev("2 BETWEEN 1 AND 3") is True
        assert ev("0 BETWEEN 1 AND 3") is False
        assert ev("0 NOT BETWEEN 1 AND 3") is True
        assert ev("NULL BETWEEN 1 AND 3") is None

    def test_like(self):
        assert ev("'referral' LIKE 'ref%'") is True
        assert ev("'referral' LIKE 'REF%'") is True  # case-insensitive
        assert ev("'abc' LIKE 'a_c'") is True
        assert ev("'abc' LIKE 'a_'") is False
        assert ev("NULL LIKE 'a%'") is None

    def test_like_escapes_regex_metacharacters(self):
        assert ev("'a.c' LIKE 'a.c'") is True
        assert ev("'abc' LIKE 'a.c'") is False

    def test_like_requires_text(self):
        with pytest.raises(SqlExecutionError):
            ev("1 LIKE 'a'")


class TestColumnsAndFunctions:
    def test_column_lookup(self):
        assert ev("a + b", {"a": 1, "b": 2}) == 3

    def test_qualified_column_lookup(self):
        assert evaluate(parse_expression("t.a"), {"t.a": 9}) == 9

    def test_unknown_column_raises(self):
        with pytest.raises(SqlPlanError):
            ev("missing")

    def test_scalar_functions(self):
        assert ev("LOWER('ABC')") == "abc"
        assert ev("UPPER('abc')") == "ABC"
        assert ev("LENGTH('abcd')") == 4
        assert ev("TRIM('  x ')") == "x"
        assert ev("ABS(-3)") == 3
        assert ev("ROUND(3.456, 1)") == 3.5
        assert ev("COALESCE(NULL, NULL, 7)") == 7
        assert ev("CONCAT('a', 1, 'b')") == "a1b"

    def test_scalar_functions_null_handling(self):
        assert ev("LOWER(NULL)") is None
        assert ev("CONCAT('a', NULL)") is None
        assert ev("COALESCE(NULL, NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(SqlPlanError):
            ev("FROBNICATE(1)")

    def test_function_arity_errors(self):
        with pytest.raises(SqlExecutionError):
            ev("LOWER('a', 'b')")
        with pytest.raises(SqlExecutionError):
            ev("ROUND(1, 2, 3)")

    def test_aggregate_outside_group_context_rejected(self):
        with pytest.raises(SqlPlanError):
            ev("COUNT(*)")


class TestReplacements:
    def test_replacements_shortcircuit_nodes(self):
        expr = parse_expression("COUNT(*) + x")
        count_node = expr.left
        result = evaluate(expr, {"x": 1}, {count_node: 41})
        assert result == 42
