"""Unit tests for audit logs."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AuditError
from repro.policy.policy import PolicySource
from repro.policy.rule import Rule
from repro.sqlmini.database import Database


class TestAppendOrdering:
    def test_times_must_be_non_decreasing(self):
        log = AuditLog()
        log.append(make_entry(1, "a", "referral", "treatment", "nurse"))
        log.append(make_entry(1, "b", "referral", "treatment", "nurse"))
        with pytest.raises(AuditError):
            log.append(make_entry(0, "c", "referral", "treatment", "nurse"))

    def test_rejects_non_entries(self):
        with pytest.raises(AuditError):
            AuditLog().append("nope")  # type: ignore[arg-type]

    def test_len_iter_getitem(self, table1_log):
        assert len(table1_log) == 10
        assert table1_log[0].user == "john"
        assert [e.time for e in table1_log] == list(range(1, 11))


class TestSlicing:
    def test_window_is_half_open(self, table1_log):
        window = table1_log.window(3, 7)
        assert [e.time for e in window] == [3, 4, 5, 6]

    def test_exceptions_subset(self, table1_log):
        # t3, t4, t6, t7, t8, t9, t10
        assert len(table1_log.exceptions()) == 7

    def test_regular_subset(self, table1_log):
        assert len(table1_log.regular()) == 3

    def test_denials_subset(self, table1_log):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "psychiatry", "research", "clerk", op=AccessOp.DENY)
        )
        log.append(make_entry(2, "b", "referral", "treatment", "nurse"))
        assert len(log.denials()) == 1

    def test_where_preserves_order(self, table1_log):
        marks = table1_log.where(lambda e: e.user == "mark")
        assert [e.time for e in marks] == [3, 7, 10]


class TestStatistics:
    def test_distinct_users(self, table1_log):
        assert table1_log.distinct_users() == (
            "bill", "bob", "jason", "john", "mark", "sarah", "tim",
        )

    def test_time_range(self, table1_log):
        assert table1_log.time_range() == (1, 10)

    def test_time_range_empty_raises(self):
        with pytest.raises(AuditError):
            AuditLog().time_range()

    def test_exception_rate(self, table1_log):
        assert table1_log.exception_rate() == pytest.approx(0.7)

    def test_exception_rate_no_allowed_raises(self):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse", op=AccessOp.DENY)
        )
        with pytest.raises(AuditError):
            log.exception_rate()

    def test_rule_histogram(self, table1_log):
        histogram = table1_log.rule_histogram()
        key = Rule.of(data="referral", purpose="registration", authorized="nurse")
        assert histogram[key] == 5


class TestConversions:
    def test_to_policy_preserves_duplicates(self, table1_log):
        policy = table1_log.to_policy()
        assert policy.cardinality == 10
        assert policy.source is PolicySource.AUDIT_LOG

    def test_to_table_materialises_rows(self, table1_log):
        db = Database()
        table = table1_log.to_table(db, "audit")
        assert len(table) == 10
        count = db.query(
            "SELECT COUNT(*) FROM audit WHERE status = 0"
        ).scalar()
        assert count == 7

    def test_make_entry_defaults(self):
        entry = make_entry(5, "u", "referral", "treatment", "nurse")
        assert entry.op is AccessOp.ALLOW
        assert entry.status is AccessStatus.REGULAR


class TestExtendAtomicity:
    def _seed(self) -> AuditLog:
        log = AuditLog()
        log.append(make_entry(5, "u", "referral", "treatment", "nurse"))
        return log

    def test_extend_appends_valid_batch(self):
        log = self._seed()
        log.extend(
            [
                make_entry(6, "v", "referral", "treatment", "nurse"),
                make_entry(6, "w", "labs", "treatment", "doctor"),
            ]
        )
        assert [e.time for e in log] == [5, 6, 6]

    def test_time_violation_mid_batch_leaves_log_unchanged(self):
        log = self._seed()
        before = log.entries
        batch = [
            make_entry(7, "v", "referral", "treatment", "nurse"),
            make_entry(3, "w", "labs", "treatment", "doctor"),  # goes back in time
            make_entry(9, "x", "labs", "treatment", "doctor"),
        ]
        with pytest.raises(AuditError):
            log.extend(batch)
        assert log.entries == before
        # the log still accepts entries from its original last time onward
        log.append(make_entry(5, "y", "referral", "treatment", "nurse"))
        assert len(log) == 2

    def test_non_entry_mid_batch_leaves_log_unchanged(self):
        log = self._seed()
        before = log.entries
        with pytest.raises(AuditError):
            log.extend(
                [make_entry(8, "v", "referral", "treatment", "nurse"), "not-an-entry"]
            )
        assert log.entries == before

    def test_batch_validated_against_current_tail(self):
        log = self._seed()  # last time = 5
        before = log.entries
        with pytest.raises(AuditError):
            log.extend([make_entry(2, "v", "referral", "treatment", "nurse")])
        assert log.entries == before

    def test_generator_batches_are_atomic_too(self):
        log = self._seed()
        before = log.entries

        def bad():
            yield make_entry(6, "v", "referral", "treatment", "nurse")
            yield make_entry(1, "w", "labs", "treatment", "doctor")

        with pytest.raises(AuditError):
            log.extend(bad())
        assert log.entries == before
