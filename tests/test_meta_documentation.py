"""Meta tests: documentation and API-surface hygiene.

The deliverable promises doc comments on every public item; these tests
make that promise mechanical.  Every module under ``repro`` must carry a
module docstring, every public class and function a docstring, and every
package ``__init__`` must export exactly what its ``__all__`` declares.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented: list[str] = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )


@pytest.mark.parametrize(
    "module",
    [m for m in MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_dunder_all_entries_resolve(module):
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ names missing: {missing}"


def test_every_package_has_dunder_all():
    packages = [m for m in MODULES if hasattr(m, "__path__")]
    without = [p.__name__ for p in packages if not hasattr(p, "__all__")]
    assert without == [], f"packages without __all__: {without}"
