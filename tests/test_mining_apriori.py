"""Unit tests for the Apriori miner."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import MiningError
from repro.mining.apriori import (
    AprioriPatternMiner,
    apriori,
    transactions_from_log,
)
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.refinement.filtering import filter_practice


def _itemset(*pairs):
    return frozenset(pairs)


class TestApriori:
    def test_simple_frequent_sets(self):
        transactions = [
            _itemset(("a", "1"), ("b", "1")),
            _itemset(("a", "1"), ("b", "1")),
            _itemset(("a", "1"), ("b", "2")),
        ]
        found = {fi.items: fi.support for fi in apriori(transactions, 2)}
        assert found[_itemset(("a", "1"))] == 3
        assert found[_itemset(("b", "1"))] == 2
        assert found[_itemset(("a", "1"), ("b", "1"))] == 2
        assert _itemset(("b", "2")) not in found

    def test_empty_transactions(self):
        assert apriori([], 1) == ()

    def test_min_support_validated(self):
        with pytest.raises(MiningError):
            apriori([_itemset(("a", "1"))], 0)

    def test_max_size_caps_levels(self):
        transactions = [_itemset(("a", "1"), ("b", "1"), ("c", "1"))] * 3
        found = apriori(transactions, 2, max_size=2)
        assert max(fi.size for fi in found) == 2

    def test_support_anti_monotone(self):
        transactions = [
            _itemset(("a", str(i % 2)), ("b", str(i % 3)), ("c", "1"))
            for i in range(30)
        ]
        found = apriori(transactions, 3)
        support = {fi.items: fi.support for fi in found}
        for items, count in support.items():
            for item in items:
                subset = items - {item}
                if subset:
                    assert support[subset] >= count

    def test_same_attribute_pairs_never_generated(self):
        transactions = [
            _itemset(("a", "1"), ("b", "1")),
            _itemset(("a", "2"), ("b", "1")),
        ] * 3
        found = apriori(transactions, 2)
        for fi in found:
            attributes = [attr for attr, _ in fi.items]
            assert len(attributes) == len(set(attributes))


class TestTransactions:
    def test_transactions_from_log(self, table1_log):
        transactions = transactions_from_log(
            table1_log, ("data", "purpose", "authorized")
        )
        assert len(transactions) == 10
        assert transactions[0] == _itemset(
            ("data", "prescription"), ("purpose", "treatment"), ("authorized", "nurse")
        )


class TestMinerProtocol:
    def test_agrees_with_sql_miner_on_table1(self, table1_log):
        practice = filter_practice(table1_log)
        config = MiningConfig()
        sql_patterns = SqlPatternMiner().mine(practice, config)
        apriori_patterns = AprioriPatternMiner().mine(practice, config)
        assert {p.rule for p in sql_patterns} == {p.rule for p in apriori_patterns}
        assert sql_patterns[0].support == apriori_patterns[0].support
        assert sql_patterns[0].distinct_users == apriori_patterns[0].distinct_users

    def test_empty_log(self):
        assert AprioriPatternMiner().mine(AuditLog(), MiningConfig()) == ()
        assert AprioriPatternMiner().correlations(AuditLog(), MiningConfig()) == ()

    def test_distinct_user_filter(self, table1_log):
        practice = filter_practice(table1_log)
        assert not AprioriPatternMiner().mine(
            practice, MiningConfig(min_distinct_users=4)
        )

    def test_correlations_exclude_full_width_and_singletons(self, table1_log):
        practice = filter_practice(table1_log)
        correlations = AprioriPatternMiner().correlations(
            practice, MiningConfig(min_support=2)
        )
        assert correlations  # pairs exist
        widths = {c.size for c in correlations}
        assert widths <= {2}

    def test_finds_cross_role_correlation_sql_misses(self):
        # the Section 5 future-work claim, in miniature
        log = AuditLog()
        tick = 1
        for role in ("nurse", "registrar", "clerk"):
            for index in range(3):  # 3 < f=5 per role, 9 >= 5 for the pair
                log.append(
                    make_entry(tick, f"{role}_{index}", "referral", "registration",
                               role, status=AccessStatus.EXCEPTION)
                )
                tick += 1
        config = MiningConfig(min_support=5)
        assert SqlPatternMiner().mine(log, config) == ()
        correlations = AprioriPatternMiner().correlations(log, config)
        pair = frozenset({("data", "referral"), ("purpose", "registration")})
        assert any(c.items == pair and c.support == 9 for c in correlations)

    def test_frequent_itemset_to_rule(self, table1_log):
        practice = filter_practice(table1_log)
        patterns = AprioriPatternMiner().mine(practice, MiningConfig())
        rule = patterns[0].rule
        assert rule.value_of("data") == "referral"
        assert rule.cardinality == 3
