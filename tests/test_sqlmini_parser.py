"""Unit tests for the SQL parser."""

from __future__ import annotations

import pytest

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlParseError
from repro.sqlmini.parser import parse, parse_expression


class TestSelect:
    def test_minimal(self):
        stmt = parse("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.table == "t"
        assert stmt.items[0].expr == ast.ColumnRef("a")

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_table_alias(self):
        assert parse("SELECT a FROM t AS u").table_alias == "u"
        assert parse("SELECT a FROM t u").table_alias == "u"

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) c FROM t WHERE b = 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY c DESC, a ASC LIMIT 7"
        )
        assert stmt.where is not None
        assert stmt.group_by == (ast.ColumnRef("a"),)
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 7

    def test_join(self):
        stmt = parse("SELECT a FROM t INNER JOIN u ON t.id = u.id")
        assert stmt.joins[0].table == "u"
        assert isinstance(stmt.joins[0].condition, ast.BinaryOp)

    def test_join_without_inner_keyword(self):
        assert parse("SELECT a FROM t JOIN u x ON t.id = x.id").joins[0].alias == "x"

    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(stmt, ast.UnionAll)
        assert len(stmt.selects) == 2

    def test_union_requires_all(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t UNION SELECT a FROM u")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_trailing_semicolon_tolerated(self):
        assert isinstance(parse("SELECT a FROM t;"), ast.Select)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t garbage extra")


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_comparison_operators(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            expr = parse_expression(f"a {op} 1")
            assert expr.op == op

    def test_bang_equals_normalised(self):
        assert parse_expression("a != 1").op == "<>"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a IS NULL") == ast.IsNull(ast.ColumnRef("a"))
        assert parse_expression("a IS NOT NULL") == ast.IsNull(
            ast.ColumnRef("a"), negated=True
        )

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.options) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated is True

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        assert not expr.negated

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated is True

    def test_like(self):
        expr = parse_expression("a LIKE 'x%'")
        assert expr.op == "LIKE"

    def test_not_like_wraps_in_not(self):
        expr = parse_expression("a NOT LIKE 'x%'")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)
        assert parse_expression("3.5") == ast.Literal(3.5)
        assert parse_expression("'s'") == ast.Literal("s")

    def test_unary_minus_and_plus(self):
        assert parse_expression("-a") == ast.UnaryOp("-", ast.ColumnRef("a"))
        assert parse_expression("+5") == ast.Literal(5)

    def test_qualified_column(self):
        assert parse_expression("t.col") == ast.ColumnRef("col", table="t")

    def test_function_call(self):
        expr = parse_expression("LOWER(a)")
        assert expr == ast.FuncCall("lower", (ast.ColumnRef("a"),))

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == ast.FuncCall("count", (ast.Star(),))

    def test_count_distinct_with_parenthesised_arg(self):
        # the paper writes COUNT(DISTINCT(User))
        expr = parse_expression("COUNT(DISTINCT(user))")
        assert expr == ast.FuncCall("count", (ast.ColumnRef("user"),), distinct=True)

    def test_zero_arg_function(self):
        assert parse_expression("f()") == ast.FuncCall("f", ())


class TestDdlDml:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a INTEGER NOT NULL, b TEXT)")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null is True
        assert stmt.columns[1].not_null is False

    def test_insert_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2
        assert stmt.columns == ()

    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)
        assert stmt.where is not None

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_unsupported_statement(self):
        with pytest.raises(SqlParseError):
            parse("DROP TABLE t")


class TestAstHelpers:
    def test_collect_aggregates(self):
        expr = parse_expression("COUNT(*) > 5 AND COUNT(DISTINCT u) >= 2")
        calls = ast.collect_aggregates(expr)
        assert len(calls) == 2
        assert {c.distinct for c in calls} == {True, False}

    def test_contains_aggregate_negative(self):
        assert not ast.contains_aggregate(parse_expression("a + LOWER(b)"))

    def test_collect_columns(self):
        expr = parse_expression("a + LOWER(t.b) BETWEEN c AND d")
        names = {str(ref) for ref in ast.collect_columns(expr)}
        assert names == {"a", "t.b", "c", "d"}

    def test_select_str_round_trips_through_parser(self):
        sql = (
            "SELECT data, COUNT(*) AS freq FROM audit WHERE status = 0 "
            "GROUP BY data HAVING COUNT(*) >= 5 ORDER BY freq DESC LIMIT 3"
        )
        stmt = parse(sql)
        reparsed = parse(str(stmt))
        assert reparsed == stmt
