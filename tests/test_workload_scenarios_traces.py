"""Tests for canned scenarios and trace bundles."""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessStatus
from repro.errors import WorkloadError
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import build_hospital
from repro.workload.scenarios import (
    expected_table1_pattern,
    figure3_audit_policy,
    figure3_policy,
    figure3_policy_store,
    table1_audit_log,
)
from repro.workload.traces import load_trace, save_trace
from repro.policy.store import PolicyStore


class TestScenarios:
    def test_figure3_store_has_three_composite_rules(self, vocabulary):
        policy = figure3_policy()
        assert policy.cardinality == 3
        assert not policy.is_ground(vocabulary)

    def test_figure3_audit_policy_is_ground_with_six_rules(self, vocabulary):
        audit = figure3_audit_policy()
        assert audit.cardinality == 6
        assert audit.is_ground(vocabulary)

    def test_store_and_policy_agree(self):
        assert set(figure3_policy_store()) == set(figure3_policy())

    def test_table1_is_verbatim(self, table1_log):
        assert len(table1_log) == 10
        t4 = table1_log[3]
        assert (t4.user, t4.data, t4.authorized) == ("sarah", "psychiatry", "doctor")
        assert t4.status is AccessStatus.EXCEPTION
        statuses = [int(e.status) for e in table1_log]
        assert statuses == [1, 1, 0, 0, 1, 0, 0, 0, 0, 0]

    def test_table1_exceptions_labelled_practice(self, table1_log):
        for entry in table1_log:
            if entry.is_exception:
                assert entry.truth == "practice"
            else:
                assert entry.truth == ""

    def test_expected_pattern(self):
        pattern = expected_table1_pattern()
        assert pattern.value_of("data") == "referral"


class TestTraces:
    def test_round_trip(self, tmp_path, vocabulary):
        hospital = build_hospital(vocabulary, departments=1, staff_per_role=2, seed=1)
        config = WorkloadConfig(accesses_per_round=100, seed=1)
        log = SyntheticHospitalEnvironment(hospital, config).simulate_round(
            0, PolicyStore()
        )
        save_trace(log, config, tmp_path, "demo")
        loaded_log, loaded_config = load_trace(tmp_path, "demo")
        assert loaded_log.entries == log.entries
        assert loaded_config == config

    def test_truth_labels_survive(self, tmp_path, vocabulary):
        hospital = build_hospital(vocabulary, departments=1, staff_per_role=2, seed=1)
        config = WorkloadConfig(accesses_per_round=50, violation_rate=0.2, seed=1)
        log = SyntheticHospitalEnvironment(hospital, config).simulate_round(
            0, PolicyStore()
        )
        save_trace(log, config, tmp_path, "demo")
        loaded, _ = load_trace(tmp_path, "demo")
        assert [e.truth for e in loaded] == [e.truth for e in log]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path, "ghost")

    def test_corrupt_count_detected(self, tmp_path, vocabulary):
        hospital = build_hospital(vocabulary, departments=1, staff_per_role=2, seed=1)
        config = WorkloadConfig(accesses_per_round=10, seed=1)
        log = SyntheticHospitalEnvironment(hospital, config).simulate_round(
            0, PolicyStore()
        )
        manifest, entries = save_trace(log, config, tmp_path, "demo")
        text = entries.read_text().splitlines()
        entries.write_text("\n".join(text[:-1]) + "\n", encoding="utf-8")
        with pytest.raises(WorkloadError, match="corrupt"):
            load_trace(tmp_path, "demo")
