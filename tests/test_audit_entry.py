"""Unit tests for audit entries."""

from __future__ import annotations

import pytest

from repro.audit.entry import AuditEntry
from repro.audit.schema import AccessOp, AccessStatus, audit_table_schema
from repro.errors import AuditError
from repro.policy.rule import Rule


def _entry(**overrides) -> AuditEntry:
    base = dict(
        time=1,
        op=AccessOp.ALLOW,
        user="Mark",
        data="Referral",
        purpose="Registration",
        authorized="Nurse",
        status=AccessStatus.EXCEPTION,
    )
    base.update(overrides)
    return AuditEntry(**base)


class TestConstruction:
    def test_canonicalises_text_fields(self):
        entry = _entry(user=" Mark ", data="Birth Date")
        assert entry.user == "mark"
        assert entry.data == "birth_date"

    def test_int_flags_coerced_to_enums(self):
        entry = _entry(op=1, status=0)
        assert entry.op is AccessOp.ALLOW
        assert entry.status is AccessStatus.EXCEPTION

    def test_invalid_flag_rejected(self):
        with pytest.raises(ValueError):
            _entry(op=7)

    def test_negative_time_rejected(self):
        with pytest.raises(AuditError):
            _entry(time=-1)

    def test_empty_field_rejected(self):
        with pytest.raises(AuditError):
            _entry(user="  ")

    def test_predicates(self):
        assert _entry().is_exception
        assert _entry().is_allowed
        assert not _entry(status=AccessStatus.REGULAR).is_exception
        assert not _entry(op=AccessOp.DENY).is_allowed

    def test_truth_excluded_from_equality(self):
        assert _entry(truth="practice") == _entry(truth="")


class TestConversions:
    def test_to_rule_default_attributes(self):
        rule = _entry().to_rule()
        assert rule == Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        )

    def test_to_rule_custom_attributes(self):
        rule = _entry().to_rule(("data", "purpose"))
        assert rule.cardinality == 2

    def test_to_rule_rejects_unknown_attribute(self):
        with pytest.raises(AuditError):
            _entry().to_rule(("data", "bogus"))

    def test_row_round_trip(self):
        entry = _entry()
        assert AuditEntry.from_row(entry.as_row()) == entry

    def test_row_matches_table_schema(self):
        schema = audit_table_schema()
        assert schema.validate_row(_entry().as_row())

    def test_from_row_arity_checked(self):
        with pytest.raises(AuditError):
            AuditEntry.from_row((1, 2, 3))

    def test_dict_round_trip_keeps_truth(self):
        entry = _entry(truth="violation")
        payload = entry.to_dict()
        payload["truth"] = entry.truth
        rebuilt = AuditEntry.from_dict(payload)
        assert rebuilt == entry
        assert rebuilt.truth == "violation"

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(AuditError):
            AuditEntry.from_dict({"time": 1})

    def test_with_truth(self):
        labelled = _entry().with_truth("practice")
        assert labelled.truth == "practice"
        assert labelled == _entry()
