"""Unit tests for repro.policy.grounding (Definition 8, Range algebra)."""

from __future__ import annotations

from repro.policy.grounding import Grounder, Range, policy_range
from repro.policy.policy import Policy
from repro.policy.rule import Rule


def _rule(data: str, purpose: str = "treatment", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestRange:
    def test_cardinality_and_membership(self, vocabulary, fig3_policy):
        rng = policy_range(fig3_policy, vocabulary)
        assert rng.cardinality == 8
        assert _rule("referral") in rng
        assert _rule("psychiatry") not in rng

    def test_set_algebra(self):
        a = Range([_rule("a_data"), _rule("b_data")])
        b = Range([_rule("b_data"), _rule("c_data")])
        assert (a & b).cardinality == 1
        assert (a | b).cardinality == 3
        assert (a - b).rules() == (_rule("a_data"),)
        assert Range([_rule("b_data")]) <= a

    def test_equality_and_hash(self):
        a = Range([_rule("a_data")])
        b = Range([_rule("a_data")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Range([_rule("b_data")])

    def test_rules_is_deterministic(self):
        rng = Range([_rule("b_data"), _rule("a_data"), _rule("c_data")])
        assert rng.rules() == rng.rules()
        values = [rule.value_of("data") for rule in rng.rules()]
        assert values == sorted(values)

    def test_iteration(self):
        rng = Range([_rule("a_data")])
        assert list(rng) == [_rule("a_data")]


class TestGrounder:
    def test_memoisation_counts_hits(self, vocabulary):
        grounder = Grounder(vocabulary)
        rule = _rule("demographic", "billing", "clerk")
        grounder.ground_rules(rule)
        grounder.ground_rules(rule)
        assert grounder.misses == 1
        assert grounder.hits == 1

    def test_range_of_accepts_policy_or_iterable(self, vocabulary, fig3_policy):
        grounder = Grounder(vocabulary)
        from_policy = grounder.range_of(fig3_policy)
        from_iterable = grounder.range_of(list(fig3_policy))
        assert from_policy == from_iterable

    def test_memoised_matches_naive(self, vocabulary, fig3_policy):
        grounder = Grounder(vocabulary)
        memoised = grounder.range_of(fig3_policy)
        naive = Range(
            ground
            for rule in fig3_policy
            for ground in rule.ground_rules(vocabulary)
        )
        assert memoised == naive

    def test_clear_resets_cache(self, vocabulary):
        grounder = Grounder(vocabulary)
        grounder.ground_rules(_rule("demographic", "billing", "clerk"))
        grounder.clear()
        assert grounder.misses == 0
        grounder.ground_rules(_rule("demographic", "billing", "clerk"))
        assert grounder.misses == 1

    def test_range_of_duplicate_rules_is_set(self, vocabulary):
        policy = Policy([_rule("referral"), _rule("referral")])
        assert Grounder(vocabulary).range_of(policy).cardinality == 1
