"""Unit tests for repro.policy.grounding (Definition 8, Range algebra)."""

from __future__ import annotations

import pytest

from repro.errors import CoverageError, PolicyError
from repro.policy.grounding import Grounder, Range, policy_range
from repro.policy.interning import RuleInterner, iter_bits
from repro.policy.policy import Policy
from repro.policy.rule import Rule


def _rule(data: str, purpose: str = "treatment", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestRange:
    def test_cardinality_and_membership(self, vocabulary, fig3_policy):
        rng = policy_range(fig3_policy, vocabulary)
        assert rng.cardinality == 8
        assert _rule("referral") in rng
        assert _rule("psychiatry") not in rng

    def test_set_algebra(self):
        a = Range([_rule("a_data"), _rule("b_data")])
        b = Range([_rule("b_data"), _rule("c_data")])
        assert (a & b).cardinality == 1
        assert (a | b).cardinality == 3
        assert (a - b).rules() == (_rule("a_data"),)
        assert Range([_rule("b_data")]) <= a

    def test_equality_and_hash(self):
        a = Range([_rule("a_data")])
        b = Range([_rule("a_data")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Range([_rule("b_data")])

    def test_rules_is_deterministic(self):
        rng = Range([_rule("b_data"), _rule("a_data"), _rule("c_data")])
        assert rng.rules() == rng.rules()
        values = [rule.value_of("data") for rule in rng.rules()]
        assert values == sorted(values)

    def test_iteration(self):
        rng = Range([_rule("a_data")])
        assert list(rng) == [_rule("a_data")]


class TestGrounder:
    def test_memoisation_counts_hits(self, vocabulary):
        grounder = Grounder(vocabulary)
        rule = _rule("demographic", "billing", "clerk")
        grounder.ground_rules(rule)
        grounder.ground_rules(rule)
        assert grounder.misses == 1
        assert grounder.hits == 1

    def test_range_of_accepts_policy_or_iterable(self, vocabulary, fig3_policy):
        grounder = Grounder(vocabulary)
        from_policy = grounder.range_of(fig3_policy)
        from_iterable = grounder.range_of(list(fig3_policy))
        assert from_policy == from_iterable

    def test_memoised_matches_naive(self, vocabulary, fig3_policy):
        grounder = Grounder(vocabulary)
        memoised = grounder.range_of(fig3_policy)
        naive = Range(
            ground
            for rule in fig3_policy
            for ground in rule.ground_rules(vocabulary)
        )
        assert memoised == naive

    def test_clear_resets_cache(self, vocabulary):
        grounder = Grounder(vocabulary)
        grounder.ground_rules(_rule("demographic", "billing", "clerk"))
        grounder.clear()
        assert grounder.misses == 0
        grounder.ground_rules(_rule("demographic", "billing", "clerk"))
        assert grounder.misses == 1

    def test_range_of_duplicate_rules_is_set(self, vocabulary):
        policy = Policy([_rule("referral"), _rule("referral")])
        assert Grounder(vocabulary).range_of(policy).cardinality == 1


class TestRuleInterner:
    def test_ids_are_dense_and_stable(self):
        interner = RuleInterner()
        first = interner.intern(_rule("a_data"))
        second = interner.intern(_rule("b_data"))
        assert (first, second) == (0, 1)
        assert interner.intern(_rule("a_data")) == 0
        assert len(interner) == 2
        assert interner.rule_for(1) == _rule("b_data")

    def test_id_of_does_not_intern(self):
        interner = RuleInterner()
        assert interner.id_of(_rule("a_data")) is None
        assert len(interner) == 0

    def test_mask_roundtrip(self):
        interner = RuleInterner()
        rules = [_rule("a_data"), _rule("b_data"), _rule("c_data")]
        mask = interner.mask_of(rules)
        assert mask == 0b111
        assert list(interner.rules_of(0b101)) == [rules[0], rules[2]]
        assert list(iter_bits(0b1010)) == [1, 3]

    def test_shared_per_vocabulary(self, vocabulary):
        assert Grounder(vocabulary).interner is Grounder(vocabulary).interner

    def test_ranges_from_one_vocabulary_share_interner(self, vocabulary, fig3_policy):
        range_a = Grounder(vocabulary).range_of(fig3_policy)
        range_b = Grounder(vocabulary).range_of(fig3_policy)
        assert range_a.interner is range_b.interner
        assert range_a == range_b

    def test_from_mask_rejects_unassigned_ids(self):
        interner = RuleInterner()
        interner.intern(_rule("a_data"))
        with pytest.raises(PolicyError):
            Range.from_mask(0b10, interner)


class TestStaleCacheHazard:
    def test_vocabulary_mutation_raises_coverage_error(self, vocabulary):
        grounder = Grounder(vocabulary)
        composite = _rule("demographic")
        before = grounder.ground_rules(composite)
        assert len(before) == 4
        vocabulary.tree_for("data").add("middle_name", parent="demographic")
        with pytest.raises(CoverageError, match="mutated"):
            grounder.ground_rules(composite)
        with pytest.raises(CoverageError, match="mutated"):
            grounder.ground_mask(composite)
        with pytest.raises(CoverageError, match="mutated"):
            grounder.range_of([composite])

    def test_clear_recovers_with_fresh_expansions(self, vocabulary):
        grounder = Grounder(vocabulary)
        composite = _rule("demographic")
        grounder.ground_rules(composite)
        vocabulary.tree_for("data").add("middle_name", parent="demographic")
        grounder.clear()
        refreshed = grounder.ground_rules(composite)
        assert len(refreshed) == 5  # the new leaf is in the expansion
        assert _rule("middle_name") in refreshed

    def test_adding_a_whole_tree_is_detected(self, vocabulary):
        grounder = Grounder(vocabulary)
        grounder.ground_rules(_rule("referral"))
        vocabulary.new_tree("location")
        with pytest.raises(CoverageError):
            grounder.ground_rules(_rule("referral"))

    def test_version_is_monotonic(self, vocabulary):
        before = vocabulary.version
        vocabulary.tree_for("data").add("scan_results", parent="medical_records")
        middle = vocabulary.version
        vocabulary.new_tree("device")
        after = vocabulary.version
        assert before < middle < after
