"""Failure injection: the library must fail loudly and precisely.

Cross-module error-path tests: corrupted inputs, misconfigured pipelines
and abusive call sequences must raise the documented PrimaError subtypes
with actionable messages — never silently return wrong answers.
"""

from __future__ import annotations

import pytest

from repro.audit import io as audit_io
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import (
    AuditError,
    CoverageError,
    PolicyError,
    PrimaError,
    RefinementError,
    VocabularyError,
)
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.refinement.engine import refine
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import AcceptAll
from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlError
from repro.vocab.builtin import healthcare_vocabulary


class TestCorruptedInputs:
    def test_truncated_csv_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time,op,user,data,purpose,authorized,status\n1,1,u,d\n",
            encoding="utf-8",
        )
        with pytest.raises(AuditError, match=r"bad\.csv:2"):
            audit_io.load_csv(path)

    def test_non_numeric_time_in_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time,op,user,data,purpose,authorized,status\n"
            "yesterday,1,u,d,p,r,1\n",
            encoding="utf-8",
        )
        with pytest.raises(AuditError, match=r"bad\.csv:2"):
            audit_io.load_csv(path)

    def test_jsonl_with_wrong_status_value(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"time": 1, "op": 1, "user": "u", "data": "d", '
            '"purpose": "p", "authorized": "r", "status": 9}\n',
            encoding="utf-8",
        )
        with pytest.raises(AuditError):
            audit_io.load_jsonl(path)


class TestMisconfiguredPipelines:
    def test_refine_needs_entries(self, vocabulary):
        with pytest.raises(RefinementError):
            refine(Policy([]), AuditLog(), vocabulary)

    def test_coverage_needs_reference_range(self, vocabulary):
        with pytest.raises(CoverageError):
            from repro.coverage.engine import compute_coverage

            compute_coverage(Policy([]), Policy([]), vocabulary)

    def test_loop_environment_must_produce_traffic(self, vocabulary):
        class Silent:
            def simulate_round(self, round_index, store):
                return AuditLog()

        from repro.policy.store import PolicyStore

        loop = RefinementLoop(Silent(), PolicyStore(), vocabulary, AcceptAll())
        with pytest.raises(RefinementError):
            loop.run(1)

    def test_strict_vocabulary_rejects_unknown_values_end_to_end(self):
        strict = healthcare_vocabulary(strict=True)
        rule = Rule.of(data="alien_artifact", purpose="treatment",
                       authorized="nurse")
        with pytest.raises(VocabularyError):
            rule.ground_rules(strict)

    def test_refinement_with_benign_log_proposes_nothing(self, vocabulary, fig3_policy):
        # a log of purely sanctioned traffic must not generate candidates
        log = AuditLog()
        for tick in range(1, 8):
            log.append(
                make_entry(tick, f"u{tick % 3}", "referral", "treatment",
                           "nurse", status=AccessStatus.REGULAR)
            )
        result = refine(fig3_policy, log, vocabulary)
        assert result.patterns == ()
        assert result.useful_patterns == ()


class TestAbusiveCallSequences:
    def test_audit_log_rejects_time_travel(self):
        log = AuditLog()
        log.append(make_entry(10, "u", "d_cat", "p_cat", "r_cat"))
        with pytest.raises(AuditError):
            log.append(make_entry(9, "u", "d_cat", "p_cat", "r_cat"))

    def test_sql_errors_are_prima_errors(self):
        db = Database()
        with pytest.raises(PrimaError):
            db.execute("SELECT FROM nothing")
        with pytest.raises(SqlError):
            db.query("SELECT * FROM missing_table")

    def test_policy_errors_are_prima_errors(self):
        with pytest.raises(PolicyError):
            Rule(())
        assert issubclass(PolicyError, PrimaError)

    def test_error_messages_name_the_offender(self):
        db = Database()
        db.define_table("present", [("a", "integer")])
        with pytest.raises(SqlError, match="present"):
            db.table("absent")

    def test_division_by_zero_in_query_raises_not_returns(self):
        db = Database()
        db.define_table("t", [("a", "integer")])
        db.execute("INSERT INTO t VALUES (0)")
        with pytest.raises(SqlError):
            db.query("SELECT 1 / a FROM t")

    def test_enforcer_refuses_vocabulary_mismatch_gracefully(self, vocabulary):
        # an unknown role is not an error: the lenient vocabulary treats
        # it as ground, the policy simply never covers it -> denial
        from repro.errors import AccessDeniedError
        from repro.hdb.control_center import HdbControlCenter
        from repro.hdb.enforcement import TableBinding

        center = HdbControlCenter(vocabulary)
        center.database.execute(
            "CREATE TABLE p (pid TEXT NOT NULL, referral TEXT)"
        )
        center.database.execute("INSERT INTO p VALUES ('x', 'r')")
        center.bind_table(TableBinding("p", "pid", {"referral": "referral"}))
        center.define_rule("ALLOW nurse TO USE referral FOR treatment")
        with pytest.raises(AccessDeniedError):
            center.run("intruder", "janitor", "treatment",
                       "SELECT referral FROM p")


class TestDecisionServiceFailures:
    """Hostile and broken clients must never crash the PDP server, and a
    rejected request must leave **no** trace in the audit log."""

    @pytest.fixture()
    def served(self):
        from repro.serve import ServerConfig, ServerThread, build_demo_engine

        engine = build_demo_engine(rows=20, seed=7)
        config = ServerConfig(port=0, idle_timeout=0.4)
        with ServerThread(engine, config) as srv:
            yield engine, srv

    @staticmethod
    def raw_connection(srv):
        import socket

        return socket.create_connection((srv.host, srv.port), timeout=10)

    @staticmethod
    def assert_alive(srv):
        from repro.serve import PdpClient

        with PdpClient(srv.host, srv.port) as probe:
            assert probe.ping()["ok"] is True

    def test_torn_frame_drops_connection_without_audit(self, served):
        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "decide", "user": "u"')  # no newline, ever
            sock.shutdown(1)  # SHUT_WR: EOF mid-frame
            assert sock.makefile("rb").readline() == b""
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_oversized_frame_is_rejected_then_closed(self, served):
        from repro.serve import protocol

        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "decide", "sql": "' +
                         b"x" * (protocol.MAX_FRAME_BYTES + 1024) + b'"}\n')
            reply = protocol.decode_frame(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["code"] == protocol.BAD_REQUEST
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_malformed_json_and_unknown_op_answered_not_crashed(self, served):
        from repro.serve import protocol

        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"not json at all\n")
            first = protocol.decode_frame(reader.readline())
            sock.sendall(b'{"op": "drop_all_tables"}\n')
            second = protocol.decode_frame(reader.readline())
        assert first["code"] == protocol.BAD_REQUEST
        assert second["code"] == protocol.BAD_REQUEST
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_incomplete_decide_is_rejected_unaudited(self, served):
        from repro.serve import PdpClient, protocol

        engine, srv = served
        base = len(engine.audit_log)
        with PdpClient(srv.host, srv.port) as client:
            response = client.request({"op": "decide", "user": "u"})
        assert response["code"] == protocol.BAD_REQUEST
        assert "role" in response["error"]
        assert len(engine.audit_log) == base

    def test_slow_loris_connection_is_reaped(self, served):
        import time

        engine, srv = served
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "ping"')  # then stall past idle_timeout
            started = time.monotonic()
            assert sock.makefile("rb").readline() == b""
            assert time.monotonic() - started < 5.0
        self.assert_alive(srv)
        assert len(engine.audit_log) == 0

    def test_client_disconnect_mid_response_does_not_kill_server(self, served):
        from repro.serve import protocol

        engine, srv = served
        for _ in range(3):
            sock = self.raw_connection(srv)
            sock.sendall(protocol.encode_frame(
                {"op": "query", "user": "u", "role": "physician",
                 "purpose": "treatment",
                 "sql": "SELECT prescription FROM patients"}
            ))
            sock.close()  # gone before the response is written
        self.assert_alive(srv)

    def test_shutdown_with_inflight_work_drains_cleanly(self):
        import threading
        import time

        from repro.serve import (
            PdpClient,
            ServerConfig,
            ServerThread,
            build_demo_engine,
            protocol,
        )

        engine = build_demo_engine(rows=20, seed=7)
        config = ServerConfig(port=0, handling_delay=0.3)
        srv = ServerThread(engine, config).start()
        outcome = {}

        def inflight():
            with PdpClient(srv.host, srv.port) as client:
                outcome.update(client.decide("u", "physician", "treatment",
                                             ["prescription"]))

        worker = threading.Thread(target=inflight)
        worker.start()
        time.sleep(0.1)
        srv.stop()  # drain must let the admitted request finish
        worker.join(10)
        assert outcome["code"] == protocol.OK
        assert len(engine.audit_log) == 1


class TestRefineDaemonFailures:
    """Crash/corruption injection around the online refinement daemon.

    The daemon's commit order is mine → gate → persist → hot-swap; these
    tests kill it at every seam and assert a restarted daemon resumes
    from the persisted watermark with no double-mine and no skip.
    """

    def _fixture(self, tmp_path, gate=None, accesses=600):
        from repro.experiments.harness import standard_loop_setup
        from repro.mining.patterns import MiningConfig
        from repro.refine_daemon import (
            AutoAcceptGate,
            DaemonConfig,
            RefineDaemon,
            StorePolicyTarget,
        )
        from repro.store.durable import DurableAuditLog

        setup = standard_loop_setup(accesses_per_round=accesses, seed=7)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            gate or AutoAcceptGate(min_support=10, min_distinct_users=3),
            DaemonConfig(mining=MiningConfig(min_support=5, min_distinct_users=2)),
        )
        return setup, log, daemon

    def test_crash_between_persist_and_hot_swap_is_reconciled(self, tmp_path):
        from repro.policy.parser import parse_rule
        from repro.refine_daemon import load_state

        setup, log, daemon = self._fixture(tmp_path)
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()

        class Boom(Exception):
            pass

        real_adopt = daemon.target.adopt
        daemon.target.adopt = lambda *a, **k: (_ for _ in ()).throw(Boom())
        with pytest.raises(Boom):
            daemon.poll()  # dies after save_state, before the swap
        daemon.target.adopt = real_adopt
        # the ledger recorded the acceptance; the store never saw it
        state = load_state(log.store.directory)
        assert state.accepted
        missing = [
            c for c in state.accepted
            if parse_rule(c.rule) not in setup.store
        ]
        assert missing
        # a restarted daemon over the same store and trail repairs the
        # gap at its next poll — without consuming anything (the
        # watermark already covers the trail)
        from repro.mining.patterns import MiningConfig
        from repro.refine_daemon import (
            AutoAcceptGate,
            DaemonConfig,
            RefineDaemon,
            StorePolicyTarget,
        )

        revived = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(min_support=10, min_distinct_users=3),
            DaemonConfig(mining=MiningConfig(min_support=5, min_distinct_users=2)),
        )
        report = revived.poll()
        assert report.reconciled == len(missing)
        assert report.consumed == 0
        for candidate in state.accepted:
            assert parse_rule(candidate.rule) in setup.store
        log.close()

    def test_torn_state_tmp_file_is_ignored(self, tmp_path):
        from repro.refine_daemon import load_state, state_path

        setup, log, daemon = self._fixture(tmp_path)
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        report = daemon.poll()
        # a crash mid-save leaves a torn temp file next to the real state
        torn = state_path(log.store.directory).with_suffix(".json.tmp")
        torn.write_bytes(b'{"format": 1, "waterm')
        state = load_state(log.store.directory)
        assert state.watermark == report.watermark
        log.close()

    def test_corrupt_state_file_raises_daemon_error(self, tmp_path):
        from repro.errors import DaemonError
        from repro.refine_daemon import load_state, state_path

        setup, log, daemon = self._fixture(tmp_path)
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        daemon.poll()
        path = state_path(log.store.directory)
        path.write_bytes(b"{ not json")
        with pytest.raises(DaemonError, match="REFINE_DAEMON"):
            load_state(log.store.directory)
        # the daemon refuses to poll over garbage rather than re-mining
        with pytest.raises(DaemonError):
            daemon.poll()
        log.close()

    def test_negative_watermark_in_state_is_rejected(self, tmp_path):
        import json

        from repro.errors import DaemonError
        from repro.refine_daemon import load_state, state_path

        setup, log, daemon = self._fixture(tmp_path)
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        daemon.poll()
        path = state_path(log.store.directory)
        payload = json.loads(path.read_text())
        payload["watermark"] = -5
        path.write_text(json.dumps(payload))
        with pytest.raises(DaemonError, match="watermark"):
            load_state(log.store.directory)
        log.close()

    def test_compaction_racing_a_tailing_daemon(self, tmp_path):
        """Compact between seals: renamed/merged segments must not make
        the daemon double-consume or skip the straddling tail."""
        from repro.audit.schema import AccessStatus as Status
        from repro.mining.patterns import MiningConfig
        from repro.policy.store import PolicyStore
        from repro.refine_daemon import (
            AutoAcceptGate,
            DaemonConfig,
            RefineDaemon,
            StorePolicyTarget,
        )
        from repro.store.durable import DurableAuditLog
        from repro.store.store import StoreConfig

        log = DurableAuditLog(
            tmp_path / "trail",
            config=StoreConfig(max_segment_entries=5, fsync="off"),
        )
        consumed: list = []
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(PolicyStore()),
            healthcare_vocabulary(),
            AutoAcceptGate(),
            DaemonConfig(
                mining=MiningConfig(min_support=5, min_distinct_users=2),
                mine_every_polls=0,
                entry_observer=consumed.append,
            ),
        )
        expected = []
        tick = 0
        for phase in range(3):
            for _ in range(7):
                tick += 1
                log.append(
                    make_entry(tick, f"u{tick % 3}", "referral", "treatment",
                               "nurse", status=Status.EXCEPTION)
                )
                expected.append(("referral", "treatment", "nurse"))
            log.seal_active()
            daemon.poll()
            log.store.compact()  # merges sealed history under new names
        assert consumed == expected
        assert daemon.state.watermark == len(expected)
        log.close()
