"""Failure injection: the library must fail loudly and precisely.

Cross-module error-path tests: corrupted inputs, misconfigured pipelines
and abusive call sequences must raise the documented PrimaError subtypes
with actionable messages — never silently return wrong answers.
"""

from __future__ import annotations

import pytest

from repro.audit import io as audit_io
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import (
    AuditError,
    CoverageError,
    PolicyError,
    PrimaError,
    RefinementError,
    VocabularyError,
)
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.refinement.engine import refine
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import AcceptAll
from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlError
from repro.vocab.builtin import healthcare_vocabulary


class TestCorruptedInputs:
    def test_truncated_csv_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time,op,user,data,purpose,authorized,status\n1,1,u,d\n",
            encoding="utf-8",
        )
        with pytest.raises(AuditError, match=r"bad\.csv:2"):
            audit_io.load_csv(path)

    def test_non_numeric_time_in_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time,op,user,data,purpose,authorized,status\n"
            "yesterday,1,u,d,p,r,1\n",
            encoding="utf-8",
        )
        with pytest.raises(AuditError, match=r"bad\.csv:2"):
            audit_io.load_csv(path)

    def test_jsonl_with_wrong_status_value(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"time": 1, "op": 1, "user": "u", "data": "d", '
            '"purpose": "p", "authorized": "r", "status": 9}\n',
            encoding="utf-8",
        )
        with pytest.raises(AuditError):
            audit_io.load_jsonl(path)


class TestMisconfiguredPipelines:
    def test_refine_needs_entries(self, vocabulary):
        with pytest.raises(RefinementError):
            refine(Policy([]), AuditLog(), vocabulary)

    def test_coverage_needs_reference_range(self, vocabulary):
        with pytest.raises(CoverageError):
            from repro.coverage.engine import compute_coverage

            compute_coverage(Policy([]), Policy([]), vocabulary)

    def test_loop_environment_must_produce_traffic(self, vocabulary):
        class Silent:
            def simulate_round(self, round_index, store):
                return AuditLog()

        from repro.policy.store import PolicyStore

        loop = RefinementLoop(Silent(), PolicyStore(), vocabulary, AcceptAll())
        with pytest.raises(RefinementError):
            loop.run(1)

    def test_strict_vocabulary_rejects_unknown_values_end_to_end(self):
        strict = healthcare_vocabulary(strict=True)
        rule = Rule.of(data="alien_artifact", purpose="treatment",
                       authorized="nurse")
        with pytest.raises(VocabularyError):
            rule.ground_rules(strict)

    def test_refinement_with_benign_log_proposes_nothing(self, vocabulary, fig3_policy):
        # a log of purely sanctioned traffic must not generate candidates
        log = AuditLog()
        for tick in range(1, 8):
            log.append(
                make_entry(tick, f"u{tick % 3}", "referral", "treatment",
                           "nurse", status=AccessStatus.REGULAR)
            )
        result = refine(fig3_policy, log, vocabulary)
        assert result.patterns == ()
        assert result.useful_patterns == ()


class TestAbusiveCallSequences:
    def test_audit_log_rejects_time_travel(self):
        log = AuditLog()
        log.append(make_entry(10, "u", "d_cat", "p_cat", "r_cat"))
        with pytest.raises(AuditError):
            log.append(make_entry(9, "u", "d_cat", "p_cat", "r_cat"))

    def test_sql_errors_are_prima_errors(self):
        db = Database()
        with pytest.raises(PrimaError):
            db.execute("SELECT FROM nothing")
        with pytest.raises(SqlError):
            db.query("SELECT * FROM missing_table")

    def test_policy_errors_are_prima_errors(self):
        with pytest.raises(PolicyError):
            Rule(())
        assert issubclass(PolicyError, PrimaError)

    def test_error_messages_name_the_offender(self):
        db = Database()
        db.define_table("present", [("a", "integer")])
        with pytest.raises(SqlError, match="present"):
            db.table("absent")

    def test_division_by_zero_in_query_raises_not_returns(self):
        db = Database()
        db.define_table("t", [("a", "integer")])
        db.execute("INSERT INTO t VALUES (0)")
        with pytest.raises(SqlError):
            db.query("SELECT 1 / a FROM t")

    def test_enforcer_refuses_vocabulary_mismatch_gracefully(self, vocabulary):
        # an unknown role is not an error: the lenient vocabulary treats
        # it as ground, the policy simply never covers it -> denial
        from repro.errors import AccessDeniedError
        from repro.hdb.control_center import HdbControlCenter
        from repro.hdb.enforcement import TableBinding

        center = HdbControlCenter(vocabulary)
        center.database.execute(
            "CREATE TABLE p (pid TEXT NOT NULL, referral TEXT)"
        )
        center.database.execute("INSERT INTO p VALUES ('x', 'r')")
        center.bind_table(TableBinding("p", "pid", {"referral": "referral"}))
        center.define_rule("ALLOW nurse TO USE referral FOR treatment")
        with pytest.raises(AccessDeniedError):
            center.run("intruder", "janitor", "treatment",
                       "SELECT referral FROM p")


class TestDecisionServiceFailures:
    """Hostile and broken clients must never crash the PDP server, and a
    rejected request must leave **no** trace in the audit log."""

    @pytest.fixture()
    def served(self):
        from repro.serve import ServerConfig, ServerThread, build_demo_engine

        engine = build_demo_engine(rows=20, seed=7)
        config = ServerConfig(port=0, idle_timeout=0.4)
        with ServerThread(engine, config) as srv:
            yield engine, srv

    @staticmethod
    def raw_connection(srv):
        import socket

        return socket.create_connection((srv.host, srv.port), timeout=10)

    @staticmethod
    def assert_alive(srv):
        from repro.serve import PdpClient

        with PdpClient(srv.host, srv.port) as probe:
            assert probe.ping()["ok"] is True

    def test_torn_frame_drops_connection_without_audit(self, served):
        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "decide", "user": "u"')  # no newline, ever
            sock.shutdown(1)  # SHUT_WR: EOF mid-frame
            assert sock.makefile("rb").readline() == b""
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_oversized_frame_is_rejected_then_closed(self, served):
        from repro.serve import protocol

        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "decide", "sql": "' +
                         b"x" * (protocol.MAX_FRAME_BYTES + 1024) + b'"}\n')
            reply = protocol.decode_frame(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert reply["code"] == protocol.BAD_REQUEST
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_malformed_json_and_unknown_op_answered_not_crashed(self, served):
        from repro.serve import protocol

        engine, srv = served
        base = len(engine.audit_log)
        with self.raw_connection(srv) as sock:
            reader = sock.makefile("rb")
            sock.sendall(b"not json at all\n")
            first = protocol.decode_frame(reader.readline())
            sock.sendall(b'{"op": "drop_all_tables"}\n')
            second = protocol.decode_frame(reader.readline())
        assert first["code"] == protocol.BAD_REQUEST
        assert second["code"] == protocol.BAD_REQUEST
        self.assert_alive(srv)
        assert len(engine.audit_log) == base

    def test_incomplete_decide_is_rejected_unaudited(self, served):
        from repro.serve import PdpClient, protocol

        engine, srv = served
        base = len(engine.audit_log)
        with PdpClient(srv.host, srv.port) as client:
            response = client.request({"op": "decide", "user": "u"})
        assert response["code"] == protocol.BAD_REQUEST
        assert "role" in response["error"]
        assert len(engine.audit_log) == base

    def test_slow_loris_connection_is_reaped(self, served):
        import time

        engine, srv = served
        with self.raw_connection(srv) as sock:
            sock.sendall(b'{"op": "ping"')  # then stall past idle_timeout
            started = time.monotonic()
            assert sock.makefile("rb").readline() == b""
            assert time.monotonic() - started < 5.0
        self.assert_alive(srv)
        assert len(engine.audit_log) == 0

    def test_client_disconnect_mid_response_does_not_kill_server(self, served):
        from repro.serve import protocol

        engine, srv = served
        for _ in range(3):
            sock = self.raw_connection(srv)
            sock.sendall(protocol.encode_frame(
                {"op": "query", "user": "u", "role": "physician",
                 "purpose": "treatment",
                 "sql": "SELECT prescription FROM patients"}
            ))
            sock.close()  # gone before the response is written
        self.assert_alive(srv)

    def test_shutdown_with_inflight_work_drains_cleanly(self):
        import threading
        import time

        from repro.serve import (
            PdpClient,
            ServerConfig,
            ServerThread,
            build_demo_engine,
            protocol,
        )

        engine = build_demo_engine(rows=20, seed=7)
        config = ServerConfig(port=0, handling_delay=0.3)
        srv = ServerThread(engine, config).start()
        outcome = {}

        def inflight():
            with PdpClient(srv.host, srv.port) as client:
                outcome.update(client.decide("u", "physician", "treatment",
                                             ["prescription"]))

        worker = threading.Thread(target=inflight)
        worker.start()
        time.sleep(0.1)
        srv.stop()  # drain must let the admitted request finish
        worker.join(10)
        assert outcome["code"] == protocol.OK
        assert len(engine.audit_log) == 1
