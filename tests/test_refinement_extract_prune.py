"""Unit tests for Algorithms 4 (extractPatterns) and 6 (Prune)."""

from __future__ import annotations

from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import MiningConfig, Pattern
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.refinement.extract import extract_patterns
from repro.refinement.filtering import filter_practice
from repro.refinement.prune import prune_patterns


class TestExtract:
    def test_defaults_match_algorithm4(self, table1_log):
        practice = filter_practice(table1_log)
        patterns = extract_patterns(practice)
        assert len(patterns) == 1
        assert patterns[0].support == 5

    def test_custom_config(self, table1_log):
        practice = filter_practice(table1_log)
        assert extract_patterns(practice, MiningConfig(min_support=6)) == ()

    def test_pluggable_miner(self, table1_log):
        practice = filter_practice(table1_log)
        default = extract_patterns(practice)
        swapped = extract_patterns(practice, miner=AprioriPatternMiner())
        assert {p.rule for p in default} == {p.rule for p in swapped}


def _pattern(data: str, purpose: str = "registration", role: str = "nurse") -> Pattern:
    return Pattern(
        rule=Rule.of(data=data, purpose=purpose, authorized=role),
        support=5,
        distinct_users=2,
    )


class TestPrune:
    def test_novel_pattern_kept(self, vocabulary, fig3_policy):
        result = prune_patterns([_pattern("referral")], fig3_policy, vocabulary)
        assert len(result.useful) == 1
        assert result.pruned == ()
        assert result.novel_range.cardinality == 1

    def test_equivalence_based_pruning(self, vocabulary, fig3_policy):
        # ground pattern prescription:treatment:nurse is syntactically
        # absent from the store but covered by the composite
        # medical_records:treatment:nurse rule -> pruned
        covered = _pattern("prescription", "treatment", "nurse")
        result = prune_patterns([covered], fig3_policy, vocabulary)
        assert result.useful == ()
        assert len(result.pruned) == 1

    def test_mixed_patterns_split(self, vocabulary, fig3_policy):
        patterns = [
            _pattern("prescription", "treatment", "nurse"),  # covered
            _pattern("referral", "registration", "nurse"),   # novel
        ]
        result = prune_patterns(patterns, fig3_policy, vocabulary)
        assert [p.rule.value_of("purpose") for p in result.useful] == ["registration"]
        assert [p.rule.value_of("purpose") for p in result.pruned] == ["treatment"]

    def test_composite_pattern_with_partial_overlap_kept(self, vocabulary, fig3_policy):
        # a composite pattern contributing at least one novel ground rule
        # survives, and the novel range excludes the covered part
        composite = Pattern(
            rule=Rule.of(data="clinical", purpose="treatment", authorized="nurse"),
            support=9,
            distinct_users=3,
        )
        result = prune_patterns([composite], fig3_policy, vocabulary)
        assert len(result.useful) == 1
        # clinical expands to 4 leaves; 3 (medical_records) already covered
        assert result.novel_range.cardinality == 1

    def test_empty_patterns(self, vocabulary, fig3_policy):
        result = prune_patterns([], fig3_policy, vocabulary)
        assert result.useful == () and result.pruned == ()
        assert result.novel_range.cardinality == 0

    def test_empty_store_keeps_everything(self, vocabulary):
        result = prune_patterns([_pattern("referral")], Policy([]), vocabulary)
        assert len(result.useful) == 1
