"""Tests for the PDP clients: retry discipline, reconnects, async surface."""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import (
    AsyncPdpClient,
    PdpClient,
    RetryPolicy,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    protocol,
)


@pytest.fixture()
def served():
    engine = build_demo_engine(rows=30, seed=7)
    with ServerThread(engine, ServerConfig(port=0)) as srv:
        yield engine, srv


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.5,
                             backoff=2.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(5) == pytest.approx(0.5)

    def test_connect_fails_after_budget_when_nothing_listens(self):
        client = PdpClient("127.0.0.1", free_port(),
                           retry=RetryPolicy(attempts=2, base_delay=0.01))
        started = time.monotonic()
        with pytest.raises(ServeError, match="could not connect"):
            client.connect()
        assert time.monotonic() - started < 5.0

    def test_connect_retries_until_server_appears(self):
        port = free_port()
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=port))

        def start_late():
            time.sleep(0.3)
            srv.start()

        opener = threading.Thread(target=start_late)
        opener.start()
        try:
            client = PdpClient(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=10, base_delay=0.1, max_delay=0.2),
            )
            with client:
                assert client.ping()["ok"] is True
        finally:
            opener.join(10)
            srv.stop()


class TestSyncClient:
    def test_idempotent_request_survives_a_dropped_connection(self, served):
        _, srv = served
        client = PdpClient(srv.host, srv.port)
        with client:
            assert client.ping()["ok"] is True
            # simulate a dropped transport: the next call reconnects
            client._sock.shutdown(socket.SHUT_RDWR)
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"])
            assert response["code"] == protocol.OK

    def test_admin_ops_are_not_replayed(self, served):
        _, srv = served
        client = PdpClient(srv.host, srv.port)
        with client:
            client.ping()
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(ServeError, match="1 attempt"):
                client.add_rule("ALLOW physician TO USE insurance FOR treatment")

    def test_close_is_idempotent_and_reusable(self, served):
        _, srv = served
        client = PdpClient(srv.host, srv.port)
        with client:
            client.ping()
        client.close()
        client.close()
        with client:  # reconnects after close
            assert client.ping()["ok"] is True

    def test_none_valued_fields_are_dropped_from_frames(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            # deadline_ms=None must not reach the validator
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"], deadline_ms=None)
        assert response["ok"] is True


class TestAsyncClient:
    def test_full_surface(self, served):
        _, srv = served

        async def drive():
            async with AsyncPdpClient(srv.host, srv.port) as client:
                pong = await client.ping()
                decision = await client.decide(
                    "u", "physician", "treatment", ["prescription"]
                )
                queried = await client.query(
                    "u", "physician", "treatment",
                    "SELECT prescription FROM patients LIMIT 1",
                )
                stats = await client.stats()
            return pong, decision, queried, stats

        pong, decision, queried, stats = asyncio.run(drive())
        assert pong["op"] == "pong"
        assert decision["code"] == protocol.OK
        assert queried["rows"] and queried["returned"] == ["prescription"]
        assert stats["decisions_served"] == 1

    def test_connect_fails_after_budget(self):
        port = free_port()

        async def drive():
            client = AsyncPdpClient(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=2, base_delay=0.01),
            )
            with pytest.raises(ServeError, match="could not connect"):
                await client.connect()

        asyncio.run(drive())

    def test_many_concurrent_clients_share_one_server(self, served):
        _, srv = served

        async def one(index):
            async with AsyncPdpClient(srv.host, srv.port) as client:
                response = await client.decide(
                    f"user-{index}", "physician", "treatment", ["prescription"]
                )
            return response["code"]

        async def drive():
            return await asyncio.gather(*(one(index) for index in range(16)))

        assert set(asyncio.run(drive())) == {protocol.OK}
