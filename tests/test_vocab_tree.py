"""Unit tests for repro.vocab.tree."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateTermError, UnknownTermError, VocabularyError
from repro.vocab.tree import VocabularyTree, canonical


class TestCanonical:
    def test_lowercases_and_strips(self):
        assert canonical("  Gender ") == "gender"

    def test_collapses_internal_whitespace_to_underscore(self):
        assert canonical("Birth  Date") == "birth_date"

    def test_rejects_empty(self):
        with pytest.raises(VocabularyError):
            canonical("   ")

    def test_rejects_non_string(self):
        with pytest.raises(VocabularyError):
            canonical(42)  # type: ignore[arg-type]


class TestConstruction:
    def test_root_defaults_to_attribute_name(self):
        tree = VocabularyTree("data")
        assert tree.root == "data"
        assert "data" in tree

    def test_explicit_root(self):
        tree = VocabularyTree("authorized", root="staff")
        assert tree.root == "staff"
        assert "authorized" not in tree

    def test_add_under_root_by_default(self):
        tree = VocabularyTree("data")
        tree.add("demographic")
        assert tree.parent("demographic") == "data"

    def test_add_under_named_parent(self):
        tree = VocabularyTree("data")
        tree.add("demographic")
        tree.add("address", "demographic")
        assert tree.parent("address") == "demographic"

    def test_add_duplicate_raises(self):
        tree = VocabularyTree("data")
        tree.add("x")
        with pytest.raises(DuplicateTermError):
            tree.add("X")  # canonicalises to the same node

    def test_add_under_missing_parent_raises(self):
        tree = VocabularyTree("data")
        with pytest.raises(UnknownTermError):
            tree.add("address", "nope")

    def test_add_branch_creates_parent_and_children(self):
        tree = VocabularyTree("data")
        added = tree.add_branch("demographic", ["name", "address"])
        assert added == ["name", "address"]
        assert tree.children("demographic") == ("name", "address")

    def test_add_branch_reuses_existing_parent(self):
        tree = VocabularyTree("data")
        tree.add("demographic")
        tree.add_branch("demographic", ["gender"])
        assert tree.children("demographic") == ("gender",)


@pytest.fixture()
def data_tree() -> VocabularyTree:
    tree = VocabularyTree("data")
    tree.add_branch("demographic", ["name", "address", "gender", "birth_date"])
    tree.add("clinical")
    tree.add("medical_records", "clinical")
    tree.add("prescription", "medical_records")
    tree.add("referral", "medical_records")
    tree.add("psychiatry", "clinical")
    return tree


class TestQueries:
    def test_contains_is_case_insensitive(self, data_tree):
        assert "Demographic" in data_tree
        assert "nonexistent" not in data_tree

    def test_contains_handles_invalid_value(self, data_tree):
        assert "" not in data_tree

    def test_len_counts_all_nodes(self, data_tree):
        assert len(data_tree) == 11  # root + 10

    def test_preorder_iteration_starts_at_root(self, data_tree):
        nodes = list(data_tree)
        assert nodes[0] == "data"
        assert set(nodes) == {
            "data", "demographic", "name", "address", "gender", "birth_date",
            "clinical", "medical_records", "prescription", "referral", "psychiatry",
        }

    def test_is_leaf(self, data_tree):
        assert data_tree.is_leaf("gender")
        assert not data_tree.is_leaf("demographic")

    def test_leaves(self, data_tree):
        assert set(data_tree.leaves()) == {
            "name", "address", "gender", "birth_date",
            "prescription", "referral", "psychiatry",
        }

    def test_leaves_under_composite(self, data_tree):
        assert set(data_tree.leaves_under("demographic")) == {
            "name", "address", "gender", "birth_date",
        }

    def test_leaves_under_ground_value_is_itself(self, data_tree):
        assert data_tree.leaves_under("gender") == ("gender",)

    def test_leaves_under_unknown_raises(self, data_tree):
        with pytest.raises(UnknownTermError):
            data_tree.leaves_under("nope")

    def test_ancestors(self, data_tree):
        assert data_tree.ancestors("prescription") == (
            "medical_records", "clinical", "data",
        )
        assert data_tree.ancestors("data") == ()

    def test_depth(self, data_tree):
        assert data_tree.depth("data") == 0
        assert data_tree.depth("prescription") == 3

    def test_height(self, data_tree):
        assert data_tree.height() == 3

    def test_subsumes_reflexive(self, data_tree):
        assert data_tree.subsumes("gender", "gender")

    def test_subsumes_ancestor(self, data_tree):
        assert data_tree.subsumes("demographic", "gender")
        assert data_tree.subsumes("data", "prescription")

    def test_subsumes_is_directional(self, data_tree):
        assert not data_tree.subsumes("gender", "demographic")

    def test_subsumes_siblings_false(self, data_tree):
        assert not data_tree.subsumes("demographic", "psychiatry")


class TestSerialisation:
    def test_round_trip(self, data_tree):
        rebuilt = VocabularyTree.from_dict(data_tree.to_dict())
        assert list(rebuilt) == list(data_tree)
        assert rebuilt.attribute == data_tree.attribute
        assert rebuilt.leaves() == data_tree.leaves()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(VocabularyError):
            VocabularyTree.from_dict({"attribute": "data"})
