"""Unit tests for the policy authoring DSL."""

from __future__ import annotations

import pytest

from repro.errors import PolicyParseError
from repro.policy.parser import format_policy, format_rule, parse_policy, parse_rule
from repro.policy.policy import PolicySource
from repro.policy.rule import Rule


class TestParseRule:
    def test_sentence_form(self):
        rule = parse_rule("ALLOW nurse TO USE medical_records FOR treatment")
        assert rule == Rule.of(
            data="medical_records", purpose="treatment", authorized="nurse"
        )

    def test_sentence_form_verbs_interchangeable(self):
        for verb in ("USE", "ACCESS", "READ", "DISCLOSE", "use"):
            rule = parse_rule(f"ALLOW clerk TO {verb} demographic FOR billing")
            assert rule.value_of("authorized") == "clerk"

    def test_sentence_form_is_case_insensitive(self):
        assert parse_rule("allow Nurse to use Referral for Treatment") == Rule.of(
            data="referral", purpose="treatment", authorized="nurse"
        )

    def test_quoted_multiword_values(self):
        rule = parse_rule("ALLOW 'billing clerk' TO USE demographic FOR billing")
        assert rule.value_of("authorized") == "billing_clerk"

    def test_generic_form(self):
        rule = parse_rule("RULE data=referral, purpose=registration, authorized=nurse")
        assert rule == Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        )

    def test_generic_form_without_keyword(self):
        rule = parse_rule("data=referral, purpose=registration")
        assert rule.cardinality == 2

    def test_generic_form_arbitrary_attributes(self):
        rule = parse_rule("RULE op=allow, status=exception")
        assert rule.value_of("op") == "allow"

    def test_trailing_comment_ignored(self):
        rule = parse_rule("ALLOW nurse TO USE referral FOR treatment # why not")
        assert rule.cardinality == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DENY nurse TO USE x FOR y",
            "ALLOW nurse USE x FOR y",
            "ALLOW nurse TO FROB x FOR y",
            "ALLOW nurse TO USE x WITH y",
            "RULE data referral",
            "RULE",
            "ALLOW 'unbalanced TO USE x FOR y",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(PolicyParseError):
            parse_rule(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(PolicyParseError, match="line 2"):
            parse_policy("ALLOW nurse TO USE referral FOR treatment\nGARBAGE here")


class TestParsePolicy:
    def test_skips_blanks_and_comments(self):
        text = """
        # the store
        ALLOW nurse TO USE medical_records FOR treatment

        ALLOW clerk TO USE demographic FOR billing
        """
        policy = parse_policy(text)
        assert policy.cardinality == 2
        assert policy.source is PolicySource.POLICY_STORE

    def test_source_override(self):
        policy = parse_policy("ALLOW a TO USE b FOR c", source="AL", name="log")
        assert policy.source is PolicySource.AUDIT_LOG
        assert policy.name == "log"


class TestFormatting:
    def test_format_rule_round_trips_sentence_form(self):
        rule = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        assert parse_rule(format_rule(rule)) == rule
        assert format_rule(rule).startswith("ALLOW")

    def test_format_rule_round_trips_generic_form(self):
        rule = Rule.of(data="referral", purpose="treatment")
        text = format_rule(rule)
        assert text.startswith("RULE")
        assert parse_rule(text) == rule

    def test_format_policy_round_trips(self, fig3_policy):
        text = format_policy(fig3_policy)
        rebuilt = parse_policy(text)
        assert rebuilt.rules == fig3_policy.rules
