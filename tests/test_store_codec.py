"""Unit tests for the durable store's binary record codec."""

from __future__ import annotations

import struct

import pytest

from repro.audit.log import make_entry
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import StoreError
from repro.store.codec import (
    FRAME_OVERHEAD,
    HEADER_SIZE,
    MAX_RECORD_BYTES,
    SEGMENT_HEADER,
    decode_payload,
    encode_payload,
    encode_record,
    frame,
    read_frame,
)


def _entry(**overrides):
    defaults = dict(
        time=7, user="mark", data="referral", purpose="registration",
        authorized="nurse", status=AccessStatus.EXCEPTION, op=AccessOp.ALLOW,
        truth="practice",
    )
    defaults.update(overrides)
    return make_entry(**defaults)


class TestPayload:
    def test_round_trip(self):
        entry = _entry()
        assert decode_payload(encode_payload(entry)) == entry

    def test_truth_survives(self):
        entry = _entry(truth="violation")
        assert decode_payload(encode_payload(entry)).truth == "violation"

    def test_unicode_values_round_trip(self):
        entry = _entry(user="médecin_α", data="überweisung")
        rebuilt = decode_payload(encode_payload(entry))
        assert rebuilt.user == entry.user
        assert rebuilt.data == entry.data

    def test_all_ops_and_statuses(self):
        for op in AccessOp:
            for status in AccessStatus:
                entry = _entry(op=op, status=status)
                rebuilt = decode_payload(encode_payload(entry))
                assert (rebuilt.op, rebuilt.status) == (op, status)

    def test_truncated_payload_rejected(self):
        payload = encode_payload(_entry())
        with pytest.raises(StoreError):
            decode_payload(payload[:-1])

    def test_trailing_garbage_rejected(self):
        payload = encode_payload(_entry())
        with pytest.raises(StoreError):
            decode_payload(payload + b"\x00")


class TestFrame:
    def test_read_back(self):
        payload = encode_payload(_entry())
        buffer = frame(payload)
        result = read_frame(buffer, 0)
        assert result is not None
        got, next_offset = result
        assert got == payload
        assert next_offset == len(buffer) == FRAME_OVERHEAD + len(payload)

    def test_encode_record_is_framed_payload(self):
        entry = _entry()
        assert encode_record(entry) == frame(encode_payload(entry))

    def test_short_header_is_torn(self):
        assert read_frame(b"\x01\x02\x03", 0) is None

    def test_short_payload_is_torn(self):
        buffer = frame(encode_payload(_entry()))
        assert read_frame(buffer[:-1], 0) is None

    def test_corrupt_byte_is_torn(self):
        buffer = bytearray(frame(encode_payload(_entry())))
        buffer[-1] ^= 0xFF  # flip a payload bit; CRC must catch it
        assert read_frame(bytes(buffer), 0) is None

    def test_oversized_length_is_torn(self):
        buffer = struct.pack("<II", MAX_RECORD_BYTES + 1, 0) + b"x" * 16
        assert read_frame(buffer, 0) is None

    def test_sequential_frames(self):
        first = _entry(time=1)
        second = _entry(time=2, user="tim")
        buffer = encode_record(first) + encode_record(second)
        payload, offset = read_frame(buffer, 0)
        assert decode_payload(payload) == first
        payload, offset = read_frame(buffer, offset)
        assert decode_payload(payload) == second
        assert offset == len(buffer)

    def test_segment_header_size(self):
        assert len(SEGMENT_HEADER) == HEADER_SIZE
