"""Tests for vocabulary JSON persistence."""

from __future__ import annotations

import pytest

from repro.errors import VocabularyError
from repro.vocab import io as vocab_io
from repro.vocab.builtin import healthcare_vocabulary


def test_dumps_loads_round_trip():
    original = healthcare_vocabulary()
    rebuilt = vocab_io.loads(vocab_io.dumps(original))
    assert rebuilt.name == original.name
    assert rebuilt.attributes == original.attributes
    for attribute in original.attributes:
        assert (
            rebuilt.tree_for(attribute).leaves()
            == original.tree_for(attribute).leaves()
        )


def test_save_load_round_trip(tmp_path):
    original = healthcare_vocabulary()
    path = vocab_io.save(original, tmp_path / "vocab.json")
    rebuilt = vocab_io.load(path)
    assert set(rebuilt.ground_values("data", "demographic")) == set(
        original.ground_values("data", "demographic")
    )


def test_strict_flag_survives_round_trip():
    original = healthcare_vocabulary(strict=True)
    rebuilt = vocab_io.loads(vocab_io.dumps(original))
    assert rebuilt.strict is True


def test_loads_rejects_invalid_json():
    with pytest.raises(VocabularyError):
        vocab_io.loads("{not json")
