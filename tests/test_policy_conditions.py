"""Unit tests for conditional rules and time windows."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.conditions import ConditionalPolicySet, ConditionalRule, TimeWindow
from repro.policy.rule import Rule


def _rule(data: str = "referral", purpose: str = "registration", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestTimeWindow:
    def test_plain_window(self):
        window = TimeWindow(9, 17)
        assert window.span == 8
        assert window.contains(9)
        assert window.contains(16)
        assert not window.contains(17)
        assert not window.contains(3)

    def test_wrapping_window(self):
        night = TimeWindow(22, 6)
        assert night.span == 8
        assert night.contains(23)
        assert night.contains(0)
        assert night.contains(5)
        assert not night.contains(6)
        assert not night.contains(12)

    def test_all_day(self):
        day = TimeWindow.all_day()
        assert day.span == 24
        assert all(day.contains(hour) for hour in range(24))

    def test_hours_enumeration(self):
        assert TimeWindow(22, 2).hours() == (22, 23, 0, 1)
        assert TimeWindow(3, 5).hours() == (3, 4)

    def test_end_24_is_plain(self):
        late = TimeWindow(20, 24)
        assert late.span == 4
        assert late.contains(23)
        assert not late.contains(0)

    def test_validation(self):
        with pytest.raises(PolicyError):
            TimeWindow(-1, 5)
        with pytest.raises(PolicyError):
            TimeWindow(0, 25)
        with pytest.raises(PolicyError):
            TimeWindow(5, 10).contains(24)

    def test_str(self):
        assert str(TimeWindow(22, 6)) == "[22:00, 06:00)"


class TestConditionalRule:
    def test_covers_inside_window(self, vocabulary):
        conditional = ConditionalRule(_rule(), TimeWindow(22, 6))
        assert conditional.covers(_rule(), 23, vocabulary)
        assert not conditional.covers(_rule(), 12, vocabulary)

    def test_covers_respects_rule_semantics(self, vocabulary):
        conditional = ConditionalRule(
            Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
            TimeWindow(0, 24),
        )
        request = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        assert conditional.covers(request, 12, vocabulary)
        other = Rule.of(data="psychiatry", purpose="treatment", authorized="nurse")
        assert not conditional.covers(other, 12, vocabulary)

    def test_unconditional_strips_window(self):
        conditional = ConditionalRule(_rule(), TimeWindow(22, 6))
        assert conditional.unconditional() == _rule()

    def test_to_dsl(self):
        conditional = ConditionalRule(_rule(), TimeWindow(22, 6))
        text = conditional.to_dsl()
        assert text.startswith("ALLOW nurse TO USE referral FOR registration")
        assert text.endswith("WHEN HOUR IN [22:00, 06:00)")


class TestConditionalPolicySet:
    def test_plain_rules_always_permit(self, vocabulary):
        policy_set = ConditionalPolicySet()
        policy_set.add(_rule())
        assert policy_set.permits(_rule(), 3, vocabulary)
        assert policy_set.permits(_rule(), 15, vocabulary)

    def test_conditional_rules_scoped(self, vocabulary):
        policy_set = ConditionalPolicySet()
        policy_set.add(ConditionalRule(_rule(), TimeWindow(22, 6)))
        assert policy_set.permits(_rule(), 23, vocabulary)
        assert not policy_set.permits(_rule(), 12, vocabulary)

    def test_mixture(self, vocabulary):
        policy_set = ConditionalPolicySet()
        policy_set.add(_rule("prescription", "treatment"))
        policy_set.add(ConditionalRule(_rule(), TimeWindow(22, 6)))
        assert len(policy_set) == 2
        assert len(policy_set.conditional_rules) == 1
        assert policy_set.permits(_rule("prescription", "treatment"), 12, vocabulary)
        assert not policy_set.permits(_rule(), 12, vocabulary)

    def test_rejects_junk(self):
        with pytest.raises(PolicyError):
            ConditionalPolicySet().add("nope")  # type: ignore[arg-type]
