"""Unit tests for the Audit Management federation layer."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import FederationError
from repro.hdb.federation import AuditFederation
from repro.sqlmini.database import Database


def _site_log(name: str, times: list[int], user: str) -> AuditLog:
    log = AuditLog(name=name)
    for tick in times:
        log.append(
            make_entry(tick, user, "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
    return log


@pytest.fixture()
def federation() -> AuditFederation:
    fed = AuditFederation()
    fed.register("cardio", _site_log("cardio", [1, 4, 9], "mark"))
    fed.register("er", _site_log("er", [2, 3, 10], "tim"))
    return fed


class TestMembership:
    def test_sites_sorted(self, federation):
        assert federation.sites == ("cardio", "er")

    def test_total_length(self, federation):
        assert len(federation) == 6

    def test_duplicate_site_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.register("CARDIO", AuditLog())

    def test_empty_site_name_rejected(self):
        with pytest.raises(FederationError):
            AuditFederation().register("  ", AuditLog())

    def test_member_lookup(self, federation):
        assert federation.member("er").name == "er"
        with pytest.raises(FederationError):
            federation.member("derm")


class TestConsolidation:
    def test_merge_is_time_ordered(self, federation):
        merged = federation.consolidated_log()
        assert [entry.time for entry in merged] == [1, 2, 3, 4, 9, 10]

    def test_merge_preserves_all_entries(self, federation):
        merged = federation.consolidated_log()
        assert len(merged) == 6
        assert set(merged.distinct_users()) == {"mark", "tim"}

    def test_empty_federation_raises(self):
        with pytest.raises(FederationError):
            AuditFederation().consolidated_log()

    def test_tie_break_is_stable_by_site_order(self):
        fed = AuditFederation()
        fed.register("beta", _site_log("beta", [5], "b_user"))
        fed.register("alpha", _site_log("alpha", [5], "a_user"))
        merged = fed.consolidated_log()
        assert [entry.user for entry in merged] == ["a_user", "b_user"]


class TestVirtualView:
    def test_view_queryable_with_site_column(self, federation):
        db = Database()
        federation.register_view(db)
        result = db.query(
            "SELECT site, COUNT(*) AS n FROM federated_audit "
            "GROUP BY site ORDER BY site"
        )
        assert result.rows == (("cardio", 3), ("er", 3))

    def test_view_reflects_new_entries(self, federation):
        db = Database()
        federation.register_view(db)
        before = db.query("SELECT COUNT(*) FROM federated_audit").scalar()
        federation.member("er").append(
            make_entry(11, "bob", "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        after = db.query("SELECT COUNT(*) FROM federated_audit").scalar()
        assert (before, after) == (6, 7)

    def test_algorithm5_shape_over_view(self, federation):
        db = Database()
        federation.register_view(db)
        result = db.query(
            "SELECT data, purpose, authorized FROM federated_audit "
            "WHERE status = 0 GROUP BY data, purpose, authorized "
            "HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) >= 2"
        )
        assert result.rows == (("referral", "registration", "nurse"),)
