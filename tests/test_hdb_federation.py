"""Unit tests for the Audit Management federation layer."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import FederationError
from repro.hdb.federation import AuditFederation
from repro.sqlmini.database import Database


def _site_log(name: str, times: list[int], user: str) -> AuditLog:
    log = AuditLog(name=name)
    for tick in times:
        log.append(
            make_entry(tick, user, "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
    return log


@pytest.fixture()
def federation() -> AuditFederation:
    fed = AuditFederation()
    fed.register("cardio", _site_log("cardio", [1, 4, 9], "mark"))
    fed.register("er", _site_log("er", [2, 3, 10], "tim"))
    return fed


class TestMembership:
    def test_sites_sorted(self, federation):
        assert federation.sites == ("cardio", "er")

    def test_total_length(self, federation):
        assert len(federation) == 6

    def test_duplicate_site_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.register("CARDIO", AuditLog())

    def test_empty_site_name_rejected(self):
        with pytest.raises(FederationError):
            AuditFederation().register("  ", AuditLog())

    def test_member_lookup(self, federation):
        assert federation.member("er").name == "er"
        with pytest.raises(FederationError):
            federation.member("derm")


class TestConsolidation:
    def test_merge_is_time_ordered(self, federation):
        merged = federation.consolidated_log()
        assert [entry.time for entry in merged] == [1, 2, 3, 4, 9, 10]

    def test_merge_preserves_all_entries(self, federation):
        merged = federation.consolidated_log()
        assert len(merged) == 6
        assert set(merged.distinct_users()) == {"mark", "tim"}

    def test_empty_federation_raises(self):
        with pytest.raises(FederationError):
            AuditFederation().consolidated_log()

    def test_tie_break_is_stable_by_site_order(self):
        fed = AuditFederation()
        fed.register("beta", _site_log("beta", [5], "b_user"))
        fed.register("alpha", _site_log("alpha", [5], "a_user"))
        merged = fed.consolidated_log()
        assert [entry.user for entry in merged] == ["a_user", "b_user"]


class TestVirtualView:
    def test_view_queryable_with_site_column(self, federation):
        db = Database()
        federation.register_view(db)
        result = db.query(
            "SELECT site, COUNT(*) AS n FROM federated_audit "
            "GROUP BY site ORDER BY site"
        )
        assert result.rows == (("cardio", 3), ("er", 3))

    def test_view_reflects_new_entries(self, federation):
        db = Database()
        federation.register_view(db)
        before = db.query("SELECT COUNT(*) FROM federated_audit").scalar()
        federation.member("er").append(
            make_entry(11, "bob", "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        after = db.query("SELECT COUNT(*) FROM federated_audit").scalar()
        assert (before, after) == (6, 7)

    def test_algorithm5_shape_over_view(self, federation):
        db = Database()
        federation.register_view(db)
        result = db.query(
            "SELECT data, purpose, authorized FROM federated_audit "
            "WHERE status = 0 GROUP BY data, purpose, authorized "
            "HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) >= 2"
        )
        assert result.rows == (("referral", "registration", "nurse"),)


class TestLazyMembers:
    def _write_sources(self, tmp_path):
        from repro.audit import io as audit_io
        from repro.store.durable import copy_to_durable
        from repro.store.store import StoreConfig

        cardio = _site_log("cardio", [1, 4, 9], "mark")
        er = _site_log("er", [2, 3, 10], "tim")
        derm = _site_log("derm", [5, 6], "ann")
        audit_io.save_csv(cardio, tmp_path / "cardio.csv")
        audit_io.save_jsonl(er, tmp_path / "er.jsonl")
        copy_to_durable(
            derm, tmp_path / "derm", StoreConfig(fsync="off")
        ).close()
        return cardio, er, derm

    def test_register_path_is_lazy(self, tmp_path):
        self._write_sources(tmp_path)
        fed = AuditFederation()
        fed.register_path("cardio", tmp_path / "cardio.csv")
        (tmp_path / "cardio.csv").unlink()  # never read until accessed
        assert fed.sites == ("cardio",)
        with pytest.raises(FileNotFoundError):
            fed.member("cardio")

    def test_register_path_requires_existing_source(self, tmp_path):
        with pytest.raises(FederationError):
            AuditFederation().register_path("ghost", tmp_path / "missing.csv")

    def test_register_path_rejects_unknown_format(self, tmp_path):
        weird = tmp_path / "trail.xml"
        weird.write_text("<log/>", encoding="utf-8")
        fed = AuditFederation()
        fed.register_path("weird", weird)
        with pytest.raises(FederationError):
            fed.member("weird")

    def test_lazy_consolidation_matches_eager(self, tmp_path):
        cardio, er, derm = self._write_sources(tmp_path)
        eager = AuditFederation()
        eager.register("cardio", cardio)
        eager.register("er", er)
        eager.register("derm", derm)
        lazy = AuditFederation()
        lazy.register_path("cardio", tmp_path / "cardio.csv")
        lazy.register_path("er", tmp_path / "er.jsonl")
        lazy.register_path("derm", tmp_path / "derm")
        assert lazy.consolidated_log().entries == eager.consolidated_log().entries

    def test_register_directory_discovers_all_sources(self, tmp_path):
        self._write_sources(tmp_path)
        fed = AuditFederation()
        added = fed.register_directory(tmp_path)
        assert added == ("cardio", "derm", "er")
        assert len(fed) == 8

    def test_register_directory_ignores_unrelated_files(self, tmp_path):
        self._write_sources(tmp_path)
        (tmp_path / "notes.txt").write_text("hello", encoding="utf-8")
        (tmp_path / "plain_dir").mkdir()
        fed = AuditFederation()
        assert fed.register_directory(tmp_path) == ("cardio", "derm", "er")

    def test_register_directory_empty_raises(self, tmp_path):
        empty = tmp_path / "none"
        empty.mkdir()
        with pytest.raises(FederationError):
            AuditFederation().register_directory(empty)

    def test_durable_member_queryable_in_view(self, tmp_path):
        self._write_sources(tmp_path)
        fed = AuditFederation()
        fed.register_directory(tmp_path)
        db = Database()
        fed.register_view(db)
        result = db.query(
            "SELECT site, COUNT(*) AS n FROM federated_audit "
            "GROUP BY site ORDER BY site"
        )
        assert result.rows == (("cardio", 3), ("derm", 2), ("er", 3))

    def test_duplicate_lazy_site_rejected(self, tmp_path):
        self._write_sources(tmp_path)
        fed = AuditFederation()
        fed.register_path("cardio", tmp_path / "cardio.csv")
        with pytest.raises(FederationError):
            fed.register("cardio", AuditLog())
        with pytest.raises(FederationError):
            fed.register_path("CARDIO", tmp_path / "er.jsonl")
