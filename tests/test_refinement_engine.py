"""Unit tests for Algorithm 2 (the Refinement engine)."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import RefinementError
from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import MiningConfig
from repro.policy.rule import Rule
from repro.refinement.engine import RefinementConfig, refine


class TestSection5:
    def test_full_pipeline_on_table1(self, vocabulary, fig3_store, table1_log):
        result = refine(fig3_store.policy(), table1_log, vocabulary)
        assert result.entry_coverage.ratio == pytest.approx(0.3)
        assert result.coverage.ratio == pytest.approx(0.5)
        assert len(result.practice) == 7
        assert result.candidate_rules == (
            Rule.of(data="referral", purpose="registration", authorized="nurse"),
        )

    def test_pattern_already_in_store_is_pruned(self, vocabulary, fig3_store, table1_log):
        fig3_store.add(
            Rule.of(data="referral", purpose="registration", authorized="nurse")
        )
        result = refine(fig3_store.policy(), table1_log, vocabulary)
        assert result.useful_patterns == ()
        assert len(result.pruned_patterns) == 1

    def test_summary_mentions_candidates(self, vocabulary, fig3_store, table1_log):
        text = refine(fig3_store.policy(), table1_log, vocabulary).summary()
        assert "candidate" in text
        assert "referral" in text


class TestConfiguration:
    def test_empty_log_rejected(self, vocabulary, fig3_store):
        with pytest.raises(RefinementError):
            refine(fig3_store.policy(), AuditLog(), vocabulary)

    def test_mining_config_threaded_through(self, vocabulary, fig3_store, table1_log):
        config = RefinementConfig(mining=MiningConfig(min_support=6))
        result = refine(fig3_store.policy(), table1_log, vocabulary, config)
        assert result.patterns == ()

    def test_custom_miner_threaded_through(self, vocabulary, fig3_store, table1_log):
        config = RefinementConfig(miner=AprioriPatternMiner())
        result = refine(fig3_store.policy(), table1_log, vocabulary, config)
        assert len(result.useful_patterns) == 1

    def test_violation_screening_option(self, vocabulary, fig3_store):
        log = AuditLog()
        tick = 1
        for _ in range(6):
            log.append(
                make_entry(tick, "creep", "psychiatry", "telemarketing", "clerk",
                           status=AccessStatus.EXCEPTION, truth="violation")
            )
            tick += 1
        unscreened = refine(
            fig3_store.policy(), log, vocabulary,
            RefinementConfig(mining=MiningConfig(min_distinct_users=1)),
        )
        # single-user snooping would surface without screening (c=1!)
        assert len(unscreened.useful_patterns) == 1
        screened = refine(
            fig3_store.policy(), log, vocabulary,
            RefinementConfig(
                mining=MiningConfig(min_distinct_users=1),
                exclude_suspected_violations=True,
            ),
        )
        assert screened.useful_patterns == ()

    def test_attribute_subset_coverage(self, vocabulary, fig3_store, table1_log):
        config = RefinementConfig(
            mining=MiningConfig(attributes=("data", "purpose"), min_support=5)
        )
        result = refine(fig3_store.policy(), table1_log, vocabulary, config)
        # coverage is then computed over 2-term audit rules, none of which
        # match the 3-term store rules
        assert result.coverage.ratio == 0.0
        assert result.useful_patterns[0].rule.cardinality == 2
