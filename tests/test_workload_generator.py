"""Unit tests for the synthetic traffic generator."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.policy.store import PolicyStore
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import build_hospital


@pytest.fixture()
def hospital(vocabulary):
    return build_hospital(vocabulary, departments=2, staff_per_role=3, seed=3)


def _env(hospital, **config) -> SyntheticHospitalEnvironment:
    defaults = dict(accesses_per_round=500, seed=3)
    defaults.update(config)
    return SyntheticHospitalEnvironment(hospital, WorkloadConfig(**defaults))


class TestConfigValidation:
    def test_rates_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(noise_rate=1.0)
        with pytest.raises(WorkloadError):
            WorkloadConfig(violation_rate=-0.1)
        with pytest.raises(WorkloadError):
            WorkloadConfig(noise_rate=0.6, violation_rate=0.5)
        with pytest.raises(WorkloadError):
            WorkloadConfig(accesses_per_round=0)

    def test_hospital_must_have_practices(self, vocabulary):
        from repro.workload.hospital import HospitalModel

        empty = HospitalModel("h", vocabulary)
        empty.departments.append(__import__("repro.workload.entities", fromlist=["Department"]).Department("d"))
        with pytest.raises(WorkloadError):
            SyntheticHospitalEnvironment(empty, WorkloadConfig())


class TestSimulation:
    def test_round_size_and_time_order(self, hospital):
        env = _env(hospital)
        log = env.simulate_round(0, PolicyStore())
        assert len(log) == 500
        times = [entry.time for entry in log]
        assert times == sorted(times)

    def test_reproducible_with_same_seed(self, hospital, vocabulary):
        a = _env(hospital).simulate_round(0, PolicyStore())
        b = _env(build_hospital(vocabulary, departments=2, staff_per_role=3, seed=3)).simulate_round(
            0, PolicyStore()
        )
        assert a.entries == b.entries

    def test_empty_store_makes_everything_exceptional(self, hospital):
        log = _env(hospital, violation_rate=0.0, noise_rate=0.0).simulate_round(
            0, PolicyStore()
        )
        assert log.exception_rate() == 1.0
        assert all(entry.truth == "practice" for entry in log)

    def test_full_store_sanctions_workflow_traffic(self, hospital):
        store = hospital.documented_store(1.0, random.Random(3))
        log = _env(hospital, violation_rate=0.0, noise_rate=0.0).simulate_round(0, store)
        assert log.exception_rate() == 0.0

    def test_violations_come_from_single_user(self, hospital):
        log = _env(hospital, violation_rate=0.2).simulate_round(0, PolicyStore())
        snoopers = {e.user for e in log if e.truth == "violation"}
        assert len(snoopers) == 1

    def test_violation_rate_roughly_respected(self, hospital):
        env = _env(hospital, accesses_per_round=4000, violation_rate=0.1)
        log = env.simulate_round(0, PolicyStore())
        labelled = sum(1 for e in log if e.truth == "violation")
        assert labelled == pytest.approx(400, rel=0.25)

    def test_sanctioned_entries_carry_no_truth_label(self, hospital):
        store = hospital.documented_store(1.0, random.Random(3))
        log = _env(hospital, violation_rate=0.0, noise_rate=0.0).simulate_round(0, store)
        assert all(entry.truth == "" for entry in log)

    def test_clock_continues_across_rounds(self, hospital):
        env = _env(hospital)
        first = env.simulate_round(0, PolicyStore())
        second = env.simulate_round(1, PolicyStore())
        assert second[0].time > first[-1].time

    def test_workflow_roles_match_staff(self, hospital):
        log = _env(hospital, violation_rate=0.0, noise_rate=0.0).simulate_round(
            0, PolicyStore()
        )
        role_by_user = {m.user_id: m.role for m in hospital.all_staff()}
        assert all(role_by_user[e.user] == e.authorized for e in log)
