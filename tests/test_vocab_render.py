"""Tests for the Figure 1 tree renderer."""

from __future__ import annotations

from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.render import render_tree, render_vocabulary
from repro.vocab.tree import VocabularyTree


class TestRenderTree:
    def test_single_root(self):
        assert render_tree(VocabularyTree("data")) == "data"

    def test_branch_guides(self):
        tree = VocabularyTree("data")
        tree.add_branch("demographic", ["name", "gender"])
        tree.add("psychiatry")
        text = render_tree(tree)
        assert text.splitlines() == [
            "data",
            "|-- demographic",
            "|   |-- name",
            "|   `-- gender",
            "`-- psychiatry",
        ]

    def test_every_node_rendered(self):
        vocab = healthcare_vocabulary()
        tree = vocab.tree_for("data")
        text = render_tree(tree)
        for node in tree:
            assert node in text

    def test_render_vocabulary_sections(self):
        text = render_vocabulary(healthcare_vocabulary())
        assert "[data]" in text
        assert "[purpose]" in text
        assert "[authorized]" in text
        assert "demographic" in text
        assert "telemarketing" in text
