"""End-to-end tests for the PDP server: admission, reload, drain, HTTP."""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.request

import pytest

from repro.hdb.enforcement import AccessRequest
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import use_registry
from repro.serve import (
    AsyncPdpClient,
    PdpClient,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    protocol,
    run_load,
)
from repro.serve.loadgen import percentile
from repro.store.durable import DurableAuditLog


@pytest.fixture()
def served():
    # a fresh registry per test keeps /metrics assertions deterministic
    with use_registry(MetricsRegistry()):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0)).start()
    try:
        yield engine, srv
    finally:
        srv.stop()


def http_get(srv, path):
    with urllib.request.urlopen(
        f"http://{srv.host}:{srv.port}{path}", timeout=10
    ) as response:
        return response.status, response.read()


class TestFrameProtocolServing:
    def test_ping_and_version_stamp(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            response = client.ping()
        assert response["ok"] is True
        assert response["op"] == "pong"
        assert set(response["versions"]) == {"snapshot", "policy", "consent", "vocab"}

    def test_request_ids_echoed_in_order(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            for _ in range(5):
                sent = client._ids._next + 1
                response = client.decide("u", "physician", "treatment",
                                         ["prescription"])
                assert response["id"] == sent

    def test_pipelined_frames_answered_in_order(self, served):
        _, srv = served
        import socket

        with socket.create_connection((srv.host, srv.port), timeout=10) as sock:
            frames = b"".join(
                protocol.encode_frame(
                    {"op": "ping", "id": index} if index % 2 == 0 else
                    {"op": "decide", "id": index, "user": "u",
                     "role": "physician", "purpose": "treatment",
                     "categories": ["prescription"]}
                )
                for index in range(6)
            )
            sock.sendall(frames)
            reader = sock.makefile("rb")
            ids = [protocol.decode_frame(reader.readline())["id"]
                   for _ in range(6)]
        assert ids == list(range(6))

    def test_decide_and_query_agree_with_engine(self, served):
        engine, srv = served
        reference = build_demo_engine(rows=30, seed=7)
        with PdpClient(srv.host, srv.port) as client:
            served_response = client.query(
                "alice", "physician", "treatment",
                "SELECT prescription, insurance FROM patients LIMIT 3",
            )
        local = reference.manager.current.enforcer.execute(
            AccessRequest(user="alice", role="physician", purpose="treatment",
                          sql="SELECT prescription, insurance FROM patients LIMIT 3")
        )
        assert served_response["rows"] == [list(r) for r in local.result.rows]
        assert tuple(served_response["returned"]) == local.categories_returned

    def test_stats_op_reports_server_state(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            client.decide("u", "physician", "treatment", ["prescription"])
            stats = client.stats()
        assert stats["decisions_served"] == 1
        assert stats["server"]["draining"] is False
        assert stats["server"]["connections"] >= 1


class TestHotReload:
    def test_add_rule_changes_decisions_and_stamps(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            before = client.decide("u", "physician", "treatment",
                                   ["insurance"])
            assert before["code"] == protocol.DENIED
            reload = client.add_rule(
                "ALLOW physician TO USE insurance FOR treatment"
            )
            assert reload["ok"] is True
            after = client.decide("u", "physician", "treatment", ["insurance"])
        assert after["code"] == protocol.OK
        assert after["versions"]["snapshot"] > before["versions"]["snapshot"]
        assert after["versions"]["policy"] > before["versions"]["policy"]

    def test_consent_reload_affects_query_masking(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            baseline = client.query("u", "physician", "treatment",
                                    "SELECT pid, prescription FROM patients "
                                    "WHERE pid = 'p000001'")
            assert baseline["rows"][0][1] is not None
            client.record_consent("p000001", "treatment", allowed=False,
                                  data="prescription")
            masked = client.query("u", "physician", "treatment",
                                  "SELECT pid, prescription FROM patients "
                                  "WHERE pid = 'p000001'")
        assert masked["rows"][0][1] is None
        assert masked["versions"]["consent"] > baseline["versions"]["consent"]

    def test_hot_reload_under_concurrent_decision_traffic(self, served):
        """The COW regression: swaps mid-traffic never corrupt a decision."""
        _, srv = served
        errors: list[str] = []
        stop = threading.Event()

        def pound():
            with PdpClient(srv.host, srv.port) as client:
                while not stop.is_set():
                    response = client.decide("u", "physician", "treatment",
                                             ["prescription", "insurance"])
                    if response["code"] not in (protocol.OK, protocol.DENIED):
                        errors.append(response["code"])
                    returned = set(response.get("returned", ()))
                    # whichever snapshot served it, prescription is allowed
                    if response["code"] == protocol.OK and "prescription" not in returned:
                        errors.append(f"lost prescription: {response}")

        workers = [threading.Thread(target=pound) for _ in range(3)]
        for worker in workers:
            worker.start()
        try:
            with PdpClient(srv.host, srv.port) as admin:
                for index in range(10):
                    if index % 2 == 0:
                        admin.add_rule(
                            "ALLOW physician TO USE insurance FOR treatment"
                        )
                    else:
                        admin.retire_rule(
                            "ALLOW physician TO USE insurance FOR treatment"
                        )
                    time.sleep(0.01)
        finally:
            stop.set()
            for worker in workers:
                worker.join(10)
        assert errors == []

    def test_consent_update_races_decision_traffic_on_the_loop(self, served):
        """Satellite regression: ConsentStore swaps must never trip a
        reader mid-iteration (the in-place-mutation failure mode)."""
        _, srv = served

        async def drive():
            deciders = [AsyncPdpClient(srv.host, srv.port) for _ in range(4)]
            admin = AsyncPdpClient(srv.host, srv.port)
            for client in (*deciders, admin):
                await client.connect()

            async def decide_loop(client, count):
                outcomes = []
                for _ in range(count):
                    response = await client.query(
                        "u", "physician", "treatment",
                        "SELECT pid, prescription FROM patients LIMIT 5",
                    )
                    outcomes.append(response["code"])
                return outcomes

            async def consent_loop(count):
                for index in range(count):
                    await admin.record_consent(
                        f"p{index % 7:06d}", "treatment", allowed=bool(index % 2),
                        data="prescription",
                    )
                return []

            results = await asyncio.gather(
                *(decide_loop(client, 25) for client in deciders),
                consent_loop(25),
            )
            for client in (*deciders, admin):
                await client.close()
            return [code for outcome in results for code in outcome]

        codes = asyncio.run(drive())
        assert codes and set(codes) == {protocol.OK}


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after(self):
        engine = build_demo_engine(rows=30, seed=7)
        config = ServerConfig(port=0, max_inflight=1, max_queue=0,
                              handling_delay=0.5)
        with ServerThread(engine, config) as srv:
            first_response = {}

            def occupy():
                with PdpClient(srv.host, srv.port) as client:
                    first_response.update(
                        client.decide("u", "physician", "treatment",
                                      ["prescription"])
                    )

            holder = threading.Thread(target=occupy)
            holder.start()
            time.sleep(0.15)  # let the first request take the only slot
            with PdpClient(srv.host, srv.port) as client:
                shed = client.decide("u", "physician", "treatment",
                                     ["prescription"])
            holder.join(10)
        assert shed["code"] == protocol.OVERLOADED
        assert shed["retry_after_ms"] > 0
        assert first_response["code"] == protocol.OK

    def test_shed_requests_are_not_audited(self):
        engine = build_demo_engine(rows=30, seed=7)
        config = ServerConfig(port=0, max_inflight=1, max_queue=0,
                              handling_delay=0.5)
        with ServerThread(engine, config) as srv:
            def occupy():
                with PdpClient(srv.host, srv.port) as client:
                    client.decide("u", "physician", "treatment",
                                  ["prescription"])

            holder = threading.Thread(target=occupy)
            holder.start()
            time.sleep(0.15)
            with PdpClient(srv.host, srv.port) as client:
                shed = client.decide("u", "nurse", "billing", ["insurance"])
            holder.join(10)
        assert shed["code"] == protocol.OVERLOADED
        # only the admitted request reached the trail: one ALLOW entry
        assert [e.user for e in engine.audit_log.entries] == ["u"]
        assert len(engine.audit_log) == 1

    def test_queued_request_times_out_against_deadline(self):
        engine = build_demo_engine(rows=30, seed=7)
        config = ServerConfig(port=0, max_inflight=1, max_queue=8,
                              handling_delay=0.5)
        with ServerThread(engine, config) as srv:
            def occupy():
                with PdpClient(srv.host, srv.port) as client:
                    client.decide("u", "physician", "treatment",
                                  ["prescription"])

            holder = threading.Thread(target=occupy)
            holder.start()
            time.sleep(0.15)
            with PdpClient(srv.host, srv.port) as client:
                timed_out = client.decide("u2", "physician", "treatment",
                                          ["prescription"], deadline_ms=50)
            holder.join(10)
        assert timed_out["code"] == protocol.TIMEOUT
        # the timed-out request never reached the engine: no u2 entries
        assert all(e.user != "u2" for e in engine.audit_log.entries)


class TestShutdown:
    def test_drain_completes_inflight_and_flushes_durable_trail(self, tmp_path):
        durable = DurableAuditLog(tmp_path / "trail", name="served")
        engine = build_demo_engine(rows=30, seed=7, audit_log=durable)
        config = ServerConfig(port=0, handling_delay=0.3)
        srv = ServerThread(engine, config).start()
        inflight_response = {}

        def slow_request():
            with PdpClient(srv.host, srv.port) as client:
                inflight_response.update(
                    client.decide("u", "physician", "treatment",
                                  ["prescription"])
                )

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.1)  # request is admitted and in flight
        srv.stop()  # graceful drain
        worker.join(10)
        assert inflight_response["code"] == protocol.OK
        # zero lost audit entries: the durable trail holds the decision
        reopened = DurableAuditLog(tmp_path / "trail", create=False)
        assert len(reopened) == 1
        assert reopened.entries[0].user == "u"
        reopened.close()

    def test_new_decisions_rejected_while_draining(self):
        engine = build_demo_engine(rows=30, seed=7)
        config = ServerConfig(port=0, handling_delay=0.5)
        srv = ServerThread(engine, config).start()
        try:
            # an in-flight request keeps the drain window open
            def slow():
                with PdpClient(srv.host, srv.port) as client:
                    client.decide("u", "physician", "treatment",
                                  ["prescription"])

            preopened = PdpClient(srv.host, srv.port).connect()
            worker = threading.Thread(target=slow)
            worker.start()
            time.sleep(0.15)
            with PdpClient(srv.host, srv.port) as admin:
                ack = admin.shutdown_server()
            assert ack["draining"] is True
            follow_up = preopened.request(
                {"op": "decide", "user": "u2", "role": "physician",
                 "purpose": "treatment", "categories": ["prescription"]},
                idempotent=False,
            )
            preopened.close()
            worker.join(10)
            assert follow_up["code"] == protocol.SHUTTING_DOWN
        finally:
            srv.stop()

    def test_listener_closed_after_shutdown(self):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0)).start()
        port = srv.port
        srv.stop()
        import socket

        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5).close()


class TestHttpShim:
    def test_healthz(self, served):
        engine, srv = served
        status, body = http_get(srv, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["versions"] == engine.versions()

    def test_metrics_exposition(self, served):
        _, srv = served
        with PdpClient(srv.host, srv.port) as client:
            client.decide("u", "physician", "treatment", ["prescription"])
        status, body = http_get(srv, "/metrics")
        text = body.decode()
        assert status == 200
        assert 'repro_serve_requests_total{code="OK",op="decide"} 1' in text
        assert "repro_serve_decision_cache_misses_total" in text

    def test_post_decide_allows(self, served):
        _, srv = served
        request = urllib.request.Request(
            f"http://{srv.host}:{srv.port}/decide",
            data=json.dumps({"user": "u", "role": "physician",
                             "purpose": "treatment",
                             "categories": ["prescription"]}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["code"] == protocol.OK

    def test_post_decide_maps_denial_to_403(self, served):
        _, srv = served
        request = urllib.request.Request(
            f"http://{srv.host}:{srv.port}/decide",
            data=json.dumps({"user": "u", "role": "nurse",
                             "purpose": "billing",
                             "categories": ["insurance"]}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 403
        assert json.loads(info.value.read())["code"] == protocol.DENIED

    def test_unknown_route_is_404(self, served):
        _, srv = served
        with pytest.raises(urllib.error.HTTPError) as info:
            http_get(srv, "/nope")
        assert info.value.code == 404


class TestLoadDriver:
    def test_run_load_counts_every_outcome(self, served):
        _, srv = served
        payloads = [
            {"op": "decide", "user": f"u{i}", "role": "physician",
             "purpose": "treatment", "categories": ["prescription"]}
            for i in range(20)
        ] + [
            {"op": "decide", "user": "x", "role": "nurse",
             "purpose": "billing", "categories": ["insurance"]}
            for _ in range(5)
        ]
        report = run_load(srv.host, srv.port, payloads, clients=3)
        assert report.requests == 25
        assert report.ok == 20
        assert report.denied == 5
        assert report.errors == 0
        assert report.throughput > 0
        summary = report.summary()
        assert summary["codes"] == {"DENIED": 5, "OK": 20}
        assert summary["p50_ms"] <= summary["p99_ms"]

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0


class TestRefineDaemonServing:
    """The embedded refinement daemon against live decision traffic."""

    def _served_with_daemon(self, tmp_path):
        from repro.mining.patterns import MiningConfig
        from repro.refine_daemon import (
            AutoAcceptGate,
            DaemonConfig,
            EnginePolicyTarget,
            RefineDaemon,
        )
        from repro.vocab.builtin import healthcare_vocabulary

        audit = DurableAuditLog(tmp_path / "served")
        engine = build_demo_engine(rows=20, seed=7, audit_log=audit)
        daemon = RefineDaemon(
            audit,
            EnginePolicyTarget(engine),
            healthcare_vocabulary(),
            AutoAcceptGate(min_support=5, min_distinct_users=2),
            DaemonConfig(mining=MiningConfig(min_support=5, min_distinct_users=2)),
        )
        srv = ServerThread(engine, ServerConfig(port=0), daemon=daemon).start()
        return audit, engine, daemon, srv

    def test_daemon_adoption_racing_decide_traffic_is_serializable(
        self, tmp_path
    ):
        """Every response must be byte-identical to what *some* serial
        ordering of the two snapshots produces: its stamped policy
        revision decides its verdict exactly — deny strictly before the
        daemon's rule landed, allow from that revision on."""
        from repro.refine_daemon import EnginePolicyTarget
        from repro.policy.parser import parse_rule

        audit = DurableAuditLog(tmp_path / "served")
        engine = build_demo_engine(rows=20, seed=7, audit_log=audit)
        target = EnginePolicyTarget(engine)
        rule = parse_rule("ALLOW physician TO USE insurance FOR treatment")
        srv = ServerThread(engine, ServerConfig(port=0)).start()
        observations: list[tuple[int, str, tuple[str, ...]]] = []
        stop = threading.Event()
        errors: list[str] = []

        def pound():
            with PdpClient(srv.host, srv.port) as client:
                while not stop.is_set():
                    response = client.decide(
                        "u", "physician", "treatment", ["insurance"]
                    )
                    if response["code"] not in (protocol.OK, protocol.DENIED):
                        errors.append(response["code"])
                        continue
                    observations.append(
                        (
                            response["versions"]["policy"],
                            response["decision"],
                            tuple(response.get("returned", ())),
                        )
                    )

        workers = [threading.Thread(target=pound) for _ in range(3)]
        for worker in workers:
            worker.start()
        try:
            time.sleep(0.15)  # a batch of pre-swap traffic
            snapshot, added = target.engine.adopt_rules([rule])
            assert added == 1
            adopted_revision = snapshot.policy_store.revision
            time.sleep(0.15)  # a batch of post-swap traffic
        finally:
            stop.set()
            for worker in workers:
                worker.join(10)
            srv.stop()
        audit.close()
        assert errors == []
        before = [o for o in observations if o[0] < adopted_revision]
        after = [o for o in observations if o[0] >= adopted_revision]
        assert before and after  # the race actually happened on both sides
        assert all(decision == "deny" and returned == ()
                   for _, decision, returned in before)
        assert all(decision == "allow" and returned == ("insurance",)
                   for _, decision, returned in after)

    def test_stats_op_surfaces_daemon_state(self, tmp_path):
        audit, engine, daemon, srv = self._served_with_daemon(tmp_path)
        try:
            daemon.poll()
            with PdpClient(srv.host, srv.port) as client:
                stats = client.request({"op": "stats"})
            assert stats["ok"] is True
            state = stats["refine_daemon"]
            assert state["polls"] == 1
            assert state["lag_entries"] == state["trail_entries"] - state[
                "watermark_entries"
            ]
            assert set(state["coverage"]) == {"set", "entry"}
        finally:
            srv.stop()
            audit.close()

    def test_healthz_surfaces_daemon_state(self, tmp_path):
        audit, engine, daemon, srv = self._served_with_daemon(tmp_path)
        try:
            daemon.poll()
            status, body = http_get(srv, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["refine_daemon"]["polls"] == 1
            assert payload["refine_daemon"]["watermark_entries"] == 0
        finally:
            srv.stop()
            audit.close()

    def test_healthz_without_daemon_omits_the_key(self, served):
        _, srv = served
        status, body = http_get(srv, "/healthz")
        assert status == 200
        assert "refine_daemon" not in json.loads(body)
