"""Unit tests for the tracing layer (:mod:`repro.obs.trace`).

Covers the traceparent wire format (strict parse, round trip), the
context-variable span tree (``obs.span`` integration, ``record_span``,
``annotate``, ``mark_keep`` — all no-ops when untraced), the retention
policy (head sampling, error / slow / marked overrides, remote parents
always kept), the bounded ring-buffer store, histogram exemplars, and
the log-bucket quantile estimator behind ``repro metrics --format
summary``.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import trace as obstrace
from repro.obs.metrics import Histogram, estimate_quantile
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    TraceStore,
    Tracer,
    format_traceparent,
    parse_traceparent,
    use_tracer,
)


class TestTraceparentWireFormat:
    def test_round_trip(self):
        trace_id = obstrace.new_trace_id()
        span_id = obstrace.new_span_id()
        context = parse_traceparent(format_traceparent(trace_id, span_id))
        assert context.trace_id == trace_id
        assert context.span_id == span_id

    def test_ids_are_lowercase_hex_of_exact_width(self):
        assert len(obstrace.new_trace_id()) == 32
        assert len(obstrace.new_span_id()) == 16
        assert obstrace.TRACEPARENT_RE.match(
            format_traceparent(obstrace.new_trace_id(), obstrace.new_span_id())
        )

    @pytest.mark.parametrize("bad", [
        "",
        "garbage",
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # wrong version
        "00-" + "A" * 32 + "-" + "b" * 16 + "-01",  # uppercase hex
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
        "00-" + "a" * 32 + "-" + "b" * 16 + "-1",   # short flags
        None,
        42,
    ])
    def test_malformed_values_raise(self, bad):
        with pytest.raises(ObservabilityError):
            parse_traceparent(bad)

    def test_child_context_keeps_trace_id_and_links_parent(self):
        parent = parse_traceparent(
            format_traceparent(obstrace.new_trace_id(), obstrace.new_span_id())
        )
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id


class TestRetentionPolicy:
    def test_head_sampling_keeps_every_nth_root(self):
        tracer = Tracer(sample_every=4)
        for _ in range(8):
            with tracer.trace("repro_test"):
                pass
        assert tracer.kept == 2
        assert tracer.dropped == 6
        assert all("head" in t["keep"] for t in tracer.store.list())

    def test_error_always_keeps(self):
        tracer = Tracer(sample_every=1000)
        with pytest.raises(ValueError):
            with tracer.trace("repro_test"):
                raise ValueError("boom")
        [summary] = tracer.store.list()
        assert "error" in summary["keep"]
        assert summary["error"] == "ValueError"

    def test_slow_always_keeps(self):
        tracer = Tracer(sample_every=1000, slow_threshold=0.0)
        with tracer.trace("repro_test"):
            pass
        [summary] = tracer.store.list()
        assert "slow" in summary["keep"]

    def test_mark_keep_always_keeps_with_reason(self):
        tracer = Tracer(sample_every=1000)
        with tracer.trace("repro_test"):
            # skip the head-sampled first root
            pass
        with tracer.trace("repro_test"):
            obstrace.mark_keep("shed")
        assert tracer.kept == 2
        assert "shed" in tracer.store.list()[0]["keep"]

    def test_remote_parent_always_kept_and_linked(self):
        tracer = Tracer(sample_every=1000)
        with tracer.trace("repro_test"):
            pass  # consume the head sample
        traceparent = format_traceparent("ab" * 16, "cd" * 8)
        with tracer.trace("repro_test", traceparent=traceparent) as root:
            assert root.trace_id == "ab" * 16
        trace = tracer.store.get("ab" * 16)
        assert trace is not None
        assert trace["parent_id"] == "cd" * 8

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.trace("repro_test") as root:
            assert obstrace.current() is None
            assert root.trace_id == ""
        assert NULL_TRACER.stats()["enabled"] is False
        assert len(NULL_TRACER.store) == 0

    def test_bad_sample_every_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer(sample_every=0)


class TestSpanTree:
    def test_obs_spans_become_child_spans(self):
        tracer = Tracer(sample_every=1)
        registry = MetricsRegistry()
        with tracer.trace("repro_test_root"):
            with registry.span("repro_test_outer", stage="a"):
                with registry.span("repro_test_inner"):
                    pass
        [trace] = [tracer.store.get(t["trace_id"]) for t in tracer.store.list()]
        spans = {span["name"]: span for span in trace["spans"]}
        assert set(spans) == {
            "repro_test_root", "repro_test_outer", "repro_test_inner"
        }
        root = spans["repro_test_root"]
        outer = spans["repro_test_outer"]
        inner = spans["repro_test_inner"]
        assert outer["parent_id"] == root["span_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["labels"] == {"stage": "a"}

    def test_record_span_and_annotate_attach_to_active_trace(self):
        tracer = Tracer(sample_every=1)
        with tracer.trace("repro_test"):
            started = time.perf_counter()
            obstrace.record_span("repro_test_wait", started, 0.001,
                                 labels={"k": "v"}, error="deadline")
            obstrace.annotate(queue_ms=1.0, user="alice")
        trace = tracer.store.get(tracer.store.list()[0]["trace_id"])
        [wait] = [s for s in trace["spans"] if s["name"] == "repro_test_wait"]
        assert wait["labels"] == {"k": "v"}
        assert wait["error"] == "deadline"
        assert trace["annotations"] == {"queue_ms": 1.0, "user": "alice"}

    def test_helpers_are_noops_when_untraced(self):
        assert obstrace.current() is None
        assert obstrace.current_trace_id() is None
        obstrace.record_span("repro_test", time.perf_counter(), 0.0)
        obstrace.annotate(x=1)
        obstrace.mark_keep("whatever")
        assert obstrace.enter_child("repro_test", {}) is None

    def test_current_trace_id_matches_root(self):
        tracer = Tracer(sample_every=1)
        with tracer.trace("repro_test") as root:
            assert obstrace.current_trace_id() == root.trace_id
        assert obstrace.current_trace_id() is None


class TestTraceStore:
    def _trace(self, trace_id: str, duration: float) -> dict:
        return {"trace_id": trace_id, "name": "t", "parent_id": "",
                "start_unix": 0.0, "duration_ms": duration, "error": None,
                "keep": ["head"], "annotations": {}, "spans": [{}, {}]}

    def test_ring_buffer_evicts_oldest(self):
        store = TraceStore(capacity=3)
        for index in range(5):
            store.add(self._trace(f"{index:032x}", float(index)))
        assert len(store) == 3
        assert store.get(f"{0:032x}") is None
        assert store.get(f"{4:032x}") is not None

    def test_list_is_newest_first_summaries(self):
        store = TraceStore(capacity=8)
        for index in range(4):
            store.add(self._trace(f"{index:032x}", float(index)))
        summaries = store.list(limit=2)
        assert [s["trace_id"] for s in summaries] == [f"{3:032x}", f"{2:032x}"]
        assert all(s["spans"] == 2 for s in summaries)

    def test_slow_orders_by_duration(self):
        store = TraceStore(capacity=8)
        for index, duration in enumerate([1.0, 9.0, 4.0]):
            store.add(self._trace(f"{index:032x}", duration))
        assert [s["duration_ms"] for s in store.slow()] == [9.0, 4.0, 1.0]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            TraceStore(capacity=0)


class TestTracerSwap:
    def test_use_tracer_swaps_and_restores(self):
        before = obstrace.get_tracer()
        replacement = Tracer(sample_every=1)
        with use_tracer(replacement):
            assert obstrace.get_tracer() is replacement
        assert obstrace.get_tracer() is before


class TestExemplarsAndQuantiles:
    def test_exemplar_attaches_to_bucket(self):
        histogram = Histogram("h", {}, (0.001, 0.01, 0.1))
        histogram.observe(0.005, exemplar="ab" * 16)
        [exemplar] = histogram.exemplars()
        assert exemplar["trace_id"] == "ab" * 16
        assert exemplar["value"] == 0.005
        assert exemplar["le"] == 0.01

    def test_exemplar_free_histogram_reports_none(self):
        histogram = Histogram("h", {}, (0.001, 0.01))
        histogram.observe(0.005)
        assert histogram.exemplars() == []

    def test_span_observation_carries_trace_exemplar(self):
        tracer = Tracer(sample_every=1)
        registry = MetricsRegistry()
        with tracer.trace("repro_test") as root:
            with registry.span("repro_test_work"):
                pass
        [exemplar] = registry.histogram(
            "repro_test_work_seconds"
        ).exemplars()
        assert exemplar["trace_id"] == root.trace_id

    def test_estimate_quantile_interpolates_geometrically(self):
        histogram = Histogram("h", {}, (0.001, 0.01, 0.1))
        for value in [0.002, 0.003, 0.004, 0.005]:
            histogram.observe(value)
        p50 = estimate_quantile(histogram.cumulative_buckets(), 0.50)
        assert 0.001 < p50 < 0.01

    def test_estimate_quantile_empty_histogram_is_none(self):
        histogram = Histogram("h", {}, (0.001, 0.01))
        assert estimate_quantile(histogram.cumulative_buckets(), 0.5) is None

    def test_estimate_quantile_rejects_out_of_range(self):
        with pytest.raises(ObservabilityError):
            estimate_quantile([(1.0, 1)], 1.5)
