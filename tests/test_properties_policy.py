"""Property-based tests for the formal model (hypothesis).

These pin the invariants the paper's definitions promise: grounding always
terminates in vocabulary leaves (Definition 3 / Corollaries 1-2), ground
equivalence is an equivalence relation, ranges behave like sets, and
coverage is a monotone ratio in [0, 1].
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.policy.grounding import Grounder, policy_range
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.policy.ruleterm import RuleTerm
from repro.vocab.builtin import healthcare_vocabulary

VOCAB = healthcare_vocabulary()
_DATA_VALUES = sorted(VOCAB.tree_for("data"))
_PURPOSE_VALUES = sorted(VOCAB.tree_for("purpose"))
_ROLE_VALUES = sorted(VOCAB.tree_for("authorized"))

data_values = st.sampled_from(_DATA_VALUES)
purpose_values = st.sampled_from(_PURPOSE_VALUES)
role_values = st.sampled_from(_ROLE_VALUES)


@st.composite
def rules(draw) -> Rule:
    return Rule.of(
        data=draw(data_values),
        purpose=draw(purpose_values),
        authorized=draw(role_values),
    )


policies = st.lists(rules(), min_size=1, max_size=8).map(Policy)


class TestGroundingProperties:
    @given(data_values)
    def test_ground_values_are_vocabulary_leaves(self, value):
        tree = VOCAB.tree_for("data")
        for ground in VOCAB.ground_values("data", value):
            assert tree.is_leaf(ground)

    @given(rules())
    def test_every_expansion_is_ground(self, rule):
        for ground in rule.ground_rules(VOCAB):
            assert ground.is_ground(VOCAB)

    @given(rules())
    def test_expansion_never_empty(self, rule):
        assert len(rule.ground_rules(VOCAB)) >= 1

    @given(rules())
    def test_expansion_size_is_product_of_fanouts(self, rule):
        expected = 1
        for term in rule.terms:
            expected *= VOCAB.fanout(term.attr, term.value)
        assert len(rule.ground_rules(VOCAB)) == expected

    @given(rules())
    def test_rule_covers_its_whole_expansion(self, rule):
        for ground in rule.ground_rules(VOCAB):
            assert rule.covers(ground, VOCAB)
            assert rule.equivalent(ground, VOCAB)

    @given(policies)
    def test_range_of_ground_policy_is_its_rule_set(self, policy):
        ground_policy = Policy(policy.ground_rules(VOCAB))
        rng = policy_range(ground_policy, VOCAB)
        assert set(rng) == set(ground_policy.ground_rules(VOCAB))

    @given(policies)
    def test_memoised_grounder_matches_fresh(self, policy):
        grounder = Grounder(VOCAB)
        first = grounder.range_of(policy)
        second = grounder.range_of(policy)  # all cache hits
        assert first == second == policy_range(policy, VOCAB)


class TestEquivalenceProperties:
    @given(data_values, data_values)
    def test_term_equivalence_symmetric(self, a, b):
        left = RuleTerm("data", a)
        right = RuleTerm("data", b)
        assert left.equivalent(right, VOCAB) == right.equivalent(left, VOCAB)

    @given(data_values)
    def test_term_equivalence_reflexive(self, value):
        term = RuleTerm("data", value)
        assert term.equivalent(term, VOCAB)

    @given(rules(), rules())
    def test_rule_equivalence_symmetric(self, a, b):
        assert a.equivalent(b, VOCAB) == b.equivalent(a, VOCAB)

    @given(rules(), rules())
    def test_ground_rule_equivalence_is_equality(self, a, b):
        ground_a = a.ground_rules(VOCAB)[0]
        ground_b = b.ground_rules(VOCAB)[0]
        assert ground_a.equivalent(ground_b, VOCAB) == (ground_a == ground_b)


class TestCoverageProperties:
    @settings(max_examples=50)
    @given(policies, policies)
    def test_ratio_in_unit_interval(self, cover, reference):
        report = compute_coverage(cover, reference, VOCAB)
        assert 0.0 <= report.ratio <= 1.0

    @given(policies)
    def test_self_coverage_is_complete(self, policy):
        report = compute_coverage(policy, policy, VOCAB)
        assert report.ratio == 1.0
        assert report.complete

    @settings(max_examples=50)
    @given(policies, policies)
    def test_complete_iff_ratio_one(self, cover, reference):
        report = compute_coverage(cover, reference, VOCAB)
        assert report.complete == (report.ratio == 1.0)

    @settings(max_examples=50)
    @given(policies, policies, rules())
    def test_adding_rules_never_decreases_coverage(self, cover, reference, extra):
        before = compute_coverage(cover, reference, VOCAB).ratio
        grown = Policy([*cover, extra])
        after = compute_coverage(grown, reference, VOCAB).ratio
        assert after >= before

    @settings(max_examples=50)
    @given(policies, policies)
    def test_overlap_bounded_by_both_ranges(self, cover, reference):
        report = compute_coverage(cover, reference, VOCAB)
        assert report.overlap.cardinality <= report.covering.cardinality
        assert report.overlap.cardinality <= report.reference.cardinality

    @settings(max_examples=50)
    @given(policies, st.lists(rules(), min_size=1, max_size=10))
    def test_entry_coverage_consistent_with_counts(self, cover, trace):
        ground_trace = [rule.ground_rules(VOCAB)[0] for rule in trace]
        report = compute_entry_coverage(cover, ground_trace, VOCAB)
        assert report.matched + len(report.uncovered_entries) == report.total
        assert report.ratio == report.matched / report.total
