"""Unit tests for association-rule derivation."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining.apriori import apriori
from repro.mining.association import derive_rules


def _itemset(*pairs):
    return frozenset(pairs)


@pytest.fixture()
def itemsets():
    # 10 transactions: {a=1,b=1} x8, {a=1,b=2} x2
    transactions = [_itemset(("a", "1"), ("b", "1"))] * 8
    transactions += [_itemset(("a", "1"), ("b", "2"))] * 2
    return apriori(transactions, 2), len(transactions)


class TestDeriveRules:
    def test_confidence_and_support(self, itemsets):
        frequent, n = itemsets
        rules = derive_rules(frequent, n, min_confidence=0.5)
        # b=1 => a=1 has confidence 1.0 (8/8), support 0.8
        rule = next(
            r for r in rules
            if r.antecedent == _itemset(("b", "1")) and r.consequent == _itemset(("a", "1"))
        )
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(0.8)

    def test_lift(self, itemsets):
        frequent, n = itemsets
        rules = derive_rules(frequent, n, min_confidence=0.5)
        rule = next(
            r for r in rules
            if r.antecedent == _itemset(("b", "1")) and r.consequent == _itemset(("a", "1"))
        )
        # support(a=1) = 1.0, so lift = 1.0 (a=1 is universal)
        assert rule.lift == pytest.approx(1.0)

    def test_min_confidence_filters(self, itemsets):
        frequent, n = itemsets
        strict = derive_rules(frequent, n, min_confidence=0.9)
        # a=1 => b=1 has confidence 0.8 and is dropped
        assert not any(
            r.antecedent == _itemset(("a", "1")) and r.consequent == _itemset(("b", "1"))
            for r in strict
        )

    def test_sorted_by_confidence_then_support(self, itemsets):
        frequent, n = itemsets
        rules = derive_rules(frequent, n, min_confidence=0.1)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_singletons_produce_no_rules(self):
        frequent = apriori([_itemset(("a", "1"))] * 3, 2)
        assert derive_rules(frequent, 3) == ()

    def test_validation(self, itemsets):
        frequent, n = itemsets
        with pytest.raises(MiningError):
            derive_rules(frequent, 0)
        with pytest.raises(MiningError):
            derive_rules(frequent, n, min_confidence=0.0)
        with pytest.raises(MiningError):
            derive_rules(frequent, n, min_confidence=1.5)

    def test_str_rendering(self, itemsets):
        frequent, n = itemsets
        rules = derive_rules(frequent, n, min_confidence=0.5)
        assert "=>" in str(rules[0])
