"""Integration tests: the pipeline observed end to end through its telemetry.

These run real workloads — a three-round refinement loop, enforced SQL
queries, the simulate→enforcement replay — under a private registry and
assert on what the instruments recorded, which is exactly what a scraper
or the CLI's ``--metrics-out`` would see.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.harness import (
    clinical_db_setup,
    replay_through_enforcement,
    run_refinement_loop,
    standard_loop_setup,
)
from repro.refinement.review import ThresholdReview


def _sample(snapshot: dict, section: str, name: str, **labels: str) -> dict | None:
    wanted = {key: str(value) for key, value in labels.items()}
    for sample in snapshot[section]:
        if sample["name"] == name and sample["labels"] == wanted:
            return sample
    return None


@pytest.fixture(scope="module")
def loop_run():
    """One three-round loop, observed by a private registry."""
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        setup = standard_loop_setup(accesses_per_round=800, seed=3)
        result = run_refinement_loop(setup, ThresholdReview(), rounds=3)
        snapshot = registry.snapshot()
    return result, snapshot


class TestRefinementLoopTelemetry:
    def test_every_stage_has_a_span_histogram(self, loop_run):
        _, snapshot = loop_run
        for stage in ("simulate", "coverage", "filter", "extract", "prune",
                      "review"):
            sample = _sample(snapshot, "histograms",
                             "repro_refinement_stage_seconds", stage=stage)
            assert sample is not None, f"missing stage span for {stage!r}"
            assert sample["count"] == 3  # one per round

    def test_round_counters_match_loop_result(self, loop_run):
        result, snapshot = loop_run
        rounds = _sample(snapshot, "counters", "repro_refinement_rounds_total")
        assert rounds["value"] == 3.0
        accepted = _sample(snapshot, "counters",
                           "repro_refinement_rules_accepted_total")
        assert accepted["value"] == sum(r.rules_accepted for r in result.rounds)
        entries = _sample(snapshot, "counters", "repro_refinement_entries_total")
        assert entries["value"] == sum(r.entries for r in result.rounds)

    def test_grounder_cache_hits_recorded_and_grow(self, loop_run):
        _, snapshot = loop_run
        hits = _sample(snapshot, "counters", "repro_policy_grounder_cache_hits_total")
        misses = _sample(snapshot, "counters",
                         "repro_policy_grounder_cache_misses_total")
        assert hits is not None and hits["value"] > 0
        assert misses is not None and misses["value"] > 0

    def test_per_round_metrics_deltas_sum_to_totals(self, loop_run):
        result, snapshot = loop_run
        series = result.metrics_series("repro_policy_grounder_cache_hits_total")
        assert len(series) == 3
        assert all(value > 0 for value in series)
        hits = _sample(snapshot, "counters", "repro_policy_grounder_cache_hits_total")
        assert sum(series) == pytest.approx(hits["value"])

    def test_round_reports_carry_stage_span_deltas(self, loop_run):
        result, _ = loop_run
        for report in result.rounds:
            key = 'repro_refinement_stage_seconds{stage="prune"}#count'
            assert report.metrics.get(key) == 1.0

    def test_coverage_computations_counted(self, loop_run):
        _, snapshot = loop_run
        by_kind = {
            kind: _sample(snapshot, "counters",
                          "repro_coverage_computations_total", kind=kind)
            for kind in ("set", "entry")
        }
        assert all(sample and sample["value"] >= 3 for sample in by_kind.values())

    def test_null_registry_leaves_round_metrics_empty(self):
        with obs.use_registry(obs.NULL_REGISTRY):
            setup = standard_loop_setup(accesses_per_round=400, seed=5)
            result = run_refinement_loop(setup, ThresholdReview(), rounds=1)
        assert result.rounds[0].metrics == {}
        assert result.metrics_series("anything") == (0.0,)


class TestEnforcementTelemetry:
    def test_decision_counters_by_purpose_and_role(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            setup = clinical_db_setup(rows=50)
            center = setup.control_center
            center.run("n1", "nurse", "treatment",
                       "SELECT name FROM patients LIMIT 2")
            from repro.errors import AccessDeniedError

            with pytest.raises(AccessDeniedError):
                center.run("n1", "nurse", "billing",
                           "SELECT insurance FROM patients LIMIT 2")
            snapshot = registry.snapshot()
        allow = _sample(snapshot, "counters",
                        "repro_hdb_enforcement_decisions_total",
                        decision="allow", purpose="treatment", role="nurse")
        deny = _sample(snapshot, "counters",
                       "repro_hdb_enforcement_decisions_total",
                       decision="deny", purpose="billing", role="nurse")
        assert allow["value"] == 1.0
        assert deny["value"] == 1.0
        latency = _sample(snapshot, "histograms",
                          "repro_hdb_enforcement_execute_seconds")
        assert latency["count"] == 2

    def test_sqlmini_and_audit_counters(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            setup = clinical_db_setup(rows=25)
            setup.control_center.run("n1", "nurse", "treatment",
                                     "SELECT name FROM patients LIMIT 3")
            snapshot = registry.snapshot()
        selects = _sample(snapshot, "counters", "repro_sqlmini_statements_total",
                          kind="select")
        assert selects is not None and selects["value"] >= 1
        returned = _sample(snapshot, "counters",
                           "repro_sqlmini_rows_returned_total")
        assert returned["value"] >= 3
        entries = _sample(snapshot, "counters", "repro_hdb_audit_entries_total")
        assert entries is not None and entries["value"] >= 1
        log_size = _sample(snapshot, "gauges", "repro_hdb_audit_log_size")
        assert log_size["value"] >= 1


class TestEnforcementReplay:
    def test_replay_exercises_enforcement_from_simulated_traffic(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            setup = standard_loop_setup(accesses_per_round=400, seed=3)
            result = run_refinement_loop(setup, ThresholdReview(), rounds=1)
            stats = replay_through_enforcement(
                result.cumulative_log, sample_size=60, rows=30, seed=3
            )
            snapshot = registry.snapshot()
        assert stats.replayed == 60
        assert stats.replayed == stats.allowed + stats.denied
        decisions = [
            sample for sample in snapshot["counters"]
            if sample["name"] == "repro_hdb_enforcement_decisions_total"
        ]
        assert sum(sample["value"] for sample in decisions) >= stats.replayed
        assert {sample["labels"]["decision"] for sample in decisions} >= {
            "allow", "deny"
        }
