"""Tests for corpus bundle persistence, digests and stats."""

from __future__ import annotations

import json

import pytest

from repro.corpus import (
    BUNDLE_FILES,
    CorpusSpec,
    bundle_digest,
    corpus_stats,
    generate_corpus,
    load_corpus,
    render_stats,
    save_corpus,
    simulate_corpus_trace,
    verify_determinism,
)
from repro.errors import CorpusError

SPEC = CorpusSpec(seed=3, departments=3, staff_per_role=2, patients=30,
                  rounds=1, accesses_per_round=400, protocol_rules=5)


@pytest.fixture()
def bundle_dir(tmp_path):
    corpus = generate_corpus(SPEC)
    trace = simulate_corpus_trace(corpus)
    save_corpus(corpus, trace, tmp_path / "bundle")
    return tmp_path / "bundle"


def test_save_writes_every_bundle_file(bundle_dir):
    for name in BUNDLE_FILES:
        assert (bundle_dir / name).exists()
    assert (bundle_dir / "CORPUS.json").exists()


def test_load_roundtrips_the_corpus(bundle_dir):
    loaded = load_corpus(bundle_dir)
    assert loaded.spec == SPEC
    assert len(tuple(loaded.log)) == SPEC.rounds * SPEC.accesses_per_round
    assert loaded.labels
    assert loaded.manifest["counts"]["entries"] == len(tuple(loaded.log))
    # truth labels survive the JSONL round-trip
    exceptions = [entry for entry in loaded.log if entry.truth]
    assert len(exceptions) == len(loaded.labels)


def test_digest_detects_tampering(bundle_dir):
    recorded = load_corpus(bundle_dir).digest
    target = bundle_dir / "rules.json"
    payload = json.loads(target.read_text())
    payload["rules"][0]["citation"] = "45 CFR 0.0"
    target.write_text(json.dumps(payload))
    assert bundle_digest(bundle_dir) != recorded
    with pytest.raises(CorpusError):
        load_corpus(bundle_dir)
    # verification can be bypassed explicitly
    load_corpus(bundle_dir, verify=False)


def test_digest_requires_every_file(bundle_dir):
    (bundle_dir / "labels.json").unlink()
    with pytest.raises(CorpusError):
        bundle_digest(bundle_dir)


def test_verify_determinism_reproduces_the_bundle(bundle_dir):
    matches, recorded, regenerated = verify_determinism(load_corpus(bundle_dir))
    assert matches
    assert recorded == regenerated


def test_stats_render(bundle_dir):
    stats = corpus_stats(bundle_dir)
    assert stats.entries == SPEC.rounds * SPEC.accesses_per_round
    assert stats.rules_total > 0
    text = render_stats(stats)
    assert "digest" in text
    assert str(stats.entries) in text
