"""Tests for the multi-site environment and federated refinement."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.refinement.engine import RefinementConfig
from repro.refinement.filtering import filter_practice
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import AcceptAll
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.generator import WorkloadConfig
from repro.workload.hospital import build_hospital
from repro.workload.multisite import MultiSiteEnvironment, SiteTraffic


@pytest.fixture()
def hospital(vocabulary):
    return build_hospital(vocabulary, departments=2, staff_per_role=3, seed=13)


def _environment(hospital, accesses: int = 400, sites: int = 3) -> MultiSiteEnvironment:
    return MultiSiteEnvironment(
        hospital,
        [
            SiteTraffic(f"site_{index}", WorkloadConfig(
                accesses_per_round=accesses, seed=13))
            for index in range(sites)
        ],
    )


class TestConstruction:
    def test_sites_registered(self, hospital):
        environment = _environment(hospital)
        assert environment.sites == ("site_0", "site_1", "site_2")

    def test_needs_sites(self, hospital):
        with pytest.raises(WorkloadError):
            MultiSiteEnvironment(hospital, [])

    def test_duplicate_names_rejected(self, hospital):
        with pytest.raises(WorkloadError):
            MultiSiteEnvironment(
                hospital,
                [SiteTraffic("a", WorkloadConfig()), SiteTraffic("a", WorkloadConfig())],
            )


class TestSimulation:
    def test_round_consolidates_all_sites(self, hospital):
        from repro.policy.store import PolicyStore

        environment = _environment(hospital, accesses=200)
        window = environment.simulate_round(0, PolicyStore())
        assert len(window) == 600
        assert len(environment.federation) == 600
        assert all(len(environment.site_log(site)) == 200 for site in environment.sites)

    def test_consolidated_window_is_time_ordered(self, hospital):
        from repro.policy.store import PolicyStore

        environment = _environment(hospital, accesses=150)
        window = environment.simulate_round(0, PolicyStore())
        times = [entry.time for entry in window]
        assert times == sorted(times)

    def test_sites_are_decorrelated(self, hospital):
        from repro.policy.store import PolicyStore

        environment = _environment(hospital, accesses=200, sites=2)
        environment.simulate_round(0, PolicyStore())
        first = [e.to_rule() for e in environment.site_log("site_0")]
        second = [e.to_rule() for e in environment.site_log("site_1")]
        assert first != second


class TestFederatedRefinement:
    def test_federation_crosses_mining_thresholds(self, hospital):
        """A practice below f at each site clears f organisation-wide."""
        store = hospital.documented_store(0.0, random.Random(13))
        environment = _environment(hospital, accesses=120, sites=4)
        from repro.policy.store import PolicyStore

        environment.simulate_round(0, PolicyStore())
        config = MiningConfig(min_support=15)
        miner = SqlPatternMiner()
        per_site_rules = set()
        for site in environment.sites:
            practice = filter_practice(environment.site_log(site))
            per_site_rules.update(p.rule for p in miner.mine(practice, config))
        consolidated = environment.federation.consolidated_log()
        federated_rules = {
            p.rule
            for p in miner.mine(filter_practice(consolidated), config)
        }
        # federation can only add patterns, and on this workload it
        # strictly adds some no single site could support
        assert per_site_rules <= federated_rules
        assert federated_rules - per_site_rules

    def test_loop_runs_over_multisite_environment(self, hospital):
        store = hospital.documented_store(0.4, random.Random(13))
        environment = _environment(hospital, accesses=400, sites=2)
        loop = RefinementLoop(
            environment=environment,
            store=store,
            vocabulary=healthcare_vocabulary(),
            review=AcceptAll(),
            config=RefinementConfig(mining=MiningConfig(min_support=5)),
        )
        result = loop.run(3)
        assert result.rounds[-1].exception_rate < result.rounds[0].exception_rate
        assert len(result.cumulative_log) == 2400
