"""Tests for vocabulary diffing and policy impact analysis."""

from __future__ import annotations

from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.evolution import assess_policy_impact, diff_vocabularies


def _evolved():
    """The built-in vocabulary plus a curated round of changes."""
    vocab = healthcare_vocabulary()
    data = vocab.tree_for("data")
    # split: lab_results now distinguishes bloodwork and imaging
    data.add("bloodwork", parent="lab_results")
    data.add("imaging", parent="lab_results")
    # add: a brand-new category
    data.add("genomics", parent="clinical")
    return vocab


class TestDiff:
    def test_no_changes(self):
        diff = diff_vocabularies(healthcare_vocabulary(), healthcare_vocabulary())
        assert len(diff) == 0

    def test_added_and_split_detected(self):
        diff = diff_vocabularies(healthcare_vocabulary(), _evolved())
        added = {change.value for change in diff.of_kind("added")}
        assert added == {"bloodwork", "imaging", "genomics"}
        split = diff.of_kind("split")
        assert [change.value for change in split] == ["lab_results"]
        assert "bloodwork" in split[0].detail

    def test_removed_detected(self):
        old = healthcare_vocabulary()
        new = healthcare_vocabulary()
        # rebuild new without telemarketing by constructing a fresh tree
        from repro.vocab.vocabulary import Vocabulary

        trimmed = Vocabulary("trimmed")
        for tree in new:
            if tree.attribute != "purpose":
                trimmed.add_tree(tree)
        purpose = trimmed.new_tree("purpose")
        purpose.add_branch("healthcare", ["treatment", "diagnosis", "emergency_care"])
        purpose.add_branch("operations", ["billing", "registration",
                                          "insurance_verification"])
        purpose.add_branch("secondary_use", ["research"])
        diff = diff_vocabularies(old, trimmed)
        assert {c.value for c in diff.of_kind("removed")} == {"telemarketing"}
        assert diff.removed_values() == {"purpose": {"telemarketing"}}

    def test_whole_tree_changes(self):
        from repro.vocab.vocabulary import Vocabulary

        old = Vocabulary("old")
        old.new_tree("data").add("x")
        new = Vocabulary("new")
        new.new_tree("purpose").add("y")
        diff = diff_vocabularies(old, new)
        kinds = {(c.attribute, c.kind) for c in diff.changes}
        assert ("data", "removed") in kinds
        assert ("purpose", "added") in kinds

    def test_moved_detected(self):
        old = healthcare_vocabulary()
        from repro.vocab.vocabulary import Vocabulary

        new = Vocabulary("moved")
        for tree in old:
            if tree.attribute != "data":
                new.add_tree(tree)
        data = new.new_tree("data")
        data.add_branch("demographic", ["name", "address", "gender", "birth_date"])
        data.add("clinical")
        data.add("medical_records", parent="clinical")
        for leaf in ("prescription", "referral", "lab_results"):
            data.add(leaf, parent="medical_records")
        # psychiatry moves under medical_records
        data.add("psychiatry", parent="medical_records")
        data.add_branch("financial", ["insurance", "payment_history"])
        diff = diff_vocabularies(old, new)
        moved = [c for c in diff.of_kind("moved")]
        assert any(c.value == "psychiatry" for c in moved)


class TestPolicyImpact:
    def test_unchanged_rules(self):
        policy = Policy([
            Rule.of(data="referral", purpose="treatment", authorized="nurse"),
        ])
        report = assess_policy_impact(
            policy, healthcare_vocabulary(), healthcare_vocabulary()
        )
        assert report.safe
        assert len(report.of_verdict("unchanged")) == 1

    def test_split_widens_granting_rules(self):
        # a grant on lab_results silently covers bloodwork and imaging
        # after the split — exactly the regression the tool must flag
        policy = Policy([
            Rule.of(data="lab_results", purpose="treatment", authorized="nurse"),
            Rule.of(data="referral", purpose="treatment", authorized="nurse"),
        ])
        report = assess_policy_impact(policy, healthcare_vocabulary(), _evolved())
        assert not report.safe
        widened = report.of_verdict("widened")
        assert len(widened) == 1
        assert widened[0].rule.value_of("data") == "lab_results"
        assert len(report.of_verdict("unchanged")) == 1

    def test_composite_rule_widens_when_subtree_grows(self):
        policy = Policy([
            Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
        ])
        report = assess_policy_impact(policy, healthcare_vocabulary(), _evolved())
        # medical_records now expands to 4 leaves (bloodwork, imaging
        # replace lab_results) vs 3 before -> membership changed
        assert report.impacts[0].verdict == "widened"

    def test_orphaned_rule_detected(self):
        from repro.vocab.vocabulary import Vocabulary

        old = healthcare_vocabulary()
        new = Vocabulary("no-telemarketing")
        for tree in old:
            if tree.attribute != "purpose":
                new.add_tree(tree)
        purpose = new.new_tree("purpose")
        purpose.add_branch("healthcare", ["treatment"])
        policy = Policy([
            Rule.of(data="address", purpose="telemarketing", authorized="clerk"),
        ])
        report = assess_policy_impact(policy, old, new)
        orphaned = report.of_verdict("orphaned")
        assert len(orphaned) == 1
        assert "telemarketing" in orphaned[0].detail

    def test_summary_lists_non_trivial_impacts(self):
        policy = Policy([
            Rule.of(data="lab_results", purpose="treatment", authorized="nurse"),
        ])
        report = assess_policy_impact(policy, healthcare_vocabulary(), _evolved())
        text = report.summary()
        assert "1 widened" in text
        assert "lab_results" in text
