"""Unit tests for the SQL tokeniser."""

from __future__ import annotations

import pytest

from repro.sqlmini.errors import SqlLexError
from repro.sqlmini.lexer import Token, TokenType, tokenize


def kinds(sql: str) -> list[tuple[TokenType, str]]:
    return [(token.type, token.value) for token in tokenize(sql)]


class TestBasics:
    def test_keywords_lowercased(self):
        tokens = tokenize("SELECT Foo FROM bar")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_identifiers_lowercased(self):
        assert kinds("Foo")[0] == (TokenType.IDENTIFIER, "foo")

    def test_always_ends_with_eof(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select")[-1].type is TokenType.EOF

    def test_whitespace_and_newlines_skipped(self):
        assert len(tokenize("  select\n\t x ")) == 3  # select, x, eof

    def test_line_comment_skipped(self):
        tokens = tokenize("select -- a comment\n x")
        assert [t.value for t in tokens[:-1]] == ["select", "x"]

    def test_comment_at_end_of_input(self):
        assert tokenize("select -- trailing")[-1].type is TokenType.EOF


class TestLiterals:
    def test_integer(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")

    def test_float(self):
        assert kinds("3.25")[0] == (TokenType.NUMBER, "3.25")

    def test_leading_dot_float(self):
        assert kinds(".5")[0] == (TokenType.NUMBER, ".5")

    def test_string(self):
        assert kinds("'hello world'")[0] == (TokenType.STRING, "hello world")

    def test_string_quote_escape(self):
        assert kinds("'o''brien'")[0] == (TokenType.STRING, "o'brien")

    def test_string_preserves_case(self):
        assert kinds("'MixedCase'")[0] == (TokenType.STRING, "MixedCase")

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%"])
    def test_each_operator(self, op):
        assert kinds(op)[0] == (TokenType.OPERATOR, op)

    def test_two_char_operators_win(self):
        values = [t.value for t in tokenize("a<=b") if t.type is TokenType.OPERATOR]
        assert values == ["<="]

    def test_punct(self):
        tokens = tokenize("( ) , . ;")
        assert all(t.type is TokenType.PUNCT for t in tokens[:-1])


class TestQuotedIdentifiers:
    def test_quoted_identifier_is_identifier_not_keyword(self):
        token = tokenize('"select"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "select"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlLexError):
            tokenize('"oops')


def test_unexpected_character_reports_offset():
    with pytest.raises(SqlLexError) as excinfo:
        tokenize("select @")
    assert excinfo.value.position == 7


def test_token_repr_roundtrip():
    token = Token(TokenType.KEYWORD, "select", 0)
    assert "select" in str(token)
