"""Unit tests for repro.policy.policy (Definition 7, Corollary 2)."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule


def _rule(data: str, purpose: str = "treatment", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestConstruction:
    def test_source_enum_from_string(self):
        policy = Policy([], source="PS")
        assert policy.source is PolicySource.POLICY_STORE
        assert policy.name == "P_PS"

    def test_name_override(self):
        assert Policy([], source="AL", name="dept").name == "dept"

    def test_rejects_non_rules(self):
        with pytest.raises(PolicyError):
            Policy(["not a rule"])  # type: ignore[list-item]

    def test_add_rejects_non_rules(self):
        policy = Policy([])
        with pytest.raises(PolicyError):
            policy.add("nope")  # type: ignore[arg-type]


class TestCollection:
    def test_preserves_duplicates_and_order(self):
        rule = _rule("referral")
        policy = Policy([rule, rule, _rule("prescription")])
        assert policy.cardinality == 3
        assert policy[0] == policy[1]

    def test_contains_and_iter(self):
        rule = _rule("referral")
        policy = Policy([rule])
        assert rule in policy
        assert list(policy) == [rule]

    def test_extend(self):
        policy = Policy([])
        policy.extend([_rule("a_data"), _rule("b_data")])
        assert len(policy) == 2

    def test_distinct_removes_duplicates_keeps_order(self):
        first, second = _rule("referral"), _rule("prescription")
        policy = Policy([first, second, first])
        deduped = policy.distinct()
        assert deduped.rules == (first, second)

    def test_equality_compares_rules_and_source(self):
        a = Policy([_rule("referral")], source="AL")
        b = Policy([_rule("referral")], source="AL")
        c = Policy([_rule("referral")], source="PS")
        assert a == b
        assert a != c


class TestGrounding:
    def test_ground_policy_detection(self, vocabulary, fig3_policy, fig3_audit):
        assert not fig3_policy.is_ground(vocabulary)  # has composite rules
        assert fig3_audit.is_ground(vocabulary)

    def test_corollary2_ground_rules_exist(self, vocabulary, fig3_policy):
        ground = fig3_policy.ground_rules(vocabulary)
        assert len(ground) == 8  # 3 (medical_records) + 1 + 4 (demographic)
        assert all(rule.is_ground(vocabulary) for rule in ground)

    def test_ground_rules_deduplicated(self, vocabulary):
        policy = Policy([
            _rule("demographic", "billing", "clerk"),
            _rule("address", "billing", "clerk"),
        ])
        ground = policy.ground_rules(vocabulary)
        assert len(ground) == 4  # address appears once
