"""Unit tests for tree-structured Active Enforcement."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError
from repro.hdb.auditing import ComplianceAuditor
from repro.hdb.consent import ConsentStore
from repro.policy.store import PolicyStore
from repro.policy.parser import parse_rule
from repro.treestore.enforcement import TreeBinding, TreeEnforcer
from repro.treestore.node import TreeDocument, TreeNode
from repro.vocab.builtin import healthcare_vocabulary


def _ward_document() -> TreeDocument:
    root = TreeNode("patients")
    for pid, name in (("p1", "Alice"), ("p2", "Bob")):
        patient = root.child("patient", {"id": pid})
        demographics = patient.child("demographics")
        demographics.child("name", text=name)
        demographics.child("address", text=f"{pid} street")
        record = patient.child("record")
        record.child("prescription", text=f"rx-{pid}")
        record.child("referral", text=f"ref-{pid}")
        record.child("psychiatry", text=f"psy-{pid}")
    return TreeDocument(root, name="ward")


def _binding() -> TreeBinding:
    return TreeBinding(
        patient_path="/patients/patient",
        patient_attribute="id",
        categories={
            "//demographics/name": "name",
            "//demographics/address": "address",
            "//record/prescription": "prescription",
            "//record/referral": "referral",
            "//record/psychiatry": "psychiatry",
        },
    )


@pytest.fixture()
def enforcer():
    vocabulary = healthcare_vocabulary()
    store = PolicyStore()
    store.add(parse_rule("ALLOW nurse TO USE medical_records FOR treatment"))
    store.add(parse_rule("ALLOW physician TO USE psychiatry FOR treatment"))
    store.add(parse_rule("ALLOW clerk TO USE demographic FOR billing"))
    consent = ConsentStore(vocabulary)
    auditor = ComplianceAuditor(AuditLog())
    tree_enforcer = TreeEnforcer(store, consent, auditor, vocabulary)
    tree_enforcer.bind_document("ward", _binding())
    return tree_enforcer


def _texts(result, name):
    return [
        node.text
        for subtree in result.subtrees
        for node in subtree.find_all(name)
    ]


class TestPolicyPruning:
    def test_permitted_categories_survive(self, enforcer):
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient",
        )
        assert _texts(result, "prescription") == ["rx-p1", "rx-p2"]
        assert _texts(result, "referral") == ["ref-p1", "ref-p2"]

    def test_denied_categories_pruned(self, enforcer):
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient",
        )
        assert _texts(result, "psychiatry") == []
        assert _texts(result, "name") == []
        assert "psychiatry" in result.categories_masked
        assert result.nodes_pruned_by_policy == 6  # name, address, psychiatry x2

    def test_structural_elements_always_pass(self, enforcer):
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient",
        )
        assert all(subtree.name == "patient" for subtree in result.subtrees)
        assert all(
            subtree.find_all("record") for subtree in result.subtrees
        )

    def test_original_document_untouched(self, enforcer):
        document = _ward_document()
        enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", document, "/patients/patient"
        )
        assert len(document.root.find_all("psychiatry")) == 2

    def test_full_denial_raises_and_audits(self, enforcer):
        with pytest.raises(AccessDeniedError):
            enforcer.retrieve(
                "clerk_jo", "clerk", "billing", _ward_document(),
                "//record/prescription",
            )
        entry = enforcer.auditor.log[-1]
        assert entry.op is AccessOp.DENY
        assert entry.data == "prescription"

    def test_selection_with_predicate(self, enforcer):
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient[@id='p2']",
        )
        assert _texts(result, "prescription") == ["rx-p2"]

    def test_empty_selection_rejected(self, enforcer):
        with pytest.raises(EnforcementError):
            enforcer.retrieve(
                "nurse_kim", "nurse", "treatment", _ward_document(),
                "/patients/visitor",
            )

    def test_unbound_document_rejected(self, enforcer):
        stray = TreeDocument(TreeNode("loose"), name="loose")
        with pytest.raises(EnforcementError):
            enforcer.retrieve("u", "nurse", "treatment", stray, "/loose")


class TestBreakTheGlass:
    def test_exception_bypasses_policy(self, enforcer):
        result = enforcer.retrieve(
            "clerk_jo", "clerk", "billing", _ward_document(),
            "//record/prescription", exception=True,
        )
        assert result.status is AccessStatus.EXCEPTION
        assert _texts(result, "prescription") == ["rx-p1", "rx-p2"]
        assert result.categories_masked == ()
        entry = enforcer.auditor.log[-1]
        assert entry.status is AccessStatus.EXCEPTION
        assert entry.op is AccessOp.ALLOW


class TestConsent:
    def test_cell_level_opt_out_prunes_element(self, enforcer):
        enforcer.consent.opt_out("p2", "treatment", data="referral")
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient",
        )
        assert _texts(result, "referral") == ["ref-p1"]
        assert result.nodes_pruned_by_consent == 1

    def test_whole_purpose_opt_out_drops_patient(self, enforcer):
        enforcer.policy_store.add(
            parse_rule("ALLOW physician TO USE medical_records FOR research")
        )
        enforcer.consent.opt_out("p1", "research")
        result = enforcer.retrieve(
            "dr_x", "physician", "research", _ward_document(),
            "/patients/patient",
        )
        assert len(result.subtrees) == 1
        assert result.subtrees[0].attributes["id"] == "p2"
        assert result.patients_dropped_by_consent == 1

    def test_break_the_glass_overrides_consent(self, enforcer):
        enforcer.consent.opt_out("p1", "treatment")
        result = enforcer.retrieve(
            "nurse_kim", "nurse", "treatment", _ward_document(),
            "/patients/patient", exception=True,
        )
        assert len(result.subtrees) == 2
        assert result.nodes_pruned_by_consent == 0

    def test_missing_patient_attribute_rejected(self, enforcer):
        document = _ward_document()
        del document.root.children[0].attributes["id"]
        with pytest.raises(EnforcementError):
            enforcer.retrieve(
                "nurse_kim", "nurse", "treatment", document, "/patients/patient"
            )


class TestSharedRefinementPipeline:
    def test_tree_exceptions_feed_the_same_miner(self, enforcer):
        # the whole point of the adaptation: one refinement pipeline
        from repro.mining.patterns import MiningConfig
        from repro.refinement.engine import RefinementConfig, refine

        document = _ward_document()
        for user in ("clerk_a", "clerk_b", "clerk_c"):
            for _ in range(2):
                enforcer.retrieve(
                    user, "clerk", "billing", document,
                    "//record/prescription", exception=True,
                )
        result = refine(
            enforcer.policy_store.policy(),
            enforcer.auditor.log,
            enforcer.vocabulary,
            RefinementConfig(mining=MiningConfig(min_support=5)),
        )
        assert [str(p.rule) for p in result.useful_patterns] == [
            "{(authorized, clerk) ^ (data, prescription) ^ (purpose, billing)}"
        ]
