"""Tests for sqlmini secondary indexes.

Covers the index structures themselves (hash and ordered), their
maintenance through INSERT / DELETE / UPDATE — including NULL and
duplicate keys — the ``CREATE [HASH|ORDERED] INDEX`` statement, seek
metrics, and the planner's use of freshly created indexes.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs
from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlCatalogError
from repro.sqlmini.indexes import HashIndex, OrderedIndex, family_of
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.table import Table
from repro.sqlmini.types import SqlType


def _sample(snapshot: dict, section: str, name: str, **labels: str):
    for sample in snapshot[section]:
        if sample["name"] == name and all(
            sample["labels"].get(key) == value for key, value in labels.items()
        ):
            return sample
    return None


class TestHashIndex:
    def test_seek_returns_ascending_positions(self):
        index = HashIndex()
        for position, key in enumerate(["a", "b", "a", "a"]):
            index.add(key, position)
        assert index.seek("a") == [0, 2, 3]
        assert index.seek("b") == [1]
        assert index.seek("missing") == []

    def test_null_keys_are_never_indexed(self):
        index = HashIndex()
        index.add(None, 0)
        index.add("a", 1)
        assert len(index) == 1
        assert index.seek(None) == []
        index.remove(None, 0)  # harmless no-op
        assert index.seek("a") == [1]

    def test_remove_and_reinsert(self):
        index = HashIndex()
        index.add("k", 0)
        index.add("k", 5)
        index.remove("k", 0)
        assert index.seek("k") == [5]
        index.add("k", 2)  # out-of-order insert still stays sorted
        assert index.seek("k") == [2, 5]
        index.remove("k", 9)  # absent position: no-op
        assert index.seek("k") == [2, 5]

    def test_seek_many_merges_and_dedups(self):
        index = HashIndex()
        for position, key in enumerate(["a", "b", "c", "a"]):
            index.add(key, position)
        assert index.seek_many(("a", "c", "a", None)) == [0, 2, 3]

    def test_bulk_add_matches_incremental(self):
        pairs = [("a", 0), (None, 1), ("b", 2), ("a", 3)]
        bulk, incremental = HashIndex(), HashIndex()
        bulk.bulk_add(pairs)
        for key, position in pairs:
            incremental.add(key, position)
        assert bulk.seek("a") == incremental.seek("a") == [0, 3]
        assert len(bulk) == len(incremental) == 3


class TestOrderedIndex:
    def test_range_bounds(self):
        index = OrderedIndex()
        for position, key in enumerate([10, 20, 20, 30, None]):
            index.add(key, position)
        assert index.seek_range(10, True, 30, True) == [0, 1, 2, 3]
        assert index.seek_range(10, False, 30, False) == [1, 2]
        assert index.seek_range(20, True, 20, True) == [1, 2]
        assert index.seek_range(None, True, 20, False) == [0]
        assert index.seek_range(25, True, None, True) == [3]

    def test_equality_seek(self):
        index = OrderedIndex()
        for position, key in enumerate([5, 3, 5]):
            index.add(key, position)
        assert index.seek(5) == [0, 2]
        assert index.seek(4) == []

    def test_remove_exact_pair_only(self):
        index = OrderedIndex()
        index.add(7, 0)
        index.add(7, 1)
        index.remove(7, 0)
        assert index.seek(7) == [1]
        index.remove(7, 9)  # absent: no-op
        assert index.seek(7) == [1]

    def test_bulk_add_sorts_once(self):
        index = OrderedIndex()
        index.bulk_add([(3, 0), (1, 1), (None, 2), (2, 3)])
        assert index.seek_range(1, True, 3, True) == [0, 1, 3]


class TestFamilies:
    def test_bool_is_not_number(self):
        assert family_of(True) == "bool"
        assert family_of(1) == "number"
        assert family_of(1.5) == "number"
        assert family_of("x") == "text"
        assert family_of(None) is None


@pytest.fixture()
def table() -> Table:
    schema = TableSchema(
        "events",
        (
            Column("id", SqlType.INTEGER, nullable=False),
            Column("user", SqlType.TEXT),
            Column("t", SqlType.INTEGER),
        ),
    )
    t = Table(schema)
    t.create_index("user", kind="hash")
    t.create_index("t", kind="ordered")
    for row in [(1, "ann", 10), (2, "bob", 20), (3, "ann", 30), (4, None, None)]:
        t.insert(row)
    return t


def _index_agrees_with_scan(table: Table, column: str, value) -> bool:
    position = table.schema.position(column)
    via_scan = [row for row in table.scan() if row[position] == value]
    via_index = list(table.lookup(column, value))
    return via_scan == via_index


class TestTableMaintenance:
    def test_insert_maintains_both_indexes(self, table):
        assert table.equality_index("user").seek("ann") == [0, 2]
        assert table.range_index("t").seek_range(15, True, None, True) == [1, 2]
        table.insert((5, "ann", 5))
        assert table.equality_index("user").seek("ann") == [0, 2, 4]
        assert table.range_index("t").seek_range(None, True, 10, True) == [0, 4]

    def test_null_keys_skip_indexes_but_rows_persist(self, table):
        assert len(table) == 4
        assert len(table.equality_index("user")) == 3
        assert len(table.range_index("t")) == 3
        assert _index_agrees_with_scan(table, "user", "ann")

    def test_delete_rebuilds_with_shifted_positions(self, table):
        removed = table.delete_where(lambda row: row[0] == 1)
        assert removed == 1
        # positions compact: old rows 1,2,3 become 0,1,2
        assert table.equality_index("user").seek("ann") == [1]
        assert table.equality_index("user").seek("bob") == [0]
        assert table.range_index("t").seek_range(20, True, 30, True) == [0, 1]
        assert _index_agrees_with_scan(table, "user", "ann")

    def test_update_moves_only_changed_keys(self, table):
        table.replace_row(0, (1, "bob", 10))
        assert table.equality_index("user").seek("ann") == [2]
        assert table.equality_index("user").seek("bob") == [0, 1]
        # t key unchanged: still present exactly once
        assert table.range_index("t").seek(10) == [0]

    def test_update_to_and_from_null(self, table):
        table.replace_row(1, (2, None, None))
        assert table.equality_index("user").seek("bob") == []
        assert len(table.range_index("t")) == 2
        table.replace_row(3, (4, "eve", 40))
        assert table.equality_index("user").seek("eve") == [3]
        assert table.range_index("t").seek(40) == [3]

    def test_clear_keeps_definitions(self, table):
        table.clear()
        assert len(table) == 0
        assert table.has_index("user", "hash")
        assert table.equality_index("user").seek("ann") == []
        table.insert((9, "ann", 1))
        assert table.equality_index("user").seek("ann") == [0]

    def test_empty_index_is_still_discoverable(self):
        # regression: an empty index is falsy (len 0) but must be returned
        schema = TableSchema("t0", (Column("a", SqlType.TEXT),))
        empty = Table(schema)
        empty.create_index("a", kind="hash")
        assert empty.equality_index("a") is not None

    def test_create_index_backfills_existing_rows(self):
        schema = TableSchema("t1", (Column("a", SqlType.TEXT),))
        t = Table(schema)
        t.insert(("x",))
        t.insert(("y",))
        t.insert(("x",))
        t.create_index("a", kind="hash")
        assert t.equality_index("a").seek("x") == [0, 2]

    def test_unknown_kind_rejected(self, table):
        with pytest.raises(SqlCatalogError, match="unknown index kind"):
            table.create_index("user", kind="btree")


class TestCreateIndexSql:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE ev (id INTEGER, user TEXT, t INTEGER)")
        database.execute("INSERT INTO ev VALUES (1, 'ann', 10), (2, 'bob', 20)")
        return database

    def test_default_kind_is_hash(self, db):
        db.execute("CREATE INDEX ev_user ON ev (user)")
        assert db.table("ev").has_index("user", "hash")
        assert "IndexSeek" in db.explain("SELECT id FROM ev WHERE user = 'ann'")

    def test_ordered_index_serves_ranges(self, db):
        db.execute("CREATE ORDERED INDEX ev_t ON ev (t)")
        assert db.table("ev").has_index("t", "ordered")
        plan = db.explain("SELECT id FROM ev WHERE t BETWEEN 5 AND 15")
        assert "IndexSeek" in plan and "ordered" in plan
        assert list(db.query("SELECT id FROM ev WHERE t > 15").rows) == [(2,)]

    def test_create_index_on_view_rejected(self, db):
        from repro.sqlmini.schema import Column as C

        db.register_view(
            "ev_view",
            (C("user", SqlType.TEXT),),
            lambda: iter([("ann",)]),
        )
        with pytest.raises(SqlCatalogError, match="view"):
            db.execute("CREATE INDEX v_user ON ev_view (user)")

    def test_results_identical_with_and_without_index(self, db):
        sql = "SELECT id, user FROM ev WHERE user = 'ann' ORDER BY id"
        before = list(db.query(sql).rows)
        db.execute("CREATE HASH INDEX ev_user ON ev (user)")
        assert list(db.query(sql).rows) == before


class TestSeekMetrics:
    def test_seek_counters_and_skipped_rows(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            db = Database()
            db.execute("CREATE TABLE ev (id INTEGER, user TEXT)")
            for i in range(10):
                db.execute(
                    f"INSERT INTO ev VALUES ({i}, '{'ann' if i % 5 == 0 else 'bob'}')"
                )
            db.execute("CREATE INDEX ev_user ON ev (user)")
            db.query("SELECT id FROM ev WHERE user = 'ann'")
            snapshot = registry.snapshot()
        seeks = _sample(snapshot, "counters", "repro_sqlmini_index_seeks_total")
        assert seeks is not None and seeks["value"] == 1
        skipped = _sample(
            snapshot, "counters", "repro_sqlmini_rows_skipped_by_index_total"
        )
        assert skipped is not None and skipped["value"] == 8
        scanned = _sample(snapshot, "counters", "repro_sqlmini_rows_scanned_total")
        # the seek reads only the two matching rows from storage
        assert scanned is not None and scanned["value"] == 2

    def test_rows_scanned_counts_storage_rows_not_join_combos(self):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            db = Database()
            db.execute("CREATE TABLE a (x INTEGER)")
            db.execute("CREATE TABLE b (y INTEGER)")
            db.execute("INSERT INTO a VALUES (1), (2), (3)")
            db.execute("INSERT INTO b VALUES (1), (2), (3), (4)")
            db.query("SELECT a.x, b.y FROM a JOIN b ON b.y > 0 ORDER BY a.x, b.y")
            snapshot = registry.snapshot()
        scanned = _sample(snapshot, "counters", "repro_sqlmini_rows_scanned_total")
        # 3 + 4 storage rows, not the 12 joined combinations (the old bug)
        assert scanned is not None and scanned["value"] == 7
