"""Unit tests for HDB Active Enforcement."""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import TableBinding


@pytest.fixture()
def center(vocabulary) -> HdbControlCenter:
    cc = HdbControlCenter(vocabulary)
    cc.database.execute(
        "CREATE TABLE patients (pid TEXT NOT NULL, name TEXT, address TEXT, "
        "prescription TEXT, referral TEXT, psychiatry TEXT)"
    )
    cc.database.execute(
        "INSERT INTO patients VALUES "
        "('p1', 'Alice', '12 Elm', 'amoxicillin', 'cardio', 'notes-a'), "
        "('p2', 'Bob', '9 Oak', 'ibuprofen', 'ortho', 'notes-b')"
    )
    cc.bind_table(
        TableBinding(
            "patients",
            "pid",
            {
                "name": "name",
                "address": "address",
                "prescription": "prescription",
                "referral": "referral",
                "psychiatry": "psychiatry",
            },
        )
    )
    cc.define_rules(
        [
            "ALLOW nurse TO USE medical_records FOR treatment",
            "ALLOW physician TO USE psychiatry FOR treatment",
            "ALLOW clerk TO USE demographic FOR billing",
        ]
    )
    return cc


class TestPolicyDecisions:
    def test_composite_rule_covers_leaf_category(self, center):
        assert center.enforcer.policy_permits("prescription", "treatment", "nurse")

    def test_denied_outside_grant(self, center):
        assert not center.enforcer.policy_permits("psychiatry", "treatment", "nurse")
        assert not center.enforcer.policy_permits("prescription", "billing", "clerk")


class TestQueryPath:
    def test_permitted_columns_returned(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients")
        assert result.result.rows == (("amoxicillin",), ("ibuprofen",))
        assert result.categories_returned == ("prescription",)
        assert result.status is AccessStatus.REGULAR

    def test_denied_column_masked_to_null(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription, psychiatry FROM patients")
        assert result.categories_masked == ("psychiatry",)
        assert all(row[1] is None for row in result.result.rows)

    def test_masking_happens_in_the_rewritten_query(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription, psychiatry FROM patients")
        assert "NULL AS psychiatry" in result.rewritten_sql

    def test_patient_rider_stripped_from_output(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients")
        assert result.result.columns == ("prescription",)

    def test_full_denial_raises_and_audits_deny(self, center):
        with pytest.raises(AccessDeniedError):
            center.run("jason", "clerk", "billing",
                       "SELECT prescription FROM patients")
        entry = center.audit_log[-1]
        assert entry.op is AccessOp.DENY
        assert entry.data == "prescription"

    def test_star_expands_against_binding(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT * FROM patients")
        # pid is unbound and passes; demographic/psychiatry columns masked
        assert set(result.categories_masked) == {"name", "address", "psychiatry"}
        assert set(result.categories_returned) == {"prescription", "referral"}

    def test_where_clause_respected(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients WHERE pid = 'p2'")
        assert result.result.rows == (("ibuprofen",),)

    def test_unbound_column_flows_through(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT pid, prescription FROM patients")
        assert result.result.rows[0][0] == "p1"


class TestBreakTheGlass:
    def test_exception_bypasses_policy_with_exception_status(self, center):
        result = center.run("jason", "clerk", "billing",
                            "SELECT prescription FROM patients", exception=True)
        assert result.status is AccessStatus.EXCEPTION
        assert result.categories_returned == ("prescription",)
        assert result.categories_masked == ()

    def test_exception_access_audited_as_exception(self, center):
        center.run("jason", "clerk", "billing",
                   "SELECT prescription FROM patients", exception=True)
        entry = center.audit_log[-1]
        assert entry.status is AccessStatus.EXCEPTION
        assert entry.op is AccessOp.ALLOW

    def test_truth_label_flows_to_audit(self, center):
        center.run("jason", "clerk", "billing",
                   "SELECT prescription FROM patients",
                   exception=True, truth="practice")
        assert center.audit_log[-1].truth == "practice"


class TestConsent:
    def test_cell_masking(self, center):
        center.record_consent("p2", "billing", allowed=False, data="demographic")
        result = center.run("bill", "clerk", "billing",
                            "SELECT name, address FROM patients")
        assert result.result.rows[0] == ("Alice", "12 Elm")
        assert result.result.rows[1] == (None, None)
        assert result.cells_masked_by_consent == 2

    def test_row_drop_on_whole_purpose_opt_out(self, center):
        center.define_rule("ALLOW physician TO USE medical_records FOR research")
        center.record_consent("p1", "research", allowed=False)
        result = center.run("dr", "physician", "research",
                            "SELECT prescription FROM patients")
        assert result.result.rows == (("ibuprofen",),)
        assert result.rows_dropped_by_consent == 1

    def test_break_the_glass_overrides_consent(self, center):
        center.record_consent("p1", "treatment", allowed=False)
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients", exception=True)
        assert len(result.result.rows) == 2
        assert result.cells_masked_by_consent == 0


class TestGuardRails:
    def test_unbound_table_refused(self, center):
        center.database.execute("CREATE TABLE loose (a TEXT)")
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment", "SELECT a FROM loose")

    def test_joins_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT p.name FROM patients p JOIN patients q ON TRUE")

    def test_aggregation_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT COUNT(*) FROM patients")

    def test_expressions_over_protected_columns_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT LOWER(psychiatry) FROM patients")

    def test_non_select_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "DELETE FROM patients")

    def test_binding_validates_columns(self, center):
        with pytest.raises(EnforcementError):
            center.bind_table(TableBinding("patients", "bogus", {}))
        center.database.execute("CREATE TABLE other (pid TEXT)")
        with pytest.raises(EnforcementError):
            center.bind_table(TableBinding("other", "pid", {"missing": "name"}))

    def test_stats_counters(self, center):
        center.run("john", "nurse", "treatment",
                   "SELECT prescription, psychiatry FROM patients")
        try:
            center.run("jason", "clerk", "billing",
                       "SELECT prescription FROM patients")
        except AccessDeniedError:
            pass
        stats = center.enforcer.stats
        assert stats.requests == 2
        assert stats.denials == 1
        assert stats.policy_masked_columns == 1


class TestPermitMemoization:
    """The serve hot path memoises policy_permits per (category, purpose,
    role), stamped with (store revision, vocabulary version)."""

    def test_repeat_lookup_hits_the_cache(self, center):
        enforcer = center.enforcer
        assert enforcer.policy_permits("prescription", "treatment", "nurse")
        misses = enforcer.stats.permit_cache_misses
        hits = enforcer.stats.permit_cache_hits
        assert enforcer.policy_permits("prescription", "treatment", "nurse")
        assert enforcer.stats.permit_cache_hits == hits + 1
        assert enforcer.stats.permit_cache_misses == misses

    def test_distinct_triples_are_distinct_entries(self, center):
        enforcer = center.enforcer
        enforcer.policy_permits("prescription", "treatment", "nurse")
        enforcer.policy_permits("prescription", "treatment", "physician")
        assert enforcer.stats.permit_cache_misses == 2
        assert enforcer.stats.permit_cache_hits == 0

    def test_policy_revision_invalidates(self, center):
        enforcer = center.enforcer
        assert not enforcer.policy_permits("psychiatry", "treatment", "nurse")
        center.define_rule("ALLOW nurse TO USE psychiatry FOR treatment")
        # the revision bump must flush the memo before the next lookup
        assert enforcer.policy_permits("psychiatry", "treatment", "nurse")
        assert enforcer.stats.permit_cache_invalidations == 1

    def test_retiring_a_rule_invalidates(self, center):
        from repro.policy.parser import parse_rule

        enforcer = center.enforcer
        assert enforcer.policy_permits("prescription", "treatment", "nurse")
        assert center.policy_store.retire(
            parse_rule("ALLOW nurse TO USE medical_records FOR treatment")
        )
        assert not enforcer.policy_permits("prescription", "treatment", "nurse")
        assert enforcer.stats.permit_cache_invalidations == 1

    def test_vocabulary_growth_invalidates(self, center, vocabulary):
        enforcer = center.enforcer
        assert not enforcer.policy_permits("genomics", "treatment", "nurse")
        # grafting the new category under medical_records changes the
        # vocabulary version, so the cached denial must not survive
        vocabulary.tree_for("data").add("genomics", parent="medical_records")
        assert enforcer.policy_permits("genomics", "treatment", "nurse")
        assert enforcer.stats.permit_cache_invalidations == 1

    def test_rebinding_a_table_clears_the_plan_cache(self, center):
        enforcer = center.enforcer
        center.run("john", "nurse", "treatment",
                   "SELECT prescription FROM patients")
        assert enforcer._plan_cache
        center.bind_table(enforcer.binding_for("patients"))
        assert not enforcer._plan_cache

    def test_memoised_answers_match_fresh_enforcer(self, center, vocabulary):
        from repro.hdb.consent import ConsentStore
        from repro.hdb.enforcement import ActiveEnforcer

        triples = [
            ("prescription", "treatment", "nurse"),
            ("psychiatry", "treatment", "nurse"),
            ("psychiatry", "treatment", "physician"),
            ("name", "billing", "clerk"),
            ("prescription", "billing", "clerk"),
        ]
        warm = [center.enforcer.policy_permits(*t) for t in triples * 2]
        fresh = ActiveEnforcer(
            database=center.database,
            policy_store=center.policy_store,
            consent=ConsentStore(vocabulary),
            auditor=center.enforcer.auditor,
            vocabulary=vocabulary,
        )
        cold = [fresh.policy_permits(*t) for t in triples * 2]
        assert warm == cold
