"""Unit tests for HDB Active Enforcement."""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import TableBinding


@pytest.fixture()
def center(vocabulary) -> HdbControlCenter:
    cc = HdbControlCenter(vocabulary)
    cc.database.execute(
        "CREATE TABLE patients (pid TEXT NOT NULL, name TEXT, address TEXT, "
        "prescription TEXT, referral TEXT, psychiatry TEXT)"
    )
    cc.database.execute(
        "INSERT INTO patients VALUES "
        "('p1', 'Alice', '12 Elm', 'amoxicillin', 'cardio', 'notes-a'), "
        "('p2', 'Bob', '9 Oak', 'ibuprofen', 'ortho', 'notes-b')"
    )
    cc.bind_table(
        TableBinding(
            "patients",
            "pid",
            {
                "name": "name",
                "address": "address",
                "prescription": "prescription",
                "referral": "referral",
                "psychiatry": "psychiatry",
            },
        )
    )
    cc.define_rules(
        [
            "ALLOW nurse TO USE medical_records FOR treatment",
            "ALLOW physician TO USE psychiatry FOR treatment",
            "ALLOW clerk TO USE demographic FOR billing",
        ]
    )
    return cc


class TestPolicyDecisions:
    def test_composite_rule_covers_leaf_category(self, center):
        assert center.enforcer.policy_permits("prescription", "treatment", "nurse")

    def test_denied_outside_grant(self, center):
        assert not center.enforcer.policy_permits("psychiatry", "treatment", "nurse")
        assert not center.enforcer.policy_permits("prescription", "billing", "clerk")


class TestQueryPath:
    def test_permitted_columns_returned(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients")
        assert result.result.rows == (("amoxicillin",), ("ibuprofen",))
        assert result.categories_returned == ("prescription",)
        assert result.status is AccessStatus.REGULAR

    def test_denied_column_masked_to_null(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription, psychiatry FROM patients")
        assert result.categories_masked == ("psychiatry",)
        assert all(row[1] is None for row in result.result.rows)

    def test_masking_happens_in_the_rewritten_query(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription, psychiatry FROM patients")
        assert "NULL AS psychiatry" in result.rewritten_sql

    def test_patient_rider_stripped_from_output(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients")
        assert result.result.columns == ("prescription",)

    def test_full_denial_raises_and_audits_deny(self, center):
        with pytest.raises(AccessDeniedError):
            center.run("jason", "clerk", "billing",
                       "SELECT prescription FROM patients")
        entry = center.audit_log[-1]
        assert entry.op is AccessOp.DENY
        assert entry.data == "prescription"

    def test_star_expands_against_binding(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT * FROM patients")
        # pid is unbound and passes; demographic/psychiatry columns masked
        assert set(result.categories_masked) == {"name", "address", "psychiatry"}
        assert set(result.categories_returned) == {"prescription", "referral"}

    def test_where_clause_respected(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients WHERE pid = 'p2'")
        assert result.result.rows == (("ibuprofen",),)

    def test_unbound_column_flows_through(self, center):
        result = center.run("john", "nurse", "treatment",
                            "SELECT pid, prescription FROM patients")
        assert result.result.rows[0][0] == "p1"


class TestBreakTheGlass:
    def test_exception_bypasses_policy_with_exception_status(self, center):
        result = center.run("jason", "clerk", "billing",
                            "SELECT prescription FROM patients", exception=True)
        assert result.status is AccessStatus.EXCEPTION
        assert result.categories_returned == ("prescription",)
        assert result.categories_masked == ()

    def test_exception_access_audited_as_exception(self, center):
        center.run("jason", "clerk", "billing",
                   "SELECT prescription FROM patients", exception=True)
        entry = center.audit_log[-1]
        assert entry.status is AccessStatus.EXCEPTION
        assert entry.op is AccessOp.ALLOW

    def test_truth_label_flows_to_audit(self, center):
        center.run("jason", "clerk", "billing",
                   "SELECT prescription FROM patients",
                   exception=True, truth="practice")
        assert center.audit_log[-1].truth == "practice"


class TestConsent:
    def test_cell_masking(self, center):
        center.record_consent("p2", "billing", allowed=False, data="demographic")
        result = center.run("bill", "clerk", "billing",
                            "SELECT name, address FROM patients")
        assert result.result.rows[0] == ("Alice", "12 Elm")
        assert result.result.rows[1] == (None, None)
        assert result.cells_masked_by_consent == 2

    def test_row_drop_on_whole_purpose_opt_out(self, center):
        center.define_rule("ALLOW physician TO USE medical_records FOR research")
        center.record_consent("p1", "research", allowed=False)
        result = center.run("dr", "physician", "research",
                            "SELECT prescription FROM patients")
        assert result.result.rows == (("ibuprofen",),)
        assert result.rows_dropped_by_consent == 1

    def test_break_the_glass_overrides_consent(self, center):
        center.record_consent("p1", "treatment", allowed=False)
        result = center.run("john", "nurse", "treatment",
                            "SELECT prescription FROM patients", exception=True)
        assert len(result.result.rows) == 2
        assert result.cells_masked_by_consent == 0


class TestGuardRails:
    def test_unbound_table_refused(self, center):
        center.database.execute("CREATE TABLE loose (a TEXT)")
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment", "SELECT a FROM loose")

    def test_joins_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT p.name FROM patients p JOIN patients q ON TRUE")

    def test_aggregation_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT COUNT(*) FROM patients")

    def test_expressions_over_protected_columns_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "SELECT LOWER(psychiatry) FROM patients")

    def test_non_select_refused(self, center):
        with pytest.raises(EnforcementError):
            center.run("u", "nurse", "treatment",
                       "DELETE FROM patients")

    def test_binding_validates_columns(self, center):
        with pytest.raises(EnforcementError):
            center.bind_table(TableBinding("patients", "bogus", {}))
        center.database.execute("CREATE TABLE other (pid TEXT)")
        with pytest.raises(EnforcementError):
            center.bind_table(TableBinding("other", "pid", {"missing": "name"}))

    def test_stats_counters(self, center):
        center.run("john", "nurse", "treatment",
                   "SELECT prescription, psychiatry FROM patients")
        try:
            center.run("jason", "clerk", "billing",
                       "SELECT prescription FROM patients")
        except AccessDeniedError:
            pass
        stats = center.enforcer.stats
        assert stats.requests == 2
        assert stats.denials == 1
        assert stats.policy_masked_columns == 1
