"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.audit.io import save_csv, save_jsonl
from repro.cli import main
from repro.policy.parser import format_policy
from repro.workload.scenarios import figure3_policy, table1_audit_log


@pytest.fixture()
def store_file(tmp_path):
    path = tmp_path / "store.policy"
    path.write_text(format_policy(figure3_policy()), encoding="utf-8")
    return str(path)


@pytest.fixture()
def log_file(tmp_path):
    return str(save_csv(table1_audit_log(), tmp_path / "audit.csv"))


class TestPaperCommand:
    def test_prints_paper_tables(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table 1" in out
        assert "50%" in out
        assert "30%" in out


class TestCoverageCommand:
    def test_both_semantics_reported(self, capsys, store_file, log_file):
        assert main(["coverage", "--store", store_file, "--log", log_file]) == 0
        out = capsys.readouterr().out
        assert "set coverage   : 50.0%" in out
        assert "entry coverage : 30.0%" in out
        assert "deviations:" in out

    def test_breakdown_flag(self, capsys, store_file, log_file):
        assert main(
            ["coverage", "--store", store_file, "--log", log_file,
             "--by", "authorized"]
        ) == 0
        out = capsys.readouterr().out
        assert "entry coverage by authorized" in out
        assert "nurse" in out

    def test_missing_file_is_reported_not_raised(self, capsys, store_file):
        assert main(
            ["coverage", "--store", store_file, "--log", "/nope/missing.csv"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_log_format_reported(self, capsys, store_file, tmp_path):
        bogus = tmp_path / "log.xml"
        bogus.write_text("<x/>", encoding="utf-8")
        assert main(
            ["coverage", "--store", store_file, "--log", str(bogus)]
        ) == 1
        assert "unsupported audit log format" in capsys.readouterr().err


class TestRefineCommand:
    def test_finds_table1_pattern(self, capsys, store_file, log_file):
        assert main(["refine", "--store", store_file, "--log", log_file]) == 0
        out = capsys.readouterr().out
        assert "ALLOW nurse TO USE referral FOR registration" in out
        assert "support=5" in out

    def test_threshold_flags(self, capsys, store_file, log_file):
        assert main(
            ["refine", "--store", store_file, "--log", log_file,
             "--min-support", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "patterns mined   : 0" in out

    def test_apriori_miner(self, capsys, store_file, log_file):
        assert main(
            ["refine", "--store", store_file, "--log", log_file,
             "--miner", "apriori"]
        ) == 0
        assert "referral" in capsys.readouterr().out

    def test_temporal_flag(self, capsys, store_file, tmp_path):
        # a night-shift-only practice in jsonl form
        from repro.audit.log import AuditLog, make_entry
        from repro.audit.schema import AccessStatus

        log = AuditLog()
        tick_users = []
        for day in range(3):
            for offset, user in ((22, "a"), (23, "b"), (24, "c")):
                tick_users.append((day * 24 + offset, user))
        tick_users.sort()
        for tick, user in tick_users:
            log.append(
                make_entry(tick, user, "referral", "registration", "nurse",
                           status=AccessStatus.EXCEPTION)
            )
        path = save_jsonl(log, tmp_path / "night.jsonl")
        assert main(
            ["refine", "--store", store_file, "--log", str(path), "--temporal"]
        ) == 0
        out = capsys.readouterr().out
        assert "WHEN HOUR IN" in out


class TestReportCommand:
    def test_full_report(self, capsys, store_file, log_file):
        assert main(
            ["report", "--store", store_file, "--log", log_file, "--window", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "PRIMA compliance report" in out
        assert "coverage trend" in out
        assert "refinement candidates" in out

    def test_accepts_store_json(self, capsys, tmp_path, log_file):
        from repro.policy import store_io
        from repro.workload.scenarios import figure3_policy_store

        path = store_io.save(figure3_policy_store(), tmp_path / "store.json")
        assert main(
            ["coverage", "--store", str(path), "--log", log_file]
        ) == 0
        assert "set coverage   : 50.0%" in capsys.readouterr().out


class TestClassifyCommand:
    def test_triage_summary(self, capsys, log_file):
        assert main(["classify", "--log", log_file]) == 0
        out = capsys.readouterr().out
        assert "exceptions          : 7" in out
        assert "judged practice" in out


class TestSimulateCommand:
    def test_prints_round_table(self, capsys):
        assert main(
            ["simulate", "--rounds", "2", "--accesses", "800", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "refinement loop" in out
        assert "exc-rate" in out
        assert out.count("\n") >= 4

    def test_accept_all_review(self, capsys):
        assert main(
            ["simulate", "--rounds", "1", "--accesses", "500",
             "--review", "accept-all"]
        ) == 0
        assert "accept-all" in capsys.readouterr().out

    def test_enforce_sample_prints_replay_summary(self, capsys):
        assert main(
            ["simulate", "--rounds", "1", "--accesses", "400",
             "--enforce-sample", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "enforcement replay: 40 queries" in out


class TestTelemetryFlags:
    def test_metrics_out_writes_snapshot_with_live_counters(
        self, capsys, tmp_path
    ):
        from repro import obs

        path = tmp_path / "metrics.json"
        with obs.use_registry(obs.MetricsRegistry()):
            assert main(
                ["simulate", "--rounds", "1", "--accesses", "400",
                 "--enforce-sample", "30", "--metrics-out", str(path)]
            ) == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snapshot = obs.load_snapshot(path)
        names = {sample["name"] for sample in snapshot["counters"]}
        assert "repro_policy_grounder_cache_hits_total" in names
        assert "repro_hdb_enforcement_decisions_total" in names
        stage_names = {sample["name"] for sample in snapshot["histograms"]}
        assert "repro_refinement_stage_seconds" in stage_names

    def test_metrics_command_renders_prometheus_and_json(
        self, capsys, tmp_path
    ):
        from repro import obs

        reg = obs.MetricsRegistry()
        reg.counter("repro_demo_total").inc(4)
        path = obs.save_snapshot(reg.snapshot(), tmp_path / "m.json")
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_demo_total counter" in out
        assert "repro_demo_total 4" in out
        assert main(["metrics", str(path), "--format", "json"]) == 0
        assert '"repro_demo_total"' in capsys.readouterr().out

    def test_metrics_command_rejects_garbage(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not a snapshot", encoding="utf-8")
        assert main(["metrics", str(bogus)]) == 1
        assert "error" in capsys.readouterr().err

    def test_verbose_flag_enables_debug_logging(self, capsys):
        import logging

        from repro.obs.logsetup import configure_logging

        try:
            assert main(["--verbose", "paper"]) == 0
            assert logging.getLogger("repro").isEnabledFor(logging.DEBUG)
        finally:
            configure_logging(verbose=False)


class TestStoreCommands:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        from repro.store.durable import copy_to_durable
        from repro.store.store import StoreConfig

        directory = tmp_path / "trail"
        copy_to_durable(
            table1_audit_log(), directory,
            StoreConfig(max_segment_entries=3, fsync="off"),
        ).close()
        return str(directory)

    def test_stats(self, capsys, store_dir):
        assert main(["store", "stats", store_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 10" in out
        assert "sealed" in out

    def test_verify_clean(self, capsys, store_dir):
        assert main(["store", "verify", store_dir]) == 0
        assert "result           : OK" in capsys.readouterr().out

    def test_verify_corrupt_exits_nonzero(self, capsys, store_dir):
        from pathlib import Path

        victim = sorted(Path(store_dir).glob("seg-*.seg"))[0]
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert main(["store", "verify", store_dir]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_tail(self, capsys, store_dir):
        assert main(["store", "tail", store_dir, "-n", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert out[-1].startswith("t10 ")

    def test_compact(self, capsys, store_dir):
        assert main(["store", "compact", store_dir]) == 0
        assert "compaction:" in capsys.readouterr().out
        assert main(["store", "verify", store_dir]) == 0

    def test_missing_directory_reported(self, capsys, tmp_path):
        assert main(["store", "stats", str(tmp_path / "missing")]) == 1
        assert "error" in capsys.readouterr().err


class TestStoreDirFlags:
    def test_simulate_persists_then_refine_reads_back(
        self, capsys, store_file, tmp_path
    ):
        directory = str(tmp_path / "history")
        assert main(
            ["simulate", "--rounds", "2", "--accesses", "500",
             "--enforce-sample", "0", "--store-dir", directory]
        ) == 0
        out = capsys.readouterr().out
        assert "cumulative history persisted" in out
        assert "entries    : 1000" in out
        assert main(
            ["refine", "--store", store_file, "--store-dir", directory]
        ) == 0
        assert "patterns mined" in capsys.readouterr().out

    def test_refine_requires_exactly_one_source(
        self, capsys, store_file, log_file, tmp_path
    ):
        assert main(["refine", "--store", store_file]) == 1
        assert "exactly one audit source" in capsys.readouterr().err
        assert main(
            ["refine", "--store", store_file, "--log", log_file,
             "--store-dir", str(tmp_path)]
        ) == 1
        assert "exactly one audit source" in capsys.readouterr().err

    def test_refine_store_dir_matches_log_file(
        self, capsys, store_file, log_file, tmp_path
    ):
        from repro.audit.io import load_csv
        from repro.store.durable import copy_to_durable

        directory = tmp_path / "trail"
        copy_to_durable(load_csv(log_file), directory).close()
        assert main(["refine", "--store", store_file, "--log", log_file]) == 0
        from_file = capsys.readouterr().out
        assert main(
            ["refine", "--store", store_file, "--store-dir", str(directory)]
        ) == 0
        from_store = capsys.readouterr().out
        assert from_store == from_file


class TestServeCommands:
    @pytest.fixture()
    def server_process(self, tmp_path):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--rows", "20", "--store-dir", str(tmp_path / "trail")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
            env=env,
        )
        banner = process.stdout.readline()
        assert "pdp server listening on" in banner, banner
        port = int(banner.rsplit(":", 1)[1])
        try:
            yield process, port
        finally:
            if process.poll() is None:
                process.terminate()
                process.wait(timeout=10)

    def test_serve_and_decide_round_trip(self, server_process, capsys):
        _, port = server_process
        exit_code = main([
            "decide", "--port", str(port), "--user", "alice",
            "--role", "physician", "--purpose", "treatment",
            "--categories", "prescription",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert '"decision": "allow"' in out
        assert '"snapshot": 1' in out

    def test_decide_denied_exits_nonzero(self, server_process, capsys):
        _, port = server_process
        exit_code = main([
            "decide", "--port", str(port), "--user", "mallory",
            "--role", "clerk", "--purpose", "billing",
            "--categories", "prescription",
        ])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert '"code": "DENIED"' in out

    def test_decide_sql_mode(self, server_process, capsys):
        _, port = server_process
        exit_code = main([
            "decide", "--port", str(port), "--user", "alice",
            "--role", "physician", "--purpose", "treatment",
            "--sql", "SELECT prescription FROM patients LIMIT 1",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert '"rows"' in out

    def test_decide_requires_exactly_one_mode(self, capsys):
        exit_code = main([
            "decide", "--port", "1", "--user", "u", "--role", "r",
            "--purpose", "p",
        ])
        assert exit_code != 0
        assert "exactly one request shape" in capsys.readouterr().err

    def test_graceful_shutdown_flushes_durable_trail(self, server_process,
                                                     tmp_path):
        import signal

        from repro.store.durable import DurableAuditLog

        process, port = server_process
        assert main([
            "decide", "--port", str(port), "--user", "alice",
            "--role", "physician", "--purpose", "treatment",
            "--categories", "prescription",
        ]) == 0
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=15)
        remaining = process.stdout.read()
        assert "pdp server stopped" in remaining
        reopened = DurableAuditLog(tmp_path / "trail", create=False)
        assert len(reopened) == 1
        reopened.close()


class TestRefineDaemonCommand:
    @pytest.fixture()
    def queue_dir(self, tmp_path):
        from repro.refine_daemon import Candidate, DaemonState, save_state

        state = DaemonState()
        state.pending.append(
            Candidate("ALLOW nurse TO USE referral FOR treatment", 12, 4, 0)
        )
        state.pending.append(
            Candidate("ALLOW clerk TO USE insurance FOR billing", 7, 2, 1)
        )
        save_state(tmp_path, state)
        return str(tmp_path)

    def test_status_reports_watermark_and_ledger(self, capsys, queue_dir):
        assert main(["refine-daemon", "status", "--store-dir", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "watermark entries : 0" in out
        assert "2 / 0 / 0" in out

    def test_pending_lists_candidates_with_indices(self, capsys, queue_dir):
        assert main(["refine-daemon", "pending", "--store-dir", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "[0] ALLOW nurse TO USE referral FOR treatment" in out
        assert "[1] ALLOW clerk TO USE insurance FOR billing" in out

    def test_accept_by_index_moves_to_accepted(self, capsys, queue_dir):
        from repro.refine_daemon import load_state

        assert main(["refine-daemon", "accept", "--store-dir", queue_dir,
                     "0", "--note", "looks right"]) == 0
        state = load_state(queue_dir)
        assert len(state.pending) == 1
        assert state.accepted[0].rule == "ALLOW nurse TO USE referral FOR treatment"
        assert state.accepted[0].decided_by == "cli-review"
        assert state.accepted[0].note == "looks right"

    def test_reject_by_dsl_is_a_durable_veto(self, capsys, queue_dir):
        from repro.refine_daemon import load_state

        assert main(["refine-daemon", "reject", "--store-dir", queue_dir,
                     "ALLOW clerk TO USE insurance FOR billing"]) == 0
        state = load_state(queue_dir)
        assert [c.rule for c in state.rejected] == [
            "ALLOW clerk TO USE insurance FOR billing"
        ]

    def test_unknown_candidate_fails_with_pointer(self, capsys, queue_dir):
        assert main(["refine-daemon", "accept", "--store-dir", queue_dir,
                     "17"]) == 1
        assert "no pending candidate" in capsys.readouterr().out

    def test_cli_acceptance_reaches_a_polling_daemon(self, tmp_path, capsys):
        """End-to-end: queue-gated daemon → CLI accept → next poll adopts."""
        from repro.experiments.harness import standard_loop_setup
        from repro.mining.patterns import MiningConfig
        from repro.policy.parser import parse_rule
        from repro.refine_daemon import (
            DaemonConfig,
            QueueForReviewGate,
            RefineDaemon,
            StorePolicyTarget,
            load_state,
        )
        from repro.store.durable import DurableAuditLog

        setup = standard_loop_setup(accesses_per_round=800, seed=7)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            QueueForReviewGate(),
            DaemonConfig(mining=MiningConfig(min_support=5, min_distinct_users=2)),
        )
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        assert daemon.poll().pended > 0
        directory = str(log.store.directory)
        assert main(["refine-daemon", "accept", "--store-dir", directory, "0"]) == 0
        accepted = load_state(directory).accepted[0]
        report = daemon.poll()
        assert report.reconciled == 1
        assert parse_rule(accepted.rule) in setup.store
        log.close()


class TestSqlCommand:
    def test_explain_renders_plan_with_index_seek(self, capsys, log_file):
        assert main([
            "sql", "explain", "SELECT data FROM audit_log WHERE user = 'ann'",
            "--log", log_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "Project" in out
        assert "IndexSeek audit_log hash(user = 'ann')" in out

    def test_explain_without_log_uses_empty_indexed_table(self, capsys):
        assert main([
            "sql", "explain",
            "SELECT user, COUNT(*) AS n FROM audit_log GROUP BY user "
            "ORDER BY n DESC",
        ]) == 0
        out = capsys.readouterr().out
        assert "Aggregate" in out
        assert "Sort" in out

    def test_query_prints_rows_and_respects_limit(self, capsys, log_file):
        assert main([
            "sql", "query",
            "SELECT user, COUNT(*) AS n FROM audit_log GROUP BY user "
            "ORDER BY n DESC, user",
            "--log", log_file, "-n", "2",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "user\tn"
        assert len(lines) <= 4  # header + 2 rows + optional "... more"

    def test_plan_error_is_reported_not_raised(self, capsys, log_file):
        assert main([
            "sql", "query", "SELECT DISTINCT user FROM audit_log ORDER BY time",
            "--log", log_file,
        ]) == 1
        err = capsys.readouterr().err
        assert "ORDER BY expressions must appear in the select list" in err
