"""Tests for the accounting-of-disclosures ledger."""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessStatus
from repro.errors import AuditError
from repro.hdb.accounting import Disclosure, DisclosureLedger
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import TableBinding


def _disclosure(time=1, patient="p1", user="nurse_kim", data="referral",
                status=AccessStatus.REGULAR) -> Disclosure:
    return Disclosure(
        time=time, patient=patient, user=user, role="nurse",
        data=data, purpose="treatment", status=status,
    )


class TestLedgerBasics:
    def test_record_and_account(self):
        ledger = DisclosureLedger()
        ledger.record(_disclosure())
        ledger.record(_disclosure(time=2, data="prescription"))
        ledger.record(_disclosure(time=3, patient="p2"))
        assert len(ledger) == 3
        assert len(ledger.accounting_for("p1")) == 2
        assert len(ledger.accounting_for("P1")) == 2  # canonical lookup
        assert ledger.accounting_for("unknown") == ()

    def test_rejects_non_disclosures(self):
        with pytest.raises(AuditError):
            DisclosureLedger().record("nope")  # type: ignore[arg-type]

    def test_recipients_of(self):
        ledger = DisclosureLedger()
        ledger.record(_disclosure(user="nurse_a"))
        ledger.record(_disclosure(time=2, user="nurse_b", data="prescription"))
        assert ledger.recipients_of("p1") == ("nurse_a", "nurse_b")
        assert ledger.recipients_of("p1", data="referral") == ("nurse_a",)

    def test_break_the_glass_count(self):
        ledger = DisclosureLedger()
        ledger.record(_disclosure())
        ledger.record(_disclosure(time=2, status=AccessStatus.EXCEPTION))
        assert ledger.break_the_glass_count("p1") == 1

    def test_busiest_patients(self):
        ledger = DisclosureLedger()
        for tick in range(3):
            ledger.record(_disclosure(time=tick + 1))
        ledger.record(_disclosure(time=9, patient="p2"))
        assert ledger.busiest_patients(top=1) == (("p1", 3),)

    def test_record_access_cross_product(self):
        ledger = DisclosureLedger()
        written = ledger.record_access(
            time=5, patients=("p1", "p2"), user="u", role="nurse",
            categories=("referral", "prescription"), purpose="treatment",
            status=AccessStatus.REGULAR,
        )
        assert written == 4
        assert len(ledger.accounting_for("p2")) == 2

    def test_render_accounting(self):
        ledger = DisclosureLedger()
        ledger.record(_disclosure(status=AccessStatus.EXCEPTION))
        text = ledger.render_accounting("p1")
        assert "Accounting of disclosures" in text
        assert "BREAK-THE-GLASS" in text


class TestEnforcementIntegration:
    @pytest.fixture()
    def center(self, vocabulary) -> HdbControlCenter:
        cc = HdbControlCenter(vocabulary)
        cc.database.execute(
            "CREATE TABLE patients (pid TEXT NOT NULL, prescription TEXT, "
            "psychiatry TEXT)"
        )
        cc.database.execute(
            "INSERT INTO patients VALUES ('p1', 'rx-1', 'psy-1'), "
            "('p2', 'rx-2', 'psy-2')"
        )
        cc.bind_table(TableBinding("patients", "pid", {
            "prescription": "prescription", "psychiatry": "psychiatry"}))
        cc.define_rule("ALLOW nurse TO USE medical_records FOR treatment")
        return cc

    def test_returned_categories_are_ledgered_per_patient(self, center):
        center.run("nurse_kim", "nurse", "treatment",
                   "SELECT prescription, psychiatry FROM patients")
        # psychiatry was policy-masked: it must NOT appear in the ledger
        for patient in ("p1", "p2"):
            events = center.ledger.accounting_for(patient)
            assert {event.data for event in events} == {"prescription"}

    def test_where_clause_limits_disclosed_patients(self, center):
        center.run("nurse_kim", "nurse", "treatment",
                   "SELECT prescription FROM patients WHERE pid = 'p2'")
        assert center.ledger.accounting_for("p1") == ()
        assert len(center.ledger.accounting_for("p2")) == 1

    def test_consent_masked_cells_not_disclosed(self, center):
        center.record_consent("p1", "treatment", allowed=False,
                              data="prescription")
        center.run("nurse_kim", "nurse", "treatment",
                   "SELECT prescription FROM patients")
        assert center.ledger.accounting_for("p1") == ()
        assert len(center.ledger.accounting_for("p2")) == 1

    def test_break_the_glass_is_ledgered_with_flag(self, center):
        center.run("clerk_jo", "clerk", "billing",
                   "SELECT psychiatry FROM patients", exception=True)
        assert center.ledger.break_the_glass_count("p1") == 1
        assert center.ledger.break_the_glass_count("p2") == 1

    def test_denied_request_discloses_nothing(self, center):
        from repro.errors import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            center.run("clerk_jo", "clerk", "billing",
                       "SELECT psychiatry FROM patients")
        assert len(center.ledger) == 0

    def test_accounting_facade(self, center):
        center.run("nurse_kim", "nurse", "treatment",
                   "SELECT prescription FROM patients")
        text = center.accounting_for("p1")
        assert "prescription -> nurse_kim" in text

    def test_ledger_time_matches_audit_time(self, center):
        center.run("nurse_kim", "nurse", "treatment",
                   "SELECT prescription FROM patients")
        audit_time = center.audit_log[-1].time
        ledger_time = center.ledger.accounting_for("p1")[0].time
        assert audit_time == ledger_time
