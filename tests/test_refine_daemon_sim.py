"""Deterministic simulation harness for the online refinement daemon.

The headline theorem of this suite: driving the closed loop *online* —
traffic lands in the durable store, segments seal, the daemon tails past
its watermark, mines incrementally, gates, and hot-swaps — produces a
policy store **byte-identical** to the offline
:class:`~repro.refinement.loop.RefinementLoop` run over the very same
recorded trail, with equal coverage.  Everything is synchronous and
clock-injected: no threads, no sleeps, no wall time.
"""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog
from repro.coverage.engine import compute_coverage
from repro.errors import DaemonError
from repro.experiments.harness import (
    ReplayEnvironment,
    standard_loop_setup,
)
from repro.mining.patterns import MiningConfig
from repro.policy.parser import format_rule, parse_rule
from repro.refine_daemon import (
    AutoAcceptGate,
    DaemonConfig,
    QueueForReviewGate,
    RefineDaemon,
    StorePolicyTarget,
    load_state,
)
from repro.refinement.engine import RefinementConfig
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import ThresholdReview
from repro.store.durable import DurableAuditLog

ROUNDS = 4
MINING = dict(min_support=5, min_distinct_users=2)
GATE = dict(min_support=10, min_distinct_users=3)


def rules_of(store) -> tuple[str, ...]:
    """The store's active rules as sorted DSL — the comparison currency."""
    return tuple(sorted(format_rule(rule) for rule in store.policy()))


def drive_daemon(tmp_path, rounds=ROUNDS, accesses=800, seed=7, config=None):
    """Run the online loop: simulate → append → seal → poll, per round.

    Returns ``(setup, daemon, log, windows, reports)`` with the log still
    open; the recorded windows replay into the offline comparator.
    """
    setup = standard_loop_setup(accesses_per_round=accesses, seed=seed)
    log = DurableAuditLog(tmp_path / "trail", name="online")
    daemon = RefineDaemon(
        log,
        StorePolicyTarget(setup.store),
        setup.vocabulary,
        AutoAcceptGate(**GATE),
        config or DaemonConfig(mining=MiningConfig(**MINING)),
    )
    windows, reports = [], []
    for round_index in range(rounds):
        window = setup.environment.simulate_round(round_index, setup.store)
        windows.append(window)
        log.extend(window)
        log.seal_active()
        reports.append(daemon.poll())
    return setup, daemon, log, windows, reports


def offline_loop(windows, accesses=800, seed=7):
    """The stock offline loop over the recorded trail, from an identical
    starting store (same seed → same fixture)."""
    setup = standard_loop_setup(accesses_per_round=accesses, seed=seed)
    loop = RefinementLoop(
        ReplayEnvironment(windows),
        setup.store,
        setup.vocabulary,
        ThresholdReview(**GATE),
        config=RefinementConfig(mining=MiningConfig(**MINING)),
    )
    result = loop.run(len(windows))
    return setup, result


class TestOnlineOfflineEquivalence:
    """The daemon is the offline loop, deployed."""

    def test_accepted_rules_byte_identical_to_offline_loop(self, tmp_path):
        online_setup, daemon, log, windows, reports = drive_daemon(tmp_path)
        offline_setup, _result = offline_loop(windows)
        assert rules_of(online_setup.store) == rules_of(offline_setup.store)
        # and the daemon genuinely accepted beyond the seeded store
        assert any(report.accepted for report in reports)
        log.close()

    def test_equal_coverage_against_the_same_trail(self, tmp_path):
        online_setup, daemon, log, windows, _ = drive_daemon(tmp_path)
        offline_setup, result = offline_loop(windows)
        trail = [entry for window in windows for entry in window]
        attributes = MiningConfig(**MINING).attributes
        covers = []
        for setup in (online_setup, offline_setup):
            audit_policy = AuditLog(trail).to_policy(attributes)
            covers.append(
                compute_coverage(
                    setup.store.policy(), audit_policy, setup.vocabulary
                ).ratio
            )
        assert covers[0] == covers[1]
        assert covers[0] == result.rounds[-1].coverage_after
        log.close()

    def test_every_round_mined_on_the_cadence_trigger(self, tmp_path):
        _, _, log, _, reports = drive_daemon(tmp_path)
        assert [report.trigger for report in reports] == ["cadence"] * ROUNDS
        assert all(report.consumed == 800 for report in reports)
        log.close()

    def test_watermark_tracks_the_sealed_region_exactly(self, tmp_path):
        _, daemon, log, windows, reports = drive_daemon(tmp_path)
        assert reports[-1].watermark == sum(len(w) for w in windows)
        assert reports[-1].lag == 0
        assert daemon.state.watermark == len(log)
        log.close()


class TestIncrementalTailing:
    """No full rescans: each poll consumes only the new sealed suffix."""

    def test_consumed_entries_are_the_new_suffix_only(self, tmp_path):
        consumed_order = []
        setup = standard_loop_setup(accesses_per_round=300, seed=11)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(**GATE),
            DaemonConfig(
                mining=MiningConfig(**MINING),
                entry_observer=consumed_order.append,
            ),
        )
        expected = []
        attributes = MiningConfig(**MINING).attributes
        for round_index in range(3):
            window = setup.environment.simulate_round(round_index, setup.store)
            log.extend(window)
            log.seal_active()
            expected.extend(
                tuple(str(getattr(entry, a)) for a in attributes)
                for entry in window
            )
            daemon.poll()
            assert consumed_order == expected  # nothing re-read, nothing skipped
        log.close()

    def test_unsealed_entries_wait_behind_the_watermark(self, tmp_path):
        setup = standard_loop_setup(accesses_per_round=200, seed=3)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(**GATE),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        window = setup.environment.simulate_round(0, setup.store)
        log.extend(window)  # active segment, never sealed
        report = daemon.poll()
        assert report.consumed == 0
        assert report.watermark == 0
        assert report.lag == len(window)
        assert report.trigger is None  # nothing sealed → nothing to mine
        log.seal_active()
        report = daemon.poll()
        assert report.consumed == len(window)
        assert report.lag == 0
        log.close()

    def test_a_shrunken_trail_is_refused(self, tmp_path):
        setup = standard_loop_setup(accesses_per_round=150, seed=5)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(**GATE),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        daemon.poll()
        daemon.state.watermark += 1_000_000  # simulate a rewritten trail
        from repro.refine_daemon import save_state

        save_state(log.store.directory, daemon.state)
        with pytest.raises(DaemonError, match="shrank"):
            daemon.poll()
        log.close()


class TestResume:
    """A restarted daemon resumes from persisted state — never restarts."""

    def test_restart_resumes_at_the_watermark(self, tmp_path):
        setup, daemon, log, windows, _ = drive_daemon(tmp_path, rounds=2)
        watermark = daemon.state.watermark
        rules_before = rules_of(setup.store)
        # a brand-new daemon instance over the same directory and store
        revived = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(**GATE),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        assert revived.state.watermark == watermark
        report = revived.poll()  # nothing new sealed
        assert report.consumed == 0
        assert rules_of(setup.store) == rules_before
        log.close()

    def test_restarted_daemon_matches_the_uninterrupted_run(self, tmp_path):
        # run A: one daemon drives all rounds
        setup_a, _, log_a, windows, _ = drive_daemon(
            tmp_path / "a", rounds=ROUNDS, seed=7
        )
        # run B: a fresh daemon instance per round (restart between every
        # seal), same seed → same traffic evolution
        setup_b = standard_loop_setup(accesses_per_round=800, seed=7)
        log_b = DurableAuditLog(tmp_path / "b" / "trail")
        for round_index in range(ROUNDS):
            window = setup_b.environment.simulate_round(round_index, setup_b.store)
            log_b.extend(window)
            log_b.seal_active()
            daemon = RefineDaemon(  # new instance: must resume, not re-mine
                log_b,
                StorePolicyTarget(setup_b.store),
                setup_b.vocabulary,
                AutoAcceptGate(**GATE),
                DaemonConfig(mining=MiningConfig(**MINING)),
            )
            daemon.poll()
        assert rules_of(setup_a.store) == rules_of(setup_b.store)
        log_a.close()
        log_b.close()


class TestReviewGateModes:
    """Auto-accept vs the human pending queue."""

    def test_queue_gate_parks_candidates_without_adopting(self, tmp_path):
        setup = standard_loop_setup(accesses_per_round=800, seed=7)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            QueueForReviewGate(),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        seeded = rules_of(setup.store)
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        report = daemon.poll()
        assert report.pended > 0
        assert not report.accepted
        assert rules_of(setup.store) == seeded  # nothing adopted
        # the queue is durable: a fresh load sees the same candidates
        persisted = load_state(log.store.directory)
        assert len(persisted.pending) == report.pended
        log.close()

    def test_cli_style_acceptance_is_adopted_at_the_next_poll(self, tmp_path):
        setup = standard_loop_setup(accesses_per_round=800, seed=7)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            QueueForReviewGate(),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        daemon.poll()
        # a human decides out-of-band, exactly as the CLI does: move one
        # candidate from pending to accepted and save
        from repro.refine_daemon import save_state

        state = load_state(log.store.directory)
        candidate = state.pending.pop(0)
        candidate.decided_by = "privacy-officer"
        state.accepted.append(candidate)
        save_state(log.store.directory, state)
        report = daemon.poll()  # reload → reconcile → adopt
        assert report.reconciled == 1
        assert parse_rule(candidate.rule) in setup.store
        log.close()

    def test_auto_rejections_are_not_sticky(self, tmp_path):
        # a pattern below the gate threshold in round 0 must be re-judged
        # once its support grows — byte-identity with the offline loop
        # depends on re-judging, so assert the ledger holds no rejects
        _, daemon, log, _, reports = drive_daemon(tmp_path)
        assert any(report.rejected for report in reports)
        assert daemon.state.rejected == []  # transient, never persisted
        log.close()


class TestTriggers:
    """Cadence, injected-clock interval, and coverage-drop triggers."""

    def _daemon(self, tmp_path, config):
        setup = standard_loop_setup(accesses_per_round=400, seed=7)
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(setup.store),
            setup.vocabulary,
            AutoAcceptGate(**GATE),
            config,
        )
        return setup, log, daemon

    def test_cadence_spacing_skips_intermediate_polls(self, tmp_path):
        setup, log, daemon = self._daemon(
            tmp_path,
            DaemonConfig(mining=MiningConfig(**MINING), mine_every_polls=2),
        )
        triggers = []
        for round_index in range(4):
            log.extend(setup.environment.simulate_round(round_index, setup.store))
            log.seal_active()
            triggers.append(daemon.poll().trigger)
        assert triggers == [None, "cadence", None, "cadence"]
        log.close()

    def test_interval_trigger_follows_the_injected_clock(self, tmp_path):
        clock = {"now": 0.0}
        setup, log, daemon = self._daemon(
            tmp_path,
            DaemonConfig(
                mining=MiningConfig(**MINING),
                mine_every_polls=0,  # cadence off
                mine_interval=60.0,
                clock=lambda: clock["now"],
            ),
        )
        log.extend(setup.environment.simulate_round(0, setup.store))
        log.seal_active()
        assert daemon.poll().trigger is None  # 0s elapsed
        clock["now"] = 59.0
        assert daemon.poll().trigger is None
        clock["now"] = 61.0
        assert daemon.poll().trigger == "interval"
        # the interval timer reset at the mine; no fresh data → no re-mine
        clock["now"] = 200.0
        assert daemon.poll().trigger is None
        log.close()

    def test_coverage_drop_trigger_fires_on_regression(self, tmp_path):
        from repro.audit.log import make_entry
        from repro.audit.schema import AccessStatus
        from repro.policy.store import PolicyStore
        from repro.vocab.builtin import healthcare_vocabulary

        vocabulary = healthcare_vocabulary()
        store = PolicyStore()
        store.add(parse_rule("ALLOW nurse TO USE prescription FOR treatment"))
        log = DurableAuditLog(tmp_path / "trail")
        daemon = RefineDaemon(
            log,
            StorePolicyTarget(store),
            vocabulary,
            AutoAcceptGate(min_support=100, min_distinct_users=100),  # never
            DaemonConfig(
                mining=MiningConfig(**MINING),
                mine_every_polls=0,  # only the drop trigger is armed
                coverage_drop=0.25,
            ),
        )
        covered = [
            make_entry(t, f"u{t % 3}", "prescription", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION)
            for t in range(10)
        ]
        log.extend(covered)
        log.seal_active()
        baseline = daemon.poll(force_mine=True)  # baseline: fully covered
        assert baseline.trigger == "forced"
        assert baseline.entry_coverage == 1.0
        # a policy regression: half the trail is now an uncovered practice
        uncovered = [
            make_entry(10 + t, f"u{t % 3}", "psychiatry", "billing", "clerk",
                       status=AccessStatus.EXCEPTION)
            for t in range(10)
        ]
        log.extend(uncovered)
        log.seal_active()
        report = daemon.poll()  # tracker coverage fell 1.0 → 0.5 ≥ 0.25
        assert report.trigger == "coverage-drop"
        assert report.entry_coverage == 0.5
        log.close()


class TestServingIntegration:
    """The daemon hot-swaps a live engine without dropping requests."""

    def test_engine_target_adopts_via_snapshot_swap(self, tmp_path):
        from repro.refine_daemon import EnginePolicyTarget
        from repro.serve.engine import build_demo_engine
        from repro.store.durable import DurableAuditLog as Durable

        audit = Durable(tmp_path / "served", name="served")
        engine = build_demo_engine(rows=40, seed=7, audit_log=audit)
        target = EnginePolicyTarget(engine)
        setup = standard_loop_setup(accesses_per_round=600, seed=7)
        daemon = RefineDaemon(
            audit,
            target,
            setup.vocabulary,
            AutoAcceptGate(min_support=5, min_distinct_users=2),
            DaemonConfig(mining=MiningConfig(**MINING)),
        )
        snapshot_before = engine.manager.current.snapshot_id
        # exception traffic lands in the served trail; the daemon mines it
        audit.extend(setup.environment.simulate_round(0, setup.store))
        audit.seal_active()
        report = daemon.poll()
        assert report.accepted  # mined rules were hot-swapped in
        after = engine.manager.current
        assert after.snapshot_id > snapshot_before
        for rule in report.accepted:
            assert rule in after.policy_store
        # versions stamp moved with the swap
        assert engine.versions()["snapshot"] == after.snapshot_id
        audit.close()

    def test_daemon_status_is_json_ready(self, tmp_path):
        import json

        _, daemon, log, _, _ = drive_daemon(tmp_path, rounds=1)
        status = daemon.status()
        assert json.loads(json.dumps(status)) == status
        assert status["watermark_entries"] == status["trail_entries"]
        assert status["lag_entries"] == 0
        assert status["rounds"] == 1
        log.close()


class TestDecisionProvenanceStamping:
    """Accepted rules carry the evidence that mined them (ISSUE 7)."""

    def _traced_run(self, tmp_path, provenance=None, rounds=ROUNDS):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer(sample_every=1)
        with use_tracer(tracer):
            setup = standard_loop_setup(accesses_per_round=800, seed=7)
            log = DurableAuditLog(tmp_path / "trail", name="online")
            daemon = RefineDaemon(
                log,
                StorePolicyTarget(setup.store),
                setup.vocabulary,
                AutoAcceptGate(**GATE),
                DaemonConfig(mining=MiningConfig(**MINING)),
                provenance=provenance,
            )
        windows = []
        for round_index in range(rounds):
            window = setup.environment.simulate_round(round_index, setup.store)
            windows.append(window)
            log.extend(window)
            log.seal_active()
            daemon.poll()
        return setup, daemon, log, windows, tracer

    def test_accepted_candidates_carry_bounded_audit_evidence(self, tmp_path):
        from repro.refine_daemon.state import EVIDENCE_LIMIT

        setup, daemon, log, windows, tracer = self._traced_run(tmp_path)
        trail = [entry for window in windows for entry in window]
        accepted = daemon.state.accepted
        assert accepted
        attributes = MiningConfig(**MINING).attributes
        for candidate in accepted:
            assert candidate.evidence_entries
            assert len(candidate.evidence_entries) <= EVIDENCE_LIMIT
            for entry_id in candidate.evidence_entries:
                entry = trail[entry_id]
                # the evidence is exactly the exception traffic whose
                # lifted rule is the candidate
                assert entry.is_exception
                assert format_rule(entry.to_rule(attributes)) == candidate.rule
        log.close()

    def test_accepting_poll_trace_is_stamped_and_retained(self, tmp_path):
        _, daemon, log, _, tracer = self._traced_run(tmp_path)
        poll_ids = {candidate.trace_id for candidate in daemon.state.accepted}
        assert all(len(trace_id) == 32 for trace_id in poll_ids)
        for trace_id in poll_ids:
            trace = tracer.store.get(trace_id)
            assert trace is not None
            assert trace["name"] == "repro_refine_daemon_poll"
            # adoption force-retains the poll even under sparse sampling
            assert "refined" in trace["keep"]
            names = {span["name"] for span in trace["spans"]}
            assert "repro_refine_daemon_mine" in names
        log.close()

    def test_evidence_resolves_to_serving_traces_via_ledger(self, tmp_path):
        from repro.obs.provenance import ProvenanceLedger

        ledger = ProvenanceLedger()
        serving_trace = "ab" * 16
        ledger.record({
            "trace_id": serving_trace, "op": "decide", "user": "u",
            "role": "r", "purpose": "p", "decision": "OK",
            "status": "exception", "categories": [], "matched_rules": {},
            "versions": {}, "cache": "off", "queue_ms": None,
            "handle_ms": None, "entry_ids": list(range(3200)),
            "deadline_remaining_ms": None,
        })
        _, daemon, log, _, _ = self._traced_run(tmp_path, provenance=ledger)
        accepted = daemon.state.accepted
        assert accepted
        assert all(
            candidate.evidence_traces == [serving_trace]
            for candidate in accepted
        )
        log.close()

    def test_evidence_survives_a_state_round_trip(self, tmp_path):
        _, daemon, log, _, _ = self._traced_run(tmp_path, rounds=2)
        persisted = load_state(log.store.directory)
        by_rule = {c.rule: c for c in persisted.accepted}
        for candidate in daemon.state.accepted:
            twin = by_rule[candidate.rule]
            assert twin.evidence_entries == candidate.evidence_entries
            assert twin.evidence_traces == candidate.evidence_traces
            assert twin.trace_id == candidate.trace_id
        log.close()

    def test_untraced_daemon_still_matches_offline_loop(self, tmp_path):
        """Evidence stamping never changes *what* is accepted: the NULL
        tracer run stays byte-identical to the offline comparator."""
        from repro.obs.trace import NULL_TRACER, use_tracer

        with use_tracer(NULL_TRACER):
            online_setup, daemon, log, windows, _ = drive_daemon(tmp_path)
        offline_setup, _ = offline_loop(windows)
        assert rules_of(online_setup.store) == rules_of(offline_setup.store)
        for candidate in daemon.state.accepted:
            assert candidate.trace_id == ""  # no poll trace to stamp
            assert candidate.evidence_entries  # evidence is tracer-free
        log.close()
