"""Property-based tests for the tree store (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.treestore.node import TreeDocument, TreeNode
from repro.treestore.path import compile_path
from repro.treestore.xmlio import dumps, loads

names = st.sampled_from(["patient", "record", "note", "name", "item", "x-1", "a_b"])
texts = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters="\x00\r", categories=("L", "N", "P", "Zs")
    ),
    max_size=30,
).map(str.strip)
attribute_values = texts


@st.composite
def trees(draw, max_depth: int = 3, max_children: int = 3) -> TreeNode:
    node = TreeNode(
        draw(names),
        attributes={
            key: draw(attribute_values)
            for key in draw(st.sets(st.sampled_from(["id", "kind", "ref"]), max_size=2))
        },
    )
    child_count = draw(st.integers(min_value=0, max_value=max_children))
    if max_depth > 0:
        for _ in range(child_count):
            node.append(draw(trees(max_depth=max_depth - 1, max_children=max_children)))
    if not node.children:
        node.text = draw(texts)
    return node


def _shape(node: TreeNode) -> tuple:
    return (
        node.name,
        tuple(sorted(node.attributes.items())),
        node.text,
        tuple(_shape(child) for child in node.children),
    )


class TestXmlRoundTrip:
    @settings(max_examples=80)
    @given(trees())
    def test_dumps_loads_preserves_shape(self, root):
        document = TreeDocument(root)
        rebuilt = loads(dumps(document))
        assert _shape(rebuilt.root) == _shape(root)

    @settings(max_examples=80)
    @given(trees())
    def test_clone_preserves_shape_and_detaches(self, root):
        copy = root.clone()
        assert _shape(copy) == _shape(root)
        assert copy.parent is None

    @settings(max_examples=50)
    @given(trees())
    def test_size_equals_walk_length(self, root):
        document = TreeDocument(root)
        assert document.size() == len(list(root.walk()))


class TestPathProperties:
    @settings(max_examples=60)
    @given(trees(), names)
    def test_descendant_selection_matches_walk_filter(self, root, wanted):
        # XPath semantics: //x from the document includes the root element
        document = TreeDocument(root)
        selected = compile_path(f"//{wanted}").select(document)
        walked = [node for node in root.walk() if node.name == wanted]
        assert list(selected) == walked

    @settings(max_examples=60)
    @given(trees())
    def test_root_step_selects_root(self, root):
        document = TreeDocument(root)
        assert compile_path(f"/{root.name}").select(document) == (root,)

    @settings(max_examples=60)
    @given(trees(), names)
    def test_matches_node_agrees_with_select(self, root, wanted):
        document = TreeDocument(root)
        expression = compile_path(f"//{wanted}")
        selected = set(map(id, expression.select(document)))
        for node in root.walk():
            assert expression.matches_node(node) == (id(node) in selected)

    @settings(max_examples=60)
    @given(trees())
    def test_wildcard_child_equals_children(self, root):
        document = TreeDocument(root)
        selected = compile_path(f"/{root.name}/*").select(document)
        assert list(selected) == list(root.children)
