"""Tests for the corpus scenario engine and its ground-truth labels."""

from __future__ import annotations

from repro.audit.schema import RULE_ATTRIBUTES
from repro.corpus import CorpusSpec, generate_corpus, simulate_corpus_trace
from repro.corpus.scenarios import LEGITIMATE_KINDS, MISUSE_KINDS, LabelRecord
from repro.policy.grounding import Grounder

SPEC = CorpusSpec(seed=13, departments=3, staff_per_role=2, patients=60,
                  rounds=2, accesses_per_round=1200, protocol_rules=10)


def trace_of(spec=SPEC):
    return simulate_corpus_trace(generate_corpus(spec))


def test_trace_is_deterministic():
    corpus = generate_corpus(SPEC)
    first = simulate_corpus_trace(corpus)
    second = simulate_corpus_trace(generate_corpus(SPEC))
    assert [e.as_row() for e in first.log] == [e.as_row() for e in second.log]
    assert first.labels == second.labels


def test_entry_count_and_label_alignment():
    trace = trace_of()
    entries = tuple(trace.log)
    assert len(entries) == SPEC.rounds * SPEC.accesses_per_round
    for label in trace.labels:
        entry = entries[label.index]
        assert entry.time == label.time
        assert entry.user == label.user
        assert entry.truth == label.truth


def test_violations_come_only_from_misuse_scenarios():
    trace = trace_of()
    for label in trace.labels:
        if label.truth == "violation":
            assert label.scenario in MISUSE_KINDS
        else:
            assert label.scenario in LEGITIMATE_KINDS
    assert trace.violations > 0
    assert trace.practices > 0
    assert trace.violations + trace.practices == len(trace.labels)


def test_covered_accesses_are_regular_and_unlabelled():
    corpus = generate_corpus(SPEC)
    trace = simulate_corpus_trace(corpus)
    grounder = Grounder(corpus.vocabulary)
    covered = set()
    for rule in corpus.store.policy():
        covered.update(grounder.ground_rules(rule))
    labelled = {label.index for label in trace.labels}
    for index, entry in enumerate(trace.log):
        if entry.is_exception:
            assert index in labelled
            assert entry.to_rule(RULE_ATTRIBUTES) not in covered
        else:
            assert index not in labelled
            assert entry.truth == ""


def test_misuse_rate_is_roughly_respected():
    trace = trace_of()
    total = SPEC.rounds * SPEC.accesses_per_round
    observed = trace.violations / total
    assert 0.4 * SPEC.misuse_rate <= observed <= 2.5 * SPEC.misuse_rate


def test_clinical_state_roundtrips():
    trace = trace_of()
    rebuilt = type(trace.state).from_dict(trace.state.to_dict())
    assert rebuilt.to_dict() == trace.state.to_dict()


def test_label_record_roundtrips():
    record = LabelRecord(index=7, time=42, user="nurse_ada_00",
                         scenario="surge", truth="practice")
    assert LabelRecord.from_dict(record.to_dict()) == record
