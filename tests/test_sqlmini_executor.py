"""Integration tests for the SQL executor over a live database."""

from __future__ import annotations

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlExecutionError, SqlPlanError


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INTEGER NOT NULL, name TEXT, dept TEXT, salary REAL)"
    )
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 'er', 100.0), (2, 'bob', 'er', 80.0), "
        "(3, 'cid', 'icu', 120.0), (4, 'dee', 'icu', 120.0), "
        "(5, 'eve', 'lab', NULL)"
    )
    return database


class TestProjectionAndFilter:
    def test_star(self, db):
        result = db.query("SELECT * FROM emp")
        assert result.columns == ("id", "name", "dept", "salary")
        assert len(result) == 5

    def test_expressions_and_aliases(self, db):
        result = db.query("SELECT id * 2 AS double_id FROM emp WHERE id <= 2")
        assert result.columns == ("double_id",)
        assert result.column("double_id") == [2, 4]

    def test_where_filters_unknown_as_false(self, db):
        # eve's NULL salary fails the predicate (unknown, not true)
        result = db.query("SELECT name FROM emp WHERE salary > 90")
        assert set(result.column("name")) == {"ann", "cid", "dee"}

    def test_like_and_in(self, db):
        assert db.query("SELECT name FROM emp WHERE dept LIKE 'e%'").column("name") == [
            "ann", "bob",
        ]
        assert len(db.query("SELECT name FROM emp WHERE dept IN ('er', 'lab')")) == 3

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert result.column("dept") == ["er", "icu", "lab"]

    def test_limit(self, db):
        assert len(db.query("SELECT id FROM emp LIMIT 3")) == 3

    def test_order_by_asc_desc(self, db):
        ascending = db.query("SELECT name FROM emp ORDER BY salary, name")
        # NULL sorts first ascending
        assert ascending.column("name") == ["eve", "bob", "ann", "cid", "dee"]
        descending = db.query("SELECT name FROM emp ORDER BY salary DESC, name")
        assert descending.column("name")[:3] == ["cid", "dee", "ann"]
        assert descending.column("name")[-1] == "eve"

    def test_order_by_alias(self, db):
        result = db.query("SELECT id * -1 AS neg FROM emp ORDER BY neg")
        assert result.column("neg") == [-5, -4, -3, -2, -1]

    def test_order_by_text_desc(self, db):
        result = db.query("SELECT name FROM emp ORDER BY name DESC LIMIT 2")
        assert result.column("name") == ["eve", "dee"]


class TestAggregation:
    def test_global_count(self, db):
        assert db.query("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_count_skips_nulls(self, db):
        assert db.query("SELECT COUNT(salary) FROM emp").scalar() == 4

    def test_group_by_with_aggregates(self, db):
        result = db.query(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay "
            "FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.rows == (
            ("er", 2, 90.0),
            ("icu", 2, 120.0),
            ("lab", 1, None),
        )

    def test_having(self, db):
        result = db.query(
            "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept"
        )
        assert result.column("dept") == ["er", "icu"]

    def test_having_with_distinct_count(self, db):
        result = db.query(
            "SELECT dept FROM emp GROUP BY dept "
            "HAVING COUNT(DISTINCT salary) = 1 ORDER BY dept"
        )
        # icu has two rows but one distinct salary; lab's NULL doesn't count
        assert result.column("dept") == ["icu"]

    def test_min_max_sum(self, db):
        row = db.query(
            "SELECT MIN(salary), MAX(salary), SUM(salary) FROM emp"
        ).first()
        assert row == (80.0, 120.0, 420.0)

    def test_aggregate_over_empty_input(self, db):
        row = db.query("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 99").first()
        assert row == (0, None)

    def test_group_by_empty_input_yields_no_groups(self, db):
        assert len(db.query("SELECT dept FROM emp WHERE id > 99 GROUP BY dept")) == 0

    def test_order_by_aggregate(self, db):
        result = db.query(
            "SELECT dept FROM emp GROUP BY dept ORDER BY COUNT(*) DESC, dept"
        )
        assert result.column("dept") == ["er", "icu", "lab"]

    def test_arithmetic_over_aggregates(self, db):
        value = db.query("SELECT MAX(salary) - MIN(salary) FROM emp").scalar()
        assert value == 40.0

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT name FROM emp GROUP BY dept")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT dept FROM emp WHERE COUNT(*) > 1 GROUP BY dept")

    def test_having_without_group_or_aggregate_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT name FROM emp HAVING name = 'ann'")

    def test_star_in_aggregate_select_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT *, COUNT(*) FROM emp")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT SUM(COUNT(*)) FROM emp GROUP BY dept")


class TestJoins:
    @pytest.fixture()
    def joined(self, db) -> Database:
        db.execute("CREATE TABLE dept (code TEXT, building TEXT)")
        db.execute(
            "INSERT INTO dept VALUES ('er', 'east'), ('icu', 'west'), ('ghost', 'void')"
        )
        return db

    def test_inner_join(self, joined):
        result = joined.query(
            "SELECT e.name, d.building FROM emp e "
            "JOIN dept d ON e.dept = d.code ORDER BY e.name"
        )
        assert result.rows == (
            ("ann", "east"), ("bob", "east"), ("cid", "west"), ("dee", "west"),
        )

    def test_join_with_where_and_group(self, joined):
        result = joined.query(
            "SELECT d.building, COUNT(*) AS n FROM emp e "
            "JOIN dept d ON e.dept = d.code WHERE e.salary >= 100 "
            "GROUP BY d.building ORDER BY d.building"
        )
        assert result.rows == (("east", 1), ("west", 2))

    def test_ambiguous_bare_column_rejected(self, joined):
        joined.execute("CREATE TABLE emp2 (name TEXT)")
        joined.execute("INSERT INTO emp2 VALUES ('zed')")
        with pytest.raises(SqlPlanError):
            joined.query("SELECT name FROM emp JOIN emp2 ON TRUE")

    def test_duplicate_alias_rejected(self, joined):
        with pytest.raises(SqlPlanError):
            joined.query("SELECT 1 FROM emp x JOIN dept x ON TRUE")

    def test_aggregate_in_join_condition_rejected(self, joined):
        with pytest.raises(SqlPlanError):
            joined.query("SELECT 1 FROM emp e JOIN dept d ON COUNT(*) > 0")


class TestUnionAll:
    def test_concatenates(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE dept = 'er' "
            "UNION ALL SELECT name FROM emp WHERE dept = 'icu'"
        )
        assert len(result) == 4

    def test_mismatched_width_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.query("SELECT name FROM emp UNION ALL SELECT name, id FROM emp")


class TestDml:
    def test_insert_returns_count(self, db):
        assert db.execute("INSERT INTO emp VALUES (6, 'fay', 'er', 90.0)") == 1

    def test_insert_with_columns(self, db):
        db.execute("INSERT INTO emp (id, name) VALUES (7, 'gus')")
        row = db.query("SELECT dept, salary FROM emp WHERE id = 7").first()
        assert row == (None, None)

    def test_insert_wrong_arity_with_columns(self, db):
        with pytest.raises(SqlPlanError):
            db.execute("INSERT INTO emp (id, name) VALUES (7)")

    def test_delete(self, db):
        assert db.execute("DELETE FROM emp WHERE dept = 'er'") == 2
        assert db.query("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_update(self, db):
        changed = db.execute("UPDATE emp SET salary = salary + 10 WHERE dept = 'icu'")
        assert changed == 2
        assert db.query(
            "SELECT MAX(salary) FROM emp WHERE dept = 'icu'"
        ).scalar() == 130.0

    def test_update_without_where_touches_all(self, db):
        assert db.execute("UPDATE emp SET dept = 'all'") == 5


class TestResultSet:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT id FROM emp").scalar()

    def test_as_dicts(self, db):
        dicts = db.query("SELECT id, name FROM emp LIMIT 1").as_dicts()
        assert dicts == [{"id": 1, "name": "ann"}]

    def test_first_on_empty(self, db):
        assert db.query("SELECT id FROM emp WHERE id > 99").first() is None

    def test_column_missing(self, db):
        with pytest.raises(SqlExecutionError):
            db.query("SELECT id FROM emp").column("nope")
