"""Unit tests for the PDP engine: snapshots, decisions, hot reload."""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessOp, AccessStatus
from repro.serve import protocol
from repro.serve.engine import build_demo_engine


@pytest.fixture()
def engine():
    return build_demo_engine(rows=30, seed=7)


def decide(engine, categories, role="physician", purpose="treatment",
           user="alice", exception=False):
    request = protocol.parse_request(
        {"op": "decide", "user": user, "role": role, "purpose": purpose,
         "categories": list(categories), "exception": exception}
    )
    return engine.decide(request)


def query(engine, sql, role="physician", purpose="treatment", user="alice",
          exception=False):
    request = protocol.parse_request(
        {"op": "query", "user": user, "role": role, "purpose": purpose,
         "sql": sql, "exception": exception}
    )
    return engine.query(request)


class TestVersionStamps:
    def test_every_response_carries_versions(self, engine):
        response = decide(engine, ["prescription"])
        versions = response["versions"]
        assert set(versions) == {"snapshot", "policy", "consent", "vocab"}
        assert versions["snapshot"] == 1

    def test_admin_mutation_bumps_snapshot_and_policy(self, engine):
        before = engine.versions()
        request = protocol.parse_request(
            {"op": "admin.add_rule",
             "rule": "ALLOW physician TO USE insurance FOR treatment"}
        )
        response = engine.admin(request)
        assert response["ok"] is True
        assert response["changed"] is True
        after = response["versions"]
        assert after["snapshot"] == before["snapshot"] + 1
        assert after["policy"] > before["policy"]
        assert after["consent"] == before["consent"]

    def test_consent_mutation_bumps_consent_version(self, engine):
        before = engine.versions()
        request = protocol.parse_request(
            {"op": "admin.consent", "patient": "p000001",
             "purpose": "treatment", "allowed": False, "data": "psychiatry"}
        )
        after = engine.admin(request)["versions"]
        assert after["consent"] == before["consent"] + 1
        assert after["snapshot"] == before["snapshot"] + 1


class TestCopyOnWrite:
    def test_old_snapshot_is_untouched_by_mutation(self, engine):
        old = engine.manager.current
        old_rules = len(old.policy_store)
        engine.admin(protocol.parse_request(
            {"op": "admin.add_rule",
             "rule": "ALLOW physician TO USE insurance FOR treatment"}
        ))
        new = engine.manager.current
        assert new is not old
        assert len(old.policy_store) == old_rules
        assert len(new.policy_store) == old_rules + 1
        # decisions through the retained old snapshot still work
        assert not old.enforcer.policy_permits("insurance", "treatment", "physician")
        assert new.enforcer.policy_permits("insurance", "treatment", "physician")

    def test_snapshots_share_database_and_auditor(self, engine):
        old = engine.manager.current
        engine.admin(protocol.parse_request(
            {"op": "admin.add_rule",
             "rule": "ALLOW physician TO USE insurance FOR treatment"}
        ))
        new = engine.manager.current
        assert new.enforcer.database is old.enforcer.database
        assert new.enforcer.auditor is old.enforcer.auditor

    def test_bindings_are_rebound_on_the_new_snapshot(self, engine):
        engine.admin(protocol.parse_request(
            {"op": "admin.add_rule",
             "rule": "ALLOW physician TO USE insurance FOR treatment"}
        ))
        response = query(engine, "SELECT insurance FROM patients LIMIT 1")
        assert response["code"] == protocol.OK
        assert response["returned"] == ["insurance"]

    def test_retire_rule_takes_effect(self, engine):
        assert decide(engine, ["prescription"])["code"] == protocol.OK
        response = engine.admin(protocol.parse_request(
            {"op": "admin.retire_rule",
             "rule": "ALLOW physician TO USE clinical FOR treatment"}
        ))
        assert response["changed"] is True
        assert decide(engine, ["prescription"])["code"] == protocol.DENIED

    def test_unparseable_admin_rule_is_bad_request(self, engine):
        response = engine.admin(protocol.parse_request(
            {"op": "admin.add_rule", "rule": "GRANT everything TO everyone"}
        ))
        assert response["code"] == protocol.BAD_REQUEST
        assert engine.versions()["snapshot"] == 1  # nothing swapped


class TestDecide:
    def test_allow_and_mask_split(self, engine):
        response = decide(engine, ["prescription", "insurance"])
        assert response["code"] == protocol.OK
        assert response["returned"] == ["prescription"]
        assert response["masked"] == ["insurance"]

    def test_full_denial(self, engine):
        response = decide(engine, ["insurance"], role="nurse", purpose="billing")
        assert response["code"] == protocol.DENIED
        assert response["returned"] == []

    def test_exception_bypasses_policy(self, engine):
        response = decide(engine, ["insurance"], role="nurse",
                          purpose="billing", exception=True)
        assert response["code"] == protocol.OK
        assert response["status"] == "exception"
        assert response["returned"] == ["insurance"]

    def test_audit_semantics_match_enforcer(self, engine):
        log = engine.audit_log
        base = len(log)
        decide(engine, ["prescription", "insurance"])  # allow + mask
        entries = log.entries[base:]
        assert [e.op for e in entries] == [AccessOp.ALLOW, AccessOp.DENY]
        assert entries[0].data == "prescription"
        assert entries[1].data == "insurance"
        assert all(e.status is AccessStatus.REGULAR for e in entries)

    def test_denied_decide_is_audited_as_deny(self, engine):
        log = engine.audit_log
        base = len(log)
        decide(engine, ["insurance"], role="nurse", purpose="billing")
        entries = log.entries[base:]
        assert [e.op for e in entries] == [AccessOp.DENY]

    def test_cache_on_and_off_answer_identically(self):
        cached = build_demo_engine(rows=30, seed=7, cache=True)
        plain = build_demo_engine(rows=30, seed=7, cache=False)
        cases = [
            (["prescription"], "physician", "treatment"),
            (["prescription", "insurance"], "physician", "treatment"),
            (["name", "address"], "clerk", "billing"),
            (["psychiatry"], "nurse", "treatment"),
        ]
        for categories, role, purpose in cases * 3:  # repeats hit the cache
            a = decide(cached, categories, role=role, purpose=purpose)
            b = decide(plain, categories, role=role, purpose=purpose)
            assert a == b
        assert cached.cache.hits > 0
        assert plain.cache is None

    def test_admin_mutation_invalidates_decision_cache(self, engine):
        decide(engine, ["prescription"])
        assert len(engine.cache) == 1
        engine.admin(protocol.parse_request(
            {"op": "admin.add_rule",
             "rule": "ALLOW physician TO USE insurance FOR treatment"}
        ))
        assert len(engine.cache) == 0
        assert engine.cache.invalidations == 1
        # and the fresh verdict reflects the new policy
        response = decide(engine, ["prescription", "insurance"])
        assert response["masked"] == []


class TestQuery:
    def test_enforced_query_masks_columns(self, engine):
        response = query(engine, "SELECT prescription, insurance FROM patients LIMIT 2")
        assert response["code"] == protocol.OK
        assert response["returned"] == ["prescription"]
        assert response["masked"] == ["insurance"]
        assert len(response["rows"]) == 2
        assert all(row[1] is None for row in response["rows"])

    def test_denied_query(self, engine):
        response = query(engine, "SELECT prescription FROM patients",
                         role="clerk", purpose="billing")
        assert response["code"] == protocol.DENIED
        assert "error" in response

    def test_malformed_sql_is_bad_request_and_unaudited(self, engine):
        base = len(engine.audit_log)
        response = query(engine, "SELEC nope")
        assert response["code"] == protocol.BAD_REQUEST
        assert len(engine.audit_log) == base

    def test_aggregate_sql_is_bad_request(self, engine):
        response = query(engine, "SELECT COUNT(prescription) FROM patients")
        assert response["code"] == protocol.BAD_REQUEST

    def test_stats_surface(self, engine):
        decide(engine, ["prescription"])
        query(engine, "SELECT prescription FROM patients LIMIT 1")
        stats = engine.stats()
        assert stats["decisions_served"] == 1
        assert stats["queries_served"] == 1
        assert stats["audit_entries"] == len(engine.audit_log)
        assert stats["decision_cache"]["entries"] == 1
        assert stats["active_rules"] == 7
