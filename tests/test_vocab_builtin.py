"""Tests pinning the built-in healthcare vocabulary to the paper."""

from __future__ import annotations

from repro.vocab.builtin import healthcare_vocabulary


def test_demographic_expands_to_exactly_four_ground_terms():
    # Figure 1: the ground set of (data, demographic) has four members.
    vocab = healthcare_vocabulary()
    assert len(vocab.ground_values("data", "demographic")) == 4


def test_gender_is_ground_and_demographic_is_composite():
    # The Definition 2 example: RT3=(data, gender) ground, RT1 composite.
    vocab = healthcare_vocabulary()
    assert vocab.is_ground("data", "gender")
    assert not vocab.is_ground("data", "demographic")


def test_address_and_gender_are_subsumed_by_demographic():
    # The Definition 1/4 example: RT2 and RT3 are subsumed by RT1.
    vocab = healthcare_vocabulary()
    assert vocab.subsumes("data", "demographic", "address")
    assert vocab.subsumes("data", "demographic", "gender")


def test_medical_records_exclude_psychiatry():
    # Figure 3's audit rule 4 depends on this separation.
    vocab = healthcare_vocabulary()
    ground = set(vocab.ground_values("data", "medical_records"))
    assert "psychiatry" not in ground
    assert {"prescription", "referral"} <= ground


def test_doctor_and_physician_are_distinct_ground_roles():
    # Section 5 counts t4 (role Doctor) as uncovered although the store
    # authorises physician — the two must not subsume each other.
    vocab = healthcare_vocabulary()
    assert vocab.is_ground("authorized", "doctor")
    assert vocab.is_ground("authorized", "physician")
    assert not vocab.subsumes("authorized", "physician", "doctor")
    assert not vocab.subsumes("authorized", "doctor", "physician")


def test_telemarketing_is_a_known_purpose():
    # The Definition 1 example mentions (purpose, telemarketing).
    vocab = healthcare_vocabulary()
    assert vocab.is_ground("purpose", "telemarketing")


def test_every_paper_value_is_present():
    vocab = healthcare_vocabulary()
    data_tree = vocab.tree_for("data")
    purpose_tree = vocab.tree_for("purpose")
    role_tree = vocab.tree_for("authorized")
    for value in ("prescription", "referral", "psychiatry", "address", "insurance"):
        assert value in data_tree
    for value in ("treatment", "registration", "billing"):
        assert value in purpose_tree
    for value in ("nurse", "doctor", "physician", "clerk"):
        assert value in role_tree


def test_instances_are_independent():
    first = healthcare_vocabulary()
    second = healthcare_vocabulary()
    first.tree_for("data").add("genomics", "clinical")
    assert "genomics" not in second.tree_for("data")
