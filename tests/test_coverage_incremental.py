"""Unit tests for the streaming coverage tracker."""

from __future__ import annotations

import pytest

from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.coverage.incremental import IncrementalCoverage
from repro.errors import CoverageError
from repro.policy.policy import Policy
from repro.policy.rule import Rule


def _rule(data: str, purpose: str = "treatment", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestObserve:
    def test_observe_reports_covered(self, vocabulary, fig3_policy):
        tracker = IncrementalCoverage(vocabulary, fig3_policy)
        assert tracker.observe(_rule("referral")) is True
        assert tracker.observe(_rule("psychiatry")) is False

    def test_counts(self, vocabulary, fig3_policy):
        tracker = IncrementalCoverage(vocabulary, fig3_policy)
        tracker.observe(_rule("referral"))
        tracker.observe(_rule("referral"))
        tracker.observe(_rule("psychiatry"))
        assert tracker.total_entries == 3
        assert tracker.matched_entries == 2
        assert tracker.distinct_ground_entries == 2
        assert tracker.entry_coverage() == pytest.approx(2 / 3)
        assert tracker.set_coverage() == pytest.approx(1 / 2)

    def test_empty_tracker_raises(self, vocabulary):
        tracker = IncrementalCoverage(vocabulary)
        with pytest.raises(CoverageError):
            tracker.entry_coverage()
        with pytest.raises(CoverageError):
            tracker.set_coverage()


class TestAddRule:
    def test_retroactive_credit(self, vocabulary):
        tracker = IncrementalCoverage(vocabulary)
        tracker.observe(_rule("referral"))
        tracker.observe(_rule("referral"))
        assert tracker.matched_entries == 0
        added = tracker.add_rule(_rule("referral"))
        assert added == 1
        assert tracker.matched_entries == 2
        assert tracker.entry_coverage() == 1.0

    def test_composite_rule_credits_all_leaves(self, vocabulary):
        tracker = IncrementalCoverage(vocabulary)
        tracker.observe(_rule("address", "billing", "clerk"))
        added = tracker.add_rule(_rule("demographic", "billing", "clerk"))
        assert added == 4
        assert tracker.entry_coverage() == 1.0

    def test_duplicate_rule_adds_nothing(self, vocabulary):
        tracker = IncrementalCoverage(vocabulary)
        tracker.add_rule(_rule("referral"))
        assert tracker.add_rule(_rule("referral")) == 0

    def test_uncovered_ground_entries(self, vocabulary, fig3_policy):
        tracker = IncrementalCoverage(vocabulary, fig3_policy)
        tracker.observe(_rule("psychiatry"))
        tracker.observe(_rule("referral"))
        assert tracker.uncovered_ground_entries() == (_rule("psychiatry"),)


class TestAgreementWithBatch:
    def test_matches_batch_computation_on_table1(
        self, vocabulary, fig3_policy, table1_log
    ):
        tracker = IncrementalCoverage(vocabulary, fig3_policy)
        trace = [entry.to_rule() for entry in table1_log]
        for rule in trace:
            tracker.observe(rule)
        batch_entry = compute_entry_coverage(fig3_policy, trace, vocabulary)
        batch_set = compute_coverage(
            fig3_policy, Policy(trace, source="AL"), vocabulary
        )
        assert tracker.entry_coverage() == pytest.approx(batch_entry.ratio)
        assert tracker.set_coverage() == pytest.approx(batch_set.ratio)

    def test_matches_batch_after_rule_addition(self, vocabulary, fig3_policy, table1_log):
        tracker = IncrementalCoverage(vocabulary, fig3_policy)
        trace = [entry.to_rule() for entry in table1_log]
        for rule in trace:
            tracker.observe(rule)
        new_rule = _rule("referral", "registration", "nurse")
        tracker.add_rule(new_rule)
        grown = Policy([*fig3_policy, new_rule])
        batch = compute_entry_coverage(grown, trace, vocabulary)
        assert tracker.entry_coverage() == pytest.approx(batch.ratio)  # 0.8
