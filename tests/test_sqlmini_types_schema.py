"""Unit tests for sqlmini value types and table schemas."""

from __future__ import annotations

import pytest

from repro.sqlmini.errors import SqlCatalogError, SqlTypeError
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.types import SqlType, coerce, compare, sort_key


class TestSqlType:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("int", SqlType.INTEGER),
            ("BIGINT", SqlType.INTEGER),
            ("float", SqlType.REAL),
            ("double", SqlType.REAL),
            ("varchar", SqlType.TEXT),
            ("string", SqlType.TEXT),
            ("bool", SqlType.BOOLEAN),
        ],
    )
    def test_aliases(self, alias, expected):
        assert SqlType.parse(alias) is expected

    def test_unknown_type(self):
        with pytest.raises(SqlTypeError):
            SqlType.parse("blob")


class TestCoerce:
    def test_null_passes_any_type(self):
        for sql_type in SqlType:
            assert coerce(None, sql_type) is None

    def test_integer(self):
        assert coerce(5, SqlType.INTEGER) == 5
        with pytest.raises(SqlTypeError):
            coerce(5.0, SqlType.INTEGER)
        with pytest.raises(SqlTypeError):
            coerce(True, SqlType.INTEGER)  # bools are not ints here

    def test_real_widens_int(self):
        value = coerce(5, SqlType.REAL)
        assert value == 5.0 and isinstance(value, float)

    def test_text(self):
        assert coerce("x", SqlType.TEXT) == "x"
        with pytest.raises(SqlTypeError):
            coerce(5, SqlType.TEXT)

    def test_boolean(self):
        assert coerce(True, SqlType.BOOLEAN) is True
        with pytest.raises(SqlTypeError):
            coerce(1, SqlType.BOOLEAN)


class TestCompare:
    def test_null_is_unknown(self):
        assert compare(None, 1) is None
        assert compare(None, None) is None

    def test_numbers(self):
        assert compare(1, 2) == -1
        assert compare(2.0, 2) == 0
        assert compare(3, 2.5) == 1

    def test_text(self):
        assert compare("a", "b") == -1
        assert compare("b", "b") == 0

    def test_mixed_types_unknown(self):
        assert compare("1", 1) is None
        assert compare(True, 1) is None

    def test_booleans_compare_to_each_other(self):
        assert compare(False, True) == -1

    def test_sort_key_orders_nulls_first(self):
        values = ["b", None, 2, "a", 1, True]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert ordered[1] is True  # booleans before numbers
        assert ordered[2:4] == [1, 2]
        assert ordered[4:] == ["a", "b"]


class TestSchema:
    def _schema(self) -> TableSchema:
        return TableSchema(
            "t",
            (
                Column("id", SqlType.INTEGER, nullable=False),
                Column("name", SqlType.TEXT),
            ),
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlCatalogError):
            TableSchema("t", (Column("a", SqlType.TEXT), Column("A", SqlType.TEXT)))

    def test_empty_schema_rejected(self):
        with pytest.raises(SqlCatalogError):
            TableSchema("t", ())

    def test_column_type_from_string(self):
        column = Column("a", "varchar")  # type: ignore[arg-type]
        assert column.sql_type is SqlType.TEXT

    def test_position_and_lookup(self):
        schema = self._schema()
        assert schema.position("NAME") == 1
        assert schema.column("id").nullable is False
        assert "id" in schema and "missing" not in schema

    def test_position_missing_raises_with_known_columns(self):
        with pytest.raises(SqlCatalogError, match="id, name"):
            self._schema().position("missing")

    def test_validate_row_coerces(self):
        schema = self._schema()
        assert schema.validate_row([1, "x"]) == (1, "x")

    def test_validate_row_arity(self):
        with pytest.raises(SqlTypeError):
            self._schema().validate_row([1])

    def test_validate_row_not_null(self):
        with pytest.raises(SqlTypeError):
            self._schema().validate_row([None, "x"])

    def test_row_from_mapping_fills_nulls(self):
        schema = self._schema()
        assert schema.row_from_mapping({"id": 1}) == (1, None)

    def test_row_from_mapping_rejects_unknown(self):
        with pytest.raises(SqlCatalogError):
            self._schema().row_from_mapping({"id": 1, "bogus": 2})
