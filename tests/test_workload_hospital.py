"""Unit tests for the synthetic hospital model and entities."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.policy.rule import Rule
from repro.vocab.builtin import healthcare_vocabulary
from repro.workload.entities import Department, StaffMember, WorkflowPractice
from repro.workload.hospital import HospitalModel, build_hospital


class TestEntities:
    def test_staff_member_canonicalised(self):
        member = StaffMember("Nurse 01", "Nurse", "ER")
        assert member.user_id == "nurse_01"
        assert member.role == "nurse"
        assert member.department == "er"

    def test_department_roster(self):
        department = Department("ER")
        department.add_staff("n1", "nurse")
        department.add_staff("c1", "clerk")
        assert len(department.staff_with_role("NURSE")) == 1

    def test_practice_weight_validated(self):
        with pytest.raises(WorkloadError):
            WorkflowPractice("referral", "treatment", "nurse", weight=0)


class TestBuildHospital:
    def test_default_build_is_reproducible(self, vocabulary):
        a = build_hospital(vocabulary, seed=5)
        b = build_hospital(vocabulary, seed=5)
        assert [p.key() for p in a.practices] == [p.key() for p in b.practices]
        assert [p.weight for p in a.practices] == [p.weight for p in b.practices]

    def test_staffing_counts(self, vocabulary):
        hospital = build_hospital(vocabulary, departments=2, staff_per_role=3)
        assert len(hospital.departments) == 2
        # 5 roles x 3 each x 2 departments
        assert len(hospital.all_staff()) == 30
        assert len(hospital.staff_with_role("nurse")) == 6

    def test_parameters_validated(self, vocabulary):
        with pytest.raises(WorkloadError):
            build_hospital(vocabulary, departments=0)

    def test_practices_reference_staffed_roles(self, vocabulary):
        hospital = build_hospital(vocabulary)
        roles = set(hospital.roles())
        assert all(practice.role in roles for practice in hospital.practices)

    def test_add_practice_requires_staffed_role(self, vocabulary):
        hospital = HospitalModel("h", vocabulary)
        with pytest.raises(WorkloadError):
            hospital.add_practice(WorkflowPractice("referral", "treatment", "nurse"))

    def test_practice_rules_deduplicated(self, vocabulary):
        hospital = build_hospital(vocabulary)
        rules = hospital.practice_rules()
        assert len(rules) == len(set(rules))


class TestDocumentedStore:
    def test_fraction_bounds_validated(self, vocabulary):
        hospital = build_hospital(vocabulary)
        with pytest.raises(WorkloadError):
            hospital.documented_store(1.5, random.Random(0))

    def test_zero_fraction_gives_empty_store(self, vocabulary):
        hospital = build_hospital(vocabulary)
        store = hospital.documented_store(0.0, random.Random(0))
        assert len(store) == 0

    def test_full_fraction_documents_everything(self, vocabulary):
        hospital = build_hospital(vocabulary)
        store = hospital.documented_store(1.0, random.Random(0))
        assert set(store) == set(hospital.practice_rules())

    def test_partial_fraction_weighted_toward_frequent(self, vocabulary):
        hospital = build_hospital(vocabulary, seed=5)
        store = hospital.documented_store(0.3, random.Random(5))
        assert 0 < len(store) < len(hospital.practice_rules())
        # the single heaviest practice must be documented
        heaviest = max(hospital.practices, key=lambda p: p.weight)
        rule = Rule.of(
            data=heaviest.data, purpose=heaviest.purpose, authorized=heaviest.role
        )
        assert rule in store

    def test_store_provenance_is_seed(self, vocabulary):
        hospital = build_hospital(vocabulary)
        store = hospital.documented_store(0.5, random.Random(0))
        for rule in store:
            assert store.record_for(rule).origin == "seed"


def test_fixture_vocabulary_matches_builtin(vocabulary):
    fresh = healthcare_vocabulary()
    assert fresh.attributes == vocabulary.attributes
