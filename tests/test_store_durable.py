"""DurableAuditLog: AuditLog-protocol parity and pipeline integration."""

from __future__ import annotations

import pytest

from repro.audit.classify import classify_exceptions
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import StoreError
from repro.hdb.auditing import ComplianceAuditor
from repro.refinement.engine import refine
from repro.refinement.filtering import filter_practice
from repro.store.durable import DurableAuditLog, StreamedAuditView, copy_to_durable
from repro.store.store import StoreConfig


@pytest.fixture()
def durable_table1(tmp_path, table1_log) -> DurableAuditLog:
    """The Section 5 trail persisted through the segmented store."""
    return copy_to_durable(
        table1_log, tmp_path / "t1",
        StoreConfig(max_segment_entries=3, fsync="off"),
    )


class TestProtocolParity:
    def test_len_and_iteration(self, durable_table1, table1_log):
        assert len(durable_table1) == len(table1_log)
        assert list(durable_table1) == list(table1_log)

    def test_getitem(self, durable_table1, table1_log):
        assert durable_table1[0] == table1_log[0]
        assert durable_table1[-1] == table1_log[-1]

    def test_getitem_out_of_range(self, durable_table1):
        with pytest.raises(IndexError):
            durable_table1[99]

    def test_entries_materialises(self, durable_table1, table1_log):
        assert durable_table1.entries == tuple(table1_log.entries)

    def test_window(self, durable_table1, table1_log):
        assert list(durable_table1.window(3, 8)) == list(table1_log.window(3, 8))

    def test_exceptions_regular_denials(self, durable_table1, table1_log):
        assert list(durable_table1.exceptions()) == list(table1_log.exceptions())
        assert list(durable_table1.regular()) == list(table1_log.regular())
        assert list(durable_table1.denials()) == list(table1_log.denials())

    def test_exception_rate(self, durable_table1, table1_log):
        assert durable_table1.exception_rate() == table1_log.exception_rate()

    def test_distinct_users(self, durable_table1, table1_log):
        assert durable_table1.distinct_users() == table1_log.distinct_users()

    def test_time_range(self, durable_table1, table1_log):
        assert durable_table1.time_range() == table1_log.time_range()

    def test_rule_histogram(self, durable_table1, table1_log):
        assert durable_table1.rule_histogram() == table1_log.rule_histogram()

    def test_to_policy(self, durable_table1, table1_log):
        assert tuple(durable_table1.to_policy()) == tuple(table1_log.to_policy())

    def test_where_chains(self, durable_table1, table1_log):
        durable = durable_table1.exceptions().where(lambda e: e.time > 5)
        plain = table1_log.exceptions().where(lambda e: e.time > 5)
        assert list(durable) == list(plain)

    def test_views_are_reiterable(self, durable_table1):
        view = durable_table1.exceptions()
        assert isinstance(view, StreamedAuditView)
        assert list(view) == list(view)
        assert len(view) == len(list(view))


class TestPipelineIntegration:
    def test_refine_matches_in_memory(
        self, durable_table1, table1_log, fig3_store, vocabulary
    ):
        on_disk = refine(fig3_store.policy(), durable_table1, vocabulary)
        in_memory = refine(fig3_store.policy(), table1_log, vocabulary)
        assert [p.rule for p in on_disk.useful_patterns] == [
            p.rule for p in in_memory.useful_patterns
        ]
        assert on_disk.coverage.ratio == in_memory.coverage.ratio
        assert on_disk.entry_coverage.ratio == in_memory.entry_coverage.ratio

    def test_filter_practice_matches(self, durable_table1, table1_log):
        assert list(filter_practice(durable_table1)) == list(
            filter_practice(table1_log)
        )

    def test_classify_exceptions_matches(self, durable_table1, table1_log):
        on_disk = classify_exceptions(durable_table1)
        in_memory = classify_exceptions(table1_log)
        assert [c.verdict for c in on_disk.classified] == [
            c.verdict for c in in_memory.classified
        ]

    def test_auditor_writes_through(self, tmp_path):
        durable = DurableAuditLog(tmp_path / "trail", StoreConfig(fsync="off"))
        auditor = ComplianceAuditor(log=durable)
        auditor.record_access(
            user="mark", role="nurse", purpose="registration",
            categories=("referral", "name"),
            op=AccessOp.ALLOW, status=AccessStatus.REGULAR,
        )
        durable.sync()
        assert len(durable) == 2
        reopened = DurableAuditLog(tmp_path / "trail", create=False)
        assert [entry.data for entry in reopened] == ["referral", "name"]


class TestLifecycle:
    def test_indexed_window_equals_full_scan_filter(self, tmp_path):
        durable = DurableAuditLog(
            tmp_path / "big", StoreConfig(max_segment_entries=7, fsync="off")
        )
        durable.extend(
            make_entry(tick, f"user{tick % 5}", "referral", "registration", "nurse")
            for tick in range(1, 101)
        )
        windowed = [entry.time for entry in durable.window(30, 61)]
        assert windowed == list(range(30, 61))

    def test_lookup_streams_matches(self, tmp_path):
        durable = DurableAuditLog(
            tmp_path / "big", StoreConfig(max_segment_entries=7, fsync="off")
        )
        durable.extend(
            make_entry(tick, f"user{tick % 5}", "referral", "registration", "nurse")
            for tick in range(1, 101)
        )
        hits = list(durable.lookup(user="user2"))
        assert [entry.time for entry in hits] == [
            tick for tick in range(1, 101) if tick % 5 == 2
        ]

    def test_close_then_read_raises(self, tmp_path):
        durable = DurableAuditLog(tmp_path / "d", StoreConfig(fsync="off"))
        durable.append(make_entry(1, "a", "referral", "registration", "nurse"))
        durable.close()
        with pytest.raises(StoreError):
            durable.append(make_entry(2, "a", "referral", "registration", "nurse"))

    def test_name_defaults_to_directory(self, tmp_path):
        durable = DurableAuditLog(tmp_path / "trail", StoreConfig(fsync="off"))
        assert durable.name == "trail"

    def test_copy_to_durable_roundtrip_empty(self, tmp_path):
        durable = copy_to_durable(AuditLog(), tmp_path / "empty")
        assert len(durable) == 0
        assert list(durable) == []


class TestLoopIntegration:
    def test_loop_accepts_same_rules_off_disk(self, tmp_path):
        from repro.experiments.harness import run_refinement_loop, standard_loop_setup
        from repro.refinement.review import ThresholdReview

        kwargs = dict(accesses_per_round=600, seed=11)
        in_memory = run_refinement_loop(
            standard_loop_setup(**kwargs), ThresholdReview(), rounds=3
        )
        durable = DurableAuditLog(
            tmp_path / "loop", StoreConfig(max_segment_entries=500, fsync="off")
        )
        on_disk = run_refinement_loop(
            standard_loop_setup(**kwargs), ThresholdReview(), rounds=3,
            cumulative_log=durable,
        )
        assert [r.rules_accepted for r in on_disk.rounds] == [
            r.rules_accepted for r in in_memory.rounds
        ]
        assert tuple(on_disk.store.policy()) == tuple(in_memory.store.policy())
        assert len(durable) == len(in_memory.cumulative_log)
        assert durable.verify().ok
