"""Property-based tests across the audit/mining/refinement pipeline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.entry import AuditEntry
from repro.audit.io import load_jsonl, save_jsonl
from repro.audit.log import AuditLog
from repro.audit.schema import AccessOp, AccessStatus
from repro.mining.apriori import AprioriPatternMiner, apriori, transactions_from_log
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.policy.policy import Policy
from repro.refinement.filtering import filter_practice
from repro.refinement.prune import prune_patterns
from repro.vocab.builtin import healthcare_vocabulary

VOCAB = healthcare_vocabulary()

users = st.sampled_from(["ann", "bob", "cid", "dee"])
data_values = st.sampled_from(["referral", "prescription", "psychiatry", "address"])
purposes = st.sampled_from(["treatment", "registration", "billing"])
roles = st.sampled_from(["nurse", "clerk", "doctor"])
ops = st.sampled_from([AccessOp.ALLOW, AccessOp.DENY])
statuses = st.sampled_from([AccessStatus.REGULAR, AccessStatus.EXCEPTION])


@st.composite
def audit_logs(draw, min_size: int = 0, max_size: int = 30) -> AuditLog:
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    log = AuditLog()
    for tick in range(1, count + 1):
        log.append(
            AuditEntry(
                time=tick,
                op=draw(ops),
                user=draw(users),
                data=draw(data_values),
                purpose=draw(purposes),
                authorized=draw(roles),
                status=draw(statuses),
            )
        )
    return log


class TestAuditProperties:
    @settings(max_examples=40)
    @given(audit_logs())
    def test_jsonl_round_trip(self, tmp_path_factory, log):
        path = tmp_path_factory.mktemp("logs") / "log.jsonl"
        save_jsonl(log, path)
        assert load_jsonl(path).entries == log.entries

    @settings(max_examples=60)
    @given(audit_logs())
    def test_filter_subsets_and_idempotent(self, log):
        practice = filter_practice(log)
        assert len(practice) <= len(log)
        assert all(e.is_exception and e.is_allowed for e in practice)
        assert filter_practice(practice).entries == practice.entries

    @settings(max_examples=60)
    @given(audit_logs())
    def test_slices_partition_allowed_traffic(self, log):
        assert len(log.exceptions()) + len(log.regular()) + len(log.denials()) == len(log)


class TestMiningProperties:
    @settings(max_examples=40)
    @given(audit_logs(min_size=1))
    def test_sql_and_apriori_miners_agree(self, log):
        config = MiningConfig(min_support=2, min_distinct_users=1)
        practice = filter_practice(log)
        sql = SqlPatternMiner().mine(practice, config)
        ap = AprioriPatternMiner().mine(practice, config)
        assert {(p.rule, p.support, p.distinct_users) for p in sql} == {
            (p.rule, p.support, p.distinct_users) for p in ap
        }

    @settings(max_examples=40)
    @given(audit_logs(min_size=1), st.integers(min_value=1, max_value=6))
    def test_apriori_supports_meet_threshold(self, log, min_support):
        transactions = transactions_from_log(log, ("data", "purpose", "authorized"))
        for itemset in apriori(transactions, min_support):
            assert itemset.support >= min_support
            # recount from scratch
            actual = sum(1 for t in transactions if itemset.items <= t)
            assert actual == itemset.support

    @settings(max_examples=40)
    @given(audit_logs(min_size=1))
    def test_apriori_anti_monotone(self, log):
        transactions = transactions_from_log(log, ("data", "purpose", "authorized"))
        found = {fi.items: fi.support for fi in apriori(transactions, 2)}
        for items, support in found.items():
            for item in items:
                subset = items - {item}
                if subset:
                    assert found[subset] >= support

    @settings(max_examples=40)
    @given(audit_logs(min_size=1))
    def test_mined_support_bounded_by_practice_size(self, log):
        practice = filter_practice(log)
        config = MiningConfig(min_support=1, min_distinct_users=1)
        for pattern in SqlPatternMiner().mine(practice, config):
            assert pattern.support <= len(practice)
            assert pattern.distinct_users <= pattern.support


class TestPruneProperties:
    @settings(max_examples=40)
    @given(audit_logs(min_size=1))
    def test_prune_partitions_patterns(self, log):
        practice = filter_practice(log)
        config = MiningConfig(min_support=1, min_distinct_users=1)
        patterns = SqlPatternMiner().mine(practice, config)
        store = Policy(
            [e.to_rule() for e in log.regular()] or []
        )
        if store.cardinality == 0:
            return
        result = prune_patterns(patterns, store, VOCAB)
        assert set(result.useful) | set(result.pruned) == set(patterns)
        assert not (set(result.useful) & set(result.pruned))

    @settings(max_examples=40)
    @given(audit_logs(min_size=1))
    def test_novel_range_disjoint_from_store_range(self, log):
        from repro.policy.grounding import policy_range

        practice = filter_practice(log)
        config = MiningConfig(min_support=1, min_distinct_users=1)
        patterns = SqlPatternMiner().mine(practice, config)
        store = Policy([e.to_rule() for e in log.regular()])
        if store.cardinality == 0:
            return
        result = prune_patterns(patterns, store, VOCAB)
        store_range = policy_range(store, VOCAB)
        assert (result.novel_range & store_range).cardinality == 0
