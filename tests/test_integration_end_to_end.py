"""End-to-end integration: enforce → audit → federate → refine → amend.

This is the whole PRIMA architecture (Figure 4) exercised in one flow:
clinical queries run through Active Enforcement at two hospital sites,
Compliance Auditing produces the logs, Audit Management consolidates them,
the Refinement pipeline mines the break-the-glass traffic, the review
queue pushes an accepted rule into the policy store, and the previously
exceptional workflow becomes sanctioned.
"""

from __future__ import annotations

import pytest

from repro.audit.schema import AccessStatus
from repro.errors import AccessDeniedError
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import TableBinding
from repro.hdb.federation import AuditFederation
from repro.mining.patterns import MiningConfig
from repro.policy.rule import Rule
from repro.refinement.engine import RefinementConfig, refine
from repro.refinement.review import ReviewQueue
from repro.sqlmini.database import Database
from repro.vocab.builtin import healthcare_vocabulary


def _make_site(vocabulary, site: str) -> HdbControlCenter:
    center = HdbControlCenter(vocabulary)
    center.database.execute(
        "CREATE TABLE patients (pid TEXT NOT NULL, name TEXT, referral TEXT, "
        "prescription TEXT)"
    )
    center.database.execute(
        f"INSERT INTO patients VALUES "
        f"('{site}-p1', 'One', 'ref-1', 'rx-1'), "
        f"('{site}-p2', 'Two', 'ref-2', 'rx-2')"
    )
    center.bind_table(
        TableBinding(
            "patients",
            "pid",
            {"name": "name", "referral": "referral", "prescription": "prescription"},
        )
    )
    center.define_rule("ALLOW nurse TO USE medical_records FOR treatment")
    return center


def test_full_prima_cycle():
    vocabulary = healthcare_vocabulary()
    sites = {name: _make_site(vocabulary, name) for name in ("cardio", "er")}

    # --- phase 1: clinical operation ------------------------------------
    # sanctioned traffic
    for center in sites.values():
        center.run("nurse_a", "nurse", "treatment", "SELECT referral FROM patients")

    # registration staff need referral data but the policy never said so:
    # the sanctioned path denies them ...
    with pytest.raises(AccessDeniedError):
        sites["cardio"].run(
            "nurse_b", "nurse", "registration", "SELECT referral FROM patients"
        )
    # ... so they break the glass, repeatedly, across sites and users
    for center, users in ((sites["cardio"], ("nurse_b", "nurse_c")),
                          (sites["er"], ("nurse_d",))):
        for user in users:
            for _ in range(2):
                center.run(
                    user, "nurse", "registration",
                    "SELECT referral FROM patients", exception=True,
                )

    # --- phase 2: audit management (federation) -------------------------
    federation = AuditFederation()
    for name, center in sites.items():
        federation.register(name, center.audit_log)
    consolidated = federation.consolidated_log()
    assert len(consolidated) == 2 + 1 + 6  # allow x2, deny x1, btg x6

    # the federated view is queryable with provenance
    analysis_db = Database()
    federation.register_view(analysis_db)
    by_site = analysis_db.query(
        "SELECT site, COUNT(*) FROM federated_audit WHERE status = 0 "
        "GROUP BY site ORDER BY site"
    )
    assert by_site.rows == (("cardio", 4), ("er", 2))

    # --- phase 3: refinement ---------------------------------------------
    store = sites["cardio"].policy_store  # shared organisational policy
    result = refine(
        store.policy(),
        consolidated,
        vocabulary,
        RefinementConfig(mining=MiningConfig(min_support=5)),
    )
    expected = Rule.of(data="referral", purpose="registration", authorized="nurse")
    assert result.candidate_rules == (expected,)
    assert result.useful_patterns[0].support == 6
    assert result.useful_patterns[0].distinct_users == 3

    # --- phase 4: human review and amendment -----------------------------
    queue = ReviewQueue(result.useful_patterns)
    queue.accept(result.useful_patterns[0], reviewer="privacy-officer")
    assert queue.apply(store) == 1

    # --- phase 5: the workflow is now sanctioned --------------------------
    outcome = sites["cardio"].run(
        "nurse_b", "nurse", "registration", "SELECT referral FROM patients"
    )
    assert outcome.status is AccessStatus.REGULAR
    assert outcome.categories_returned == ("referral",)

    # and a second refinement pass proposes nothing new
    second = refine(
        store.policy(),
        federation.consolidated_log(),
        vocabulary,
        RefinementConfig(mining=MiningConfig(min_support=5)),
    )
    assert second.useful_patterns == ()
