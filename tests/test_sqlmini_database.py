"""Unit tests for the Database catalog."""

from __future__ import annotations

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlCatalogError, SqlExecutionError
from repro.sqlmini.schema import Column
from repro.sqlmini.types import SqlType


class TestCatalog:
    def test_create_and_lookup(self):
        db = Database()
        db.define_table("t", [("a", "integer"), ("b", SqlType.TEXT)])
        assert "t" in db
        assert db.table("T").schema.column_names == ("a", "b")

    def test_define_table_with_nullability(self):
        db = Database()
        table = db.define_table("t", [("a", "integer", False)])
        assert table.schema.column("a").nullable is False

    def test_duplicate_table_rejected(self):
        db = Database()
        db.define_table("t", [("a", "integer")])
        with pytest.raises(SqlCatalogError):
            db.define_table("T", [("a", "integer")])

    def test_missing_table_error_lists_known(self):
        db = Database()
        db.define_table("known", [("a", "integer")])
        with pytest.raises(SqlCatalogError, match="known"):
            db.table("missing")

    def test_drop_table(self):
        db = Database()
        db.define_table("t", [("a", "integer")])
        db.drop_table("t")
        assert "t" not in db
        with pytest.raises(SqlCatalogError):
            db.drop_table("t")

    def test_table_names_sorted(self):
        db = Database()
        db.define_table("zeta", [("a", "integer")])
        db.define_table("alpha", [("a", "integer")])
        assert db.table_names == ("alpha", "zeta")


class TestViews:
    def test_register_and_query_view(self):
        db = Database()
        rows = [(1,), (2,)]
        db.register_view("v", (Column("a", SqlType.INTEGER),), lambda: iter(rows))
        assert db.query("SELECT SUM(a) FROM v").scalar() == 3
        rows.append((3,))
        assert db.query("SELECT SUM(a) FROM v").scalar() == 6

    def test_view_name_conflict(self):
        db = Database()
        db.define_table("v", [("a", "integer")])
        with pytest.raises(SqlCatalogError):
            db.register_view("v", (Column("a", SqlType.INTEGER),), lambda: iter(()))


class TestEntryPoints:
    def test_query_rejects_dml(self):
        db = Database()
        db.define_table("t", [("a", "integer")])
        with pytest.raises(SqlExecutionError):
            db.query("INSERT INTO t VALUES (1)")

    def test_execute_runs_ddl_and_query(self):
        db = Database()
        assert db.execute("CREATE TABLE t (a INTEGER)") == 0
        assert db.execute("INSERT INTO t VALUES (1), (2)") == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
