"""Property tests: the daemon's watermark under arbitrary interleavings.

Hypothesis drives random schedules of *append / seal / poll / compact*
against a durable store with a tailing :class:`RefineDaemon` and checks
the two safety invariants of incremental consumption:

- **exactly-once**: the concatenation of everything the daemon ever
  consumed equals the sealed region's entries in global append order —
  no entry is mined twice, none is skipped, across polls, restarts and
  compactions;
- **watermark bounds**: the watermark never runs ahead of the sealed
  entry count (unsealed entries are invisible) and never moves backwards.

Mining is disarmed (all triggers off) so the schedules explore the
tailing machinery, not pattern quality — the mining semantics have their
own deterministic suite in ``tests/test_refine_daemon_sim.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.log import make_entry
from repro.audit.schema import AccessStatus
from repro.mining.patterns import MiningConfig
from repro.policy.store import PolicyStore
from repro.refine_daemon import AutoAcceptGate, DaemonConfig, RefineDaemon, StorePolicyTarget
from repro.store.durable import DurableAuditLog
from repro.store.store import StoreConfig
from repro.vocab.builtin import healthcare_vocabulary

VOCABULARY = healthcare_vocabulary()

#: values the shared vocabulary resolves, so grounding always succeeds
DATA = ("referral", "prescription", "lab_results")
PURPOSES = ("treatment", "registration", "billing")
ROLES = ("nurse", "clerk", "physician")

#: one schedule step: append a batch, seal, poll, restart the daemon
#: (fresh instance over the same state file), or compact the store
ops = st.one_of(
    st.tuples(st.just("append"), st.integers(min_value=1, max_value=7)),
    st.tuples(st.just("seal"), st.just(0)),
    st.tuples(st.just("poll"), st.just(0)),
    st.tuples(st.just("restart"), st.just(0)),
    st.tuples(st.just("compact"), st.just(0)),
)


def build_daemon(log, consumed: list) -> RefineDaemon:
    """A mining-disarmed daemon that records every consumed entry key."""
    return RefineDaemon(
        log,
        StorePolicyTarget(PolicyStore()),
        VOCABULARY,
        AutoAcceptGate(),
        DaemonConfig(
            mining=MiningConfig(min_support=5, min_distinct_users=2),
            mine_every_polls=0,
            entry_observer=consumed.append,
        ),
    )


class TestWatermarkInterleavings:
    @settings(max_examples=40, deadline=None)
    @given(schedule=st.lists(ops, min_size=1, max_size=24), data=st.data())
    def test_exactly_once_consumption(self, tmp_path_factory, schedule, data):
        directory = tmp_path_factory.mktemp("wm") / "trail"
        log = DurableAuditLog(
            directory,
            config=StoreConfig(max_segment_entries=100_000, fsync="off"),
        )
        consumed: list = []
        daemon = build_daemon(log, consumed)
        appended: list = []  # every entry key ever appended, in order
        sealed_count = 0  # entries inside sealed segments right now
        tick = 0
        watermarks = [0]
        try:
            for op, arg in schedule:
                if op == "append":
                    for _ in range(arg):
                        tick += 1
                        key = (
                            DATA[data.draw(st.integers(0, len(DATA) - 1))],
                            PURPOSES[data.draw(st.integers(0, len(PURPOSES) - 1))],
                            ROLES[data.draw(st.integers(0, len(ROLES) - 1))],
                        )
                        appended.append(key)
                        log.append(
                            make_entry(
                                tick, f"u{tick % 4}", *key,
                                status=AccessStatus.EXCEPTION,
                            )
                        )
                elif op == "seal":
                    if log.seal_active() is not None:
                        sealed_count = len(appended)
                elif op == "poll":
                    report = daemon.poll()
                    watermarks.append(report.watermark)
                elif op == "restart":
                    daemon = build_daemon(log, consumed)
                else:  # compact: merge sealed history under new names
                    log.store.compact()
            daemon.poll()  # final drain of whatever is sealed
            watermarks.append(daemon.state.watermark)
        finally:
            log.close()
        # exactly-once: consumed == the sealed prefix, in append order
        assert consumed == appended[:sealed_count]
        # bounds: never past the sealed region, never backwards
        assert all(w <= sealed_count for w in watermarks)
        assert watermarks == sorted(watermarks)

    @settings(max_examples=25, deadline=None)
    @given(
        batches=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=8),
        compact_after=st.integers(min_value=0, max_value=7),
    )
    def test_compaction_never_disturbs_the_tail(
        self, tmp_path_factory, batches, compact_after
    ):
        """Seal → poll → compact cycles: the post-compaction straddling
        segment (consumed head + unconsumed tail in one file) still
        yields exactly the unconsumed suffix."""
        directory = tmp_path_factory.mktemp("wmc") / "trail"
        log = DurableAuditLog(
            directory, config=StoreConfig(max_segment_entries=4, fsync="off")
        )
        consumed: list = []
        daemon = build_daemon(log, consumed)
        appended: list = []
        tick = 0
        try:
            for index, batch in enumerate(batches):
                for _ in range(batch):
                    tick += 1
                    key = (DATA[tick % 3], PURPOSES[tick % 3], ROLES[tick % 3])
                    appended.append(key)
                    log.append(
                        make_entry(
                            tick, f"u{tick % 3}", *key,
                            status=AccessStatus.EXCEPTION,
                        )
                    )
                log.seal_active()
                daemon.poll()
                if index == compact_after:
                    log.store.compact()
                    daemon = build_daemon(log, consumed)  # restart post-compact
            daemon.poll()
        finally:
            log.close()
        assert consumed == appended
        assert daemon.state.watermark == len(appended)
