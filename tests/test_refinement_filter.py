"""Unit tests for Algorithm 3 (Filter)."""

from __future__ import annotations

from repro.audit.classify import ClassifierConfig
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessOp, AccessStatus
from repro.refinement.filtering import filter_practice


class TestBasicFilter:
    def test_keeps_only_exceptions(self, table1_log):
        practice = filter_practice(table1_log)
        assert len(practice) == 7
        assert all(entry.is_exception for entry in practice)
        assert [entry.time for entry in practice] == [3, 4, 6, 7, 8, 9, 10]

    def test_denied_requests_dropped_by_default(self):
        log = AuditLog()
        log.append(
            make_entry(1, "x", "psychiatry", "research", "clerk",
                       op=AccessOp.DENY, status=AccessStatus.EXCEPTION)
        )
        log.append(
            make_entry(2, "y", "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        practice = filter_practice(log)
        assert len(practice) == 1
        assert practice[0].user == "y"

    def test_include_denied_restores_literal_algorithm3(self):
        log = AuditLog()
        log.append(
            make_entry(1, "x", "psychiatry", "research", "clerk",
                       op=AccessOp.DENY, status=AccessStatus.EXCEPTION)
        )
        practice = filter_practice(log, include_denied=True)
        assert len(practice) == 1

    def test_result_is_fresh_log_with_practice_name(self, table1_log):
        practice = filter_practice(table1_log)
        assert practice.name.endswith(".practice")
        assert practice is not table1_log

    def test_idempotent(self, table1_log):
        once = filter_practice(table1_log)
        twice = filter_practice(once)
        assert once.entries == twice.entries


class TestViolationExclusion:
    def _mixed_log(self) -> AuditLog:
        log = AuditLog()
        tick = 1
        # practice: 3 users, 6 occurrences
        for user in ("a", "b", "c", "a", "b", "c"):
            log.append(
                make_entry(tick, user, "referral", "registration", "nurse",
                           status=AccessStatus.EXCEPTION, truth="practice")
            )
            tick += 1
        # snooper: single user, 4 occurrences
        for _ in range(4):
            log.append(
                make_entry(tick, "creep", "psychiatry", "telemarketing", "clerk",
                           status=AccessStatus.EXCEPTION, truth="violation")
            )
            tick += 1
        return log

    def test_suspected_violations_excluded(self):
        log = self._mixed_log()
        plain = filter_practice(log)
        screened = filter_practice(log, exclude_suspected_violations=True)
        assert len(plain) == 10
        assert len(screened) == 6
        assert all(entry.truth == "practice" for entry in screened)

    def test_classifier_config_forwarded(self):
        log = self._mixed_log()
        lax = ClassifierConfig(min_support=1, min_distinct_users=1)
        screened = filter_practice(
            log, exclude_suspected_violations=True, classifier_config=lax
        )
        # with trivial thresholds everything looks like practice
        assert len(screened) == 10


class TestLazyStreaming:
    """filter_practice must not materialise disk-backed logs (PR 3's
    bounded-memory streaming claim)."""

    def _durable(self, tmp_path, entries=60, segment_entries=7):
        from repro.store.durable import DurableAuditLog
        from repro.store.store import StoreConfig

        log = DurableAuditLog(
            tmp_path / "store",
            config=StoreConfig(max_segment_entries=segment_entries),
            name="trail",
        )
        for tick in range(entries):
            status = AccessStatus.EXCEPTION if tick % 3 == 0 else AccessStatus.REGULAR
            log.append(
                make_entry(tick, f"u{tick % 5}", "referral", "registration",
                           "nurse", status=status)
            )
        log.sync()
        return log

    def test_durable_log_yields_lazy_view_over_many_segments(self, tmp_path):
        from repro.store.durable import StreamedAuditView

        log = self._durable(tmp_path)
        assert log.stats().sealed_segments > 3  # genuinely multi-segment
        practice = filter_practice(log)
        assert isinstance(practice, StreamedAuditView)
        assert not isinstance(practice, AuditLog)  # nothing materialised
        assert practice.name == "trail.practice"
        # re-iterable: two passes see the same entries
        first = [entry.time for entry in practice]
        second = [entry.time for entry in practice]
        assert first == second == [t for t in range(60) if t % 3 == 0]
        log.close()

    def test_view_is_live_not_a_snapshot(self, tmp_path):
        log = self._durable(tmp_path)
        practice = filter_practice(log)
        before = sum(1 for _ in practice)
        log.append(
            make_entry(99, "late", "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        assert sum(1 for _ in practice) == before + 1
        log.close()

    def test_screened_durable_filter_stays_lazy(self, tmp_path):
        from repro.store.durable import StreamedAuditView

        log = self._durable(tmp_path)
        screened = filter_practice(log, exclude_suspected_violations=True)
        assert isinstance(screened, StreamedAuditView)
        assert sum(1 for _ in screened) > 0
        log.close()

    def test_in_memory_input_still_returns_audit_log(self, table1_log):
        practice = filter_practice(table1_log)
        assert isinstance(practice, AuditLog)
        assert practice.entries == practice.entries  # materialised, indexable


class TestClassifyScope:
    def _echoed_rare_log(self) -> AuditLog:
        log = AuditLog()
        tick = 1
        # solid practice: 3 users, 6 exception occurrences
        for user in ("a", "b", "c", "a", "b", "c"):
            log.append(
                make_entry(tick, user, "referral", "registration", "nurse",
                           status=AccessStatus.EXCEPTION)
            )
            tick += 1
        # rare exception combination... (1 user, 1 occurrence)
        log.append(
            make_entry(tick, "solo", "labs", "billing", "clerk",
                       status=AccessStatus.EXCEPTION)
        )
        tick += 1
        # ...that also flows through the sanctioned path (regular echo)
        log.append(
            make_entry(tick, "other", "labs", "billing", "clerk",
                       status=AccessStatus.REGULAR)
        )
        return log

    def test_log_scope_keeps_echoed_rare_combination(self):
        log = self._echoed_rare_log()
        screened = filter_practice(
            log, exclude_suspected_violations=True, classify_scope="log"
        )
        # the regular echo rescues the rare entry under the full-log scope
        assert len(screened) == 7
        assert any(entry.user == "solo" for entry in screened)

    def test_practice_scope_drops_echoed_rare_combination(self):
        log = self._echoed_rare_log()
        screened = filter_practice(
            log, exclude_suspected_violations=True, classify_scope="practice"
        )
        # the practice subset holds no regular entries, so no echo rescue:
        # the rare combination fails the thresholds and is excluded
        assert len(screened) == 6
        assert all(entry.user != "solo" for entry in screened)

    def test_default_scope_is_log(self):
        log = self._echoed_rare_log()
        default = filter_practice(log, exclude_suspected_violations=True)
        explicit = filter_practice(
            log, exclude_suspected_violations=True, classify_scope="log"
        )
        assert default.entries == explicit.entries

    def test_scopes_agree_when_no_echo_is_involved(self):
        log = AuditLog()
        for tick, user in enumerate(("a", "b", "c", "a", "b", "c"), start=1):
            log.append(
                make_entry(tick, user, "referral", "registration", "nurse",
                           status=AccessStatus.EXCEPTION)
            )
        log.append(
            make_entry(9, "creep", "psychiatry", "telemarketing", "clerk",
                       status=AccessStatus.EXCEPTION)
        )
        by_log = filter_practice(
            log, exclude_suspected_violations=True, classify_scope="log"
        )
        by_practice = filter_practice(
            log, exclude_suspected_violations=True, classify_scope="practice"
        )
        assert by_log.entries == by_practice.entries

    def test_unknown_scope_rejected(self, table1_log):
        import pytest

        with pytest.raises(ValueError):
            filter_practice(table1_log, classify_scope="everything")
