"""Unit tests for Algorithm 3 (Filter)."""

from __future__ import annotations

from repro.audit.classify import ClassifierConfig
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessOp, AccessStatus
from repro.refinement.filtering import filter_practice


class TestBasicFilter:
    def test_keeps_only_exceptions(self, table1_log):
        practice = filter_practice(table1_log)
        assert len(practice) == 7
        assert all(entry.is_exception for entry in practice)
        assert [entry.time for entry in practice] == [3, 4, 6, 7, 8, 9, 10]

    def test_denied_requests_dropped_by_default(self):
        log = AuditLog()
        log.append(
            make_entry(1, "x", "psychiatry", "research", "clerk",
                       op=AccessOp.DENY, status=AccessStatus.EXCEPTION)
        )
        log.append(
            make_entry(2, "y", "referral", "registration", "nurse",
                       status=AccessStatus.EXCEPTION)
        )
        practice = filter_practice(log)
        assert len(practice) == 1
        assert practice[0].user == "y"

    def test_include_denied_restores_literal_algorithm3(self):
        log = AuditLog()
        log.append(
            make_entry(1, "x", "psychiatry", "research", "clerk",
                       op=AccessOp.DENY, status=AccessStatus.EXCEPTION)
        )
        practice = filter_practice(log, include_denied=True)
        assert len(practice) == 1

    def test_result_is_fresh_log_with_practice_name(self, table1_log):
        practice = filter_practice(table1_log)
        assert practice.name.endswith(".practice")
        assert practice is not table1_log

    def test_idempotent(self, table1_log):
        once = filter_practice(table1_log)
        twice = filter_practice(once)
        assert once.entries == twice.entries


class TestViolationExclusion:
    def _mixed_log(self) -> AuditLog:
        log = AuditLog()
        tick = 1
        # practice: 3 users, 6 occurrences
        for user in ("a", "b", "c", "a", "b", "c"):
            log.append(
                make_entry(tick, user, "referral", "registration", "nurse",
                           status=AccessStatus.EXCEPTION, truth="practice")
            )
            tick += 1
        # snooper: single user, 4 occurrences
        for _ in range(4):
            log.append(
                make_entry(tick, "creep", "psychiatry", "telemarketing", "clerk",
                           status=AccessStatus.EXCEPTION, truth="violation")
            )
            tick += 1
        return log

    def test_suspected_violations_excluded(self):
        log = self._mixed_log()
        plain = filter_practice(log)
        screened = filter_practice(log, exclude_suspected_violations=True)
        assert len(plain) == 10
        assert len(screened) == 6
        assert all(entry.truth == "practice" for entry in screened)

    def test_classifier_config_forwarded(self):
        log = self._mixed_log()
        lax = ClassifierConfig(min_support=1, min_distinct_users=1)
        screened = filter_practice(
            log, exclude_suspected_violations=True, classifier_config=lax
        )
        # with trivial thresholds everything looks like practice
        assert len(screened) == 10
