"""Unit tests for Compliance Auditing and the logical clock."""

from __future__ import annotations

from repro.audit.schema import AccessOp, AccessStatus
from repro.hdb.auditing import ComplianceAuditor, LogicalClock


class TestLogicalClock:
    def test_monotone(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.peek() == 3

    def test_custom_start(self):
        assert LogicalClock(start=100).tick() == 100

    def test_advance_to(self):
        clock = LogicalClock()
        clock.advance_to(50)
        assert clock.tick() == 50

    def test_advance_to_rejects_rewind(self):
        import pytest

        clock = LogicalClock(start=10)
        with pytest.raises(ValueError):
            clock.advance_to(5)


class TestComplianceAuditor:
    def test_one_entry_per_category_single_tick(self):
        auditor = ComplianceAuditor()
        entries = auditor.record_access(
            user="john",
            role="nurse",
            purpose="treatment",
            categories=("prescription", "referral"),
            op=AccessOp.ALLOW,
            status=AccessStatus.REGULAR,
        )
        assert len(entries) == 2
        assert entries[0].time == entries[1].time == 1
        assert {e.data for e in entries} == {"prescription", "referral"}
        assert len(auditor.log) == 2

    def test_empty_categories_writes_nothing(self):
        auditor = ComplianceAuditor()
        assert auditor.record_access(
            "u", "nurse", "treatment", (), AccessOp.ALLOW, AccessStatus.REGULAR
        ) == ()
        assert len(auditor.log) == 0
        assert auditor.clock.peek() == 1  # the clock did not advance

    def test_stats_counters(self):
        auditor = ComplianceAuditor()
        auditor.record_access(
            "u", "nurse", "treatment", ("a_cat", "b_cat"),
            AccessOp.ALLOW, AccessStatus.REGULAR,
        )
        auditor.record_access(
            "u", "nurse", "treatment", ("c_cat",),
            AccessOp.DENY, AccessStatus.REGULAR,
        )
        assert auditor.stats.entries_written == 3
        assert auditor.stats.requests_audited == 2

    def test_truth_label_propagates(self):
        auditor = ComplianceAuditor()
        entries = auditor.record_access(
            "u", "nurse", "treatment", ("a_cat",),
            AccessOp.ALLOW, AccessStatus.EXCEPTION, truth="practice",
        )
        assert entries[0].truth == "practice"

    def test_times_strictly_increase_across_requests(self):
        auditor = ComplianceAuditor()
        first = auditor.record_access(
            "u", "nurse", "treatment", ("a_cat",),
            AccessOp.ALLOW, AccessStatus.REGULAR,
        )
        second = auditor.record_access(
            "u", "nurse", "treatment", ("b_cat",),
            AccessOp.ALLOW, AccessStatus.REGULAR,
        )
        assert second[0].time == first[0].time + 1
