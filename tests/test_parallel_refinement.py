"""Tests for the sharded map-reduce refinement layer (repro.parallel).

The headline property is *serial equivalence*: a parallel refine must
return exactly what the serial pipeline returns — patterns in the same
order, identical prune partition, identical coverage ratios and
uncovered-entry indices, identical practice subset — over every source
shape and miner the layer supports.
"""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import RefinementError
from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import (
    SqlPartialAggregate,
    SqlPatternMiner,
    finalize_patterns,
)
from repro.parallel.execution import ExecutionPolicy
from repro.parallel.partials import MapTask, map_shard
from repro.parallel.pool import run_sharded
from repro.parallel.refine import parallel_refine, supports_parallel_miner
from repro.parallel.shards import Shard, iter_shard, shards_of
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.refinement.engine import RefinementConfig, refine
from repro.store.durable import copy_to_durable
from repro.store.store import StoreConfig


# The ``vocabulary`` fixture comes from conftest (Figure 1 healthcare
# vocabulary); the values below that are not in it ("labs") are treated
# as ground atoms by the non-strict vocabulary.
@pytest.fixture(scope="module")
def policy_store() -> Policy:
    return Policy(
        [
            Rule.from_pairs(
                [("data", "labs"), ("purpose", "treatment"), ("authorized", "doctor")]
            )
        ],
        source=PolicySource.POLICY_STORE,
        name="store",
    )


def build_log(entries: int = 400, name: str = "trail") -> AuditLog:
    """Deterministic mixed workload of exactly ``entries`` entries:
    practice clusters, regulars, a rare echoed combination, and a
    lone-wolf suspected violation (the last four entries)."""
    log = AuditLog(name=name)
    combos = [
        ("referral", "registration", "nurse"),
        ("labs", "treatment", "doctor"),
        ("prescription", "treatment", "nurse"),
        ("labs", "billing", "clerk"),
    ]
    for tick in range(entries - 4):
        data, purpose, role = combos[tick % len(combos)]
        status = AccessStatus.EXCEPTION if tick % 3 != 2 else AccessStatus.REGULAR
        log.append(
            make_entry(tick, f"u{tick % 7}", data, purpose, role, status=status)
        )
    tick = entries - 4
    # a lone-wolf rare combination (1 user, 2 hits, no echo) -> suspected
    for _ in range(2):
        log.append(
            make_entry(tick, "creep", "psychiatry", "telemarketing", "clerk",
                       status=AccessStatus.EXCEPTION)
        )
        tick += 1
    # a rare combination with a regular echo -> rescued under scope="log"
    log.append(
        make_entry(tick, "solo", "psychiatry", "billing", "doctor",
                   status=AccessStatus.EXCEPTION)
    )
    log.append(
        make_entry(tick + 1, "other", "psychiatry", "billing", "doctor",
                   status=AccessStatus.REGULAR)
    )
    return log


def assert_identical(serial, par):
    assert serial.patterns == par.patterns
    assert serial.useful_patterns == par.useful_patterns
    assert serial.pruned_patterns == par.pruned_patterns
    assert serial.coverage.ratio == par.coverage.ratio
    assert serial.coverage.overlap == par.coverage.overlap
    assert serial.coverage.reference == par.coverage.reference
    assert serial.entry_coverage.ratio == par.entry_coverage.ratio
    assert serial.entry_coverage.matched == par.entry_coverage.matched
    assert serial.entry_coverage.total == par.entry_coverage.total
    assert (
        serial.entry_coverage.uncovered_entries
        == par.entry_coverage.uncovered_entries
    )
    assert [(e.time, e.user) for e in serial.practice] == [
        (e.time, e.user) for e in par.practice
    ]
    assert serial.practice.name == par.practice.name


CONFIG_CASES = {
    "sql": {},
    "sql-screened": {"exclude_suspected_violations": True},
    "sql-screened-practice-scope": {
        "exclude_suspected_violations": True,
        "classify_scope": "practice",
    },
    "sql-denied": {"include_denied": True},
    "apriori": {"miner": AprioriPatternMiner()},
    "apriori-screened": {
        "miner": AprioriPatternMiner(),
        "exclude_suspected_violations": True,
    },
}


# ----------------------------------------------------------------------
# serial equivalence
# ----------------------------------------------------------------------
class TestSerialEquivalence:
    @pytest.mark.parametrize("case", sorted(CONFIG_CASES))
    def test_in_memory_log(self, case, policy_store, vocabulary):
        log = build_log()
        kwargs = CONFIG_CASES[case]
        mining = MiningConfig(min_support=5, min_distinct_users=2)
        serial = refine(
            policy_store, log, vocabulary,
            RefinementConfig(mining=mining, **kwargs), Grounder(vocabulary),
        )
        par = refine(
            policy_store, log, vocabulary,
            RefinementConfig(
                mining=mining, execution=ExecutionPolicy(workers=3), **kwargs
            ),
            Grounder(vocabulary),
        )
        assert serial.patterns  # the workload must actually mine something
        assert_identical(serial, par)

    @pytest.mark.parametrize("case", sorted(CONFIG_CASES))
    def test_multi_segment_durable_store(self, case, policy_store, vocabulary, tmp_path):
        log = build_log()
        durable = copy_to_durable(
            log, tmp_path / "store", config=StoreConfig(max_segment_entries=45)
        )
        try:
            assert durable.stats().sealed_segments >= 5
            kwargs = CONFIG_CASES[case]
            mining = MiningConfig(min_support=5, min_distinct_users=2)
            serial = refine(
                policy_store, durable, vocabulary,
                RefinementConfig(mining=mining, **kwargs), Grounder(vocabulary),
            )
            par = refine(
                policy_store, durable, vocabulary,
                RefinementConfig(
                    mining=mining, execution=ExecutionPolicy(workers=3), **kwargs
                ),
                Grounder(vocabulary),
            )
            assert_identical(serial, par)
        finally:
            durable.close()

    def test_parallel_run_is_deterministic(self, policy_store, vocabulary):
        log = build_log()
        cfg = RefinementConfig(execution=ExecutionPolicy(workers=4, max_shards=8))
        runs = [
            refine(policy_store, log, vocabulary, cfg, Grounder(vocabulary))
            for _ in range(2)
        ]
        assert runs[0].patterns == runs[1].patterns
        assert (
            runs[0].entry_coverage.uncovered_entries
            == runs[1].entry_coverage.uncovered_entries
        )

    def test_shared_grounder_masks_stay_comparable(self, policy_store, vocabulary):
        """Prune with one shared grounder across serial + parallel runs."""
        grounder = Grounder(vocabulary)
        log = build_log()
        serial = refine(policy_store, log, vocabulary, None, grounder)
        par = refine(
            policy_store, log, vocabulary,
            RefinementConfig(execution=ExecutionPolicy(workers=2)), grounder,
        )
        assert serial.coverage.overlap == par.coverage.overlap
        assert serial.entry_coverage.covering == par.entry_coverage.covering

    def test_federation_matches_consolidated_serial(self, policy_store, vocabulary, tmp_path):
        from repro.hdb.federation import AuditFederation

        federation = AuditFederation()
        site_a = build_log(120, name="site_a")
        site_b = build_log(80, name="site_b")
        federation.register("alpha", site_a)
        durable = copy_to_durable(
            site_b, tmp_path / "beta", config=StoreConfig(max_segment_entries=30)
        )
        try:
            federation.register("beta", durable)
            par = parallel_refine(
                policy_store, federation, vocabulary,
                RefinementConfig(execution=ExecutionPolicy(workers=3)),
                Grounder(vocabulary),
            )
            serial = refine(
                policy_store, federation.consolidated_log(), vocabulary,
                None, Grounder(vocabulary),
            )
            # order-insensitive quantities agree with the time-merged serial
            # run; entry indices follow the federation's site-major order so
            # they are not compared.
            assert par.patterns == serial.patterns
            assert par.coverage.ratio == serial.coverage.ratio
            assert par.entry_coverage.ratio == serial.entry_coverage.ratio
            assert par.entry_coverage.total == len(federation)
        finally:
            durable.close()


# ----------------------------------------------------------------------
# fallbacks and delegation
# ----------------------------------------------------------------------
class _RecordingMiner:
    """A custom miner the parallel layer cannot decompose."""

    def __init__(self):
        self.calls = 0

    def mine(self, log, config):
        self.calls += 1
        return SqlPatternMiner().mine(log, config)


class TestDelegation:
    def test_workers_1_stays_serial(self, policy_store, vocabulary):
        log = build_log(100)
        result = refine(
            policy_store, log, vocabulary,
            RefinementConfig(execution=ExecutionPolicy(workers=1)),
        )
        assert isinstance(result.practice, AuditLog)

    def test_custom_miner_falls_back_to_serial(self, policy_store, vocabulary):
        log = build_log(100)
        miner = _RecordingMiner()
        result = refine(
            policy_store, log, vocabulary,
            RefinementConfig(miner=miner, execution=ExecutionPolicy(workers=4)),
        )
        assert miner.calls == 1  # the serial pipeline actually ran it
        assert result.patterns

    def test_supports_parallel_miner(self):
        assert supports_parallel_miner(None)
        assert supports_parallel_miner(SqlPatternMiner())
        assert supports_parallel_miner(AprioriPatternMiner())
        assert not supports_parallel_miner(_RecordingMiner())

    def test_parallel_refine_rejects_custom_miner(self, policy_store, vocabulary):
        with pytest.raises(RefinementError):
            parallel_refine(
                policy_store, build_log(50), vocabulary,
                RefinementConfig(
                    miner=_RecordingMiner(), execution=ExecutionPolicy(workers=2)
                ),
            )

    def test_empty_log_raises(self, policy_store, vocabulary):
        with pytest.raises(RefinementError):
            parallel_refine(
                policy_store, AuditLog(), vocabulary,
                RefinementConfig(execution=ExecutionPolicy(workers=2)),
            )

    def test_execution_policy_validation(self):
        with pytest.raises(RefinementError):
            ExecutionPolicy(workers=0)
        with pytest.raises(RefinementError):
            ExecutionPolicy(workers=2, max_shards=0)
        assert ExecutionPolicy(workers=4).shard_limit == 4
        assert ExecutionPolicy(workers=4, max_shards=9).shard_limit == 9
        assert not ExecutionPolicy().parallel
        assert ExecutionPolicy(workers=2).parallel


# ----------------------------------------------------------------------
# shard planning
# ----------------------------------------------------------------------
class TestShardPlanning:
    def test_in_memory_chunks_are_contiguous_and_balanced(self):
        log = build_log(101)
        shards = shards_of(log, 4)
        assert len(shards) == 4
        sizes = [len(shard.entries) for shard in shards]
        assert sum(sizes) == len(log)
        assert max(sizes) - min(sizes) <= 1
        rebuilt = [e for shard in shards for e in iter_shard(shard)]
        assert [(e.time, e.user) for e in rebuilt] == [
            (e.time, e.user) for e in log
        ]

    def test_durable_shards_are_segment_files(self, tmp_path):
        log = build_log(100)
        durable = copy_to_durable(
            log, tmp_path / "store", config=StoreConfig(max_segment_entries=12)
        )
        try:
            shards = shards_of(durable, 4)
            assert len(shards) == 4
            assert all(shard.kind == "segments" for shard in shards)
            assert all(not shard.entries for shard in shards)  # no pickled data
            rebuilt = [e for shard in shards for e in iter_shard(shard)]
            assert [(e.time, e.user) for e in rebuilt] == [
                (e.time, e.user) for e in log
            ]
            assert sum(shard.planned_entries for shard in shards) == len(log)
        finally:
            durable.close()

    def test_shard_limit_one_gives_single_shard(self, tmp_path):
        durable = copy_to_durable(
            build_log(60), tmp_path / "store",
            config=StoreConfig(max_segment_entries=10),
        )
        try:
            shards = shards_of(durable, 1)
            assert len(shards) == 1
            assert len(list(iter_shard(shards[0]))) == 60
        finally:
            durable.close()

    def test_more_workers_than_segments(self, tmp_path):
        durable = copy_to_durable(
            build_log(30), tmp_path / "store",
            config=StoreConfig(max_segment_entries=20),
        )
        try:
            shards = shards_of(durable, 16)
            # at most one shard per segment file (sealed + active)
            assert 1 <= len(shards) <= durable.stats().segments
        finally:
            durable.close()

    def test_csv_member_shards_lazily(self, tmp_path):
        from repro.audit.io import save_csv
        from repro.hdb.federation import AuditFederation

        log = build_log(40, name="exported")
        path = tmp_path / "site.csv"
        save_csv(log, path)
        federation = AuditFederation()
        federation.register_path("filed", path)
        shards = shards_of(federation, 4)
        assert [shard.kind for shard in shards] == ["csv"]
        assert len(list(iter_shard(shards[0]))) == 40

    def test_unknown_source_rejected(self):
        with pytest.raises(RefinementError):
            shards_of(object(), 2)

    def test_bad_limit_rejected(self):
        with pytest.raises(RefinementError):
            shards_of(build_log(10), 0)


# ----------------------------------------------------------------------
# the mergeable partial-aggregate algebra
# ----------------------------------------------------------------------
class TestPartialAggregates:
    def test_merge_of_split_equals_whole(self):
        log = build_log(200)
        config = MiningConfig(min_support=3, min_distinct_users=2)
        practice = log.exceptions()
        whole = SqlPartialAggregate.from_entries(practice, config)
        half = len(practice) // 2
        left = SqlPartialAggregate.from_entries(practice.entries[:half], config)
        right = SqlPartialAggregate.from_entries(practice.entries[half:], config)
        left.merge(right)
        assert {k: (c, set(u)) for k, (c, u) in whole.groups.items()} == {
            k: (c, set(u)) for k, (c, u) in left.groups.items()
        }
        assert finalize_patterns(left, config) == finalize_patterns(whole, config)

    def test_finalize_matches_sql_miner(self):
        log = build_log(300)
        config = MiningConfig(min_support=5, min_distinct_users=2)
        practice = log.exceptions()
        direct = SqlPatternMiner().mine(practice, config)
        via_partial = finalize_patterns(
            SqlPartialAggregate.from_entries(practice, config), config
        )
        assert direct == via_partial

    def test_mismatched_attributes_refuse_to_merge(self):
        from repro.errors import MiningError

        left = SqlPartialAggregate(attributes=("data",))
        right = SqlPartialAggregate(attributes=("purpose",))
        with pytest.raises(MiningError):
            left.merge(right)

    def test_map_shard_counts_and_offsets(self):
        log = build_log(50)
        shard = Shard(index=0, kind="entries", label="t", entries=log.entries)
        partial = map_shard(
            shard,
            MapTask(
                attributes=("data", "purpose", "authorized"),
                include_denied=False,
                exclude_suspected=False,
                collect_regular=False,
                miner="sql",
                local_min_support=1,
            ),
        )
        assert partial.entries == 50
        assert sum(len(v) for v in partial.rule_entries.values()) == 50
        assert partial.practice_entries == sum(
            1 for e in log if e.is_exception and e.is_allowed
        )
        assert partial.cls_stats is None


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class TestPool:
    def test_serial_mode_for_single_worker(self):
        log = build_log(20)
        shards = shards_of(log, 2)
        task = MapTask(
            attributes=("data",), include_denied=False, exclude_suspected=False,
            collect_regular=False, miner="sql", local_min_support=1,
        )
        results, mode = run_sharded(map_shard, shards, task, workers=1)
        assert mode == "serial"
        assert [r.index for r in results] == [0, 1]

    def test_pool_mode_preserves_shard_order(self):
        log = build_log(40)
        shards = shards_of(log, 4)
        task = MapTask(
            attributes=("data",), include_denied=False, exclude_suspected=False,
            collect_regular=False, miner="sql", local_min_support=1,
        )
        results, mode = run_sharded(map_shard, shards, task, workers=4)
        assert mode in ("pool", "serial")  # pool unless the platform refuses
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert sum(r.entries for r in results) == 40

    def test_unpicklable_worker_falls_back_in_process(self):
        shards = shards_of(build_log(10), 2)

        def local_worker(shard, task):  # local fn: unpicklable on spawn/fork pools
            return sum(1 for _ in iter_shard(shard))

        results, mode = run_sharded(local_worker, shards, None, workers=2)
        assert sum(results) == 10


# ----------------------------------------------------------------------
# loop integration
# ----------------------------------------------------------------------
class TestLoopIntegration:
    def test_loop_with_workers_matches_serial_loop(self):
        from repro.experiments.harness import run_refinement_loop, standard_loop_setup
        from repro.refinement.review import ThresholdReview

        serial = run_refinement_loop(
            standard_loop_setup(accesses_per_round=800, seed=5),
            ThresholdReview(), rounds=2,
        )
        parallel = run_refinement_loop(
            standard_loop_setup(accesses_per_round=800, seed=5),
            ThresholdReview(), rounds=2, workers=2,
        )
        assert serial.coverage_series() == parallel.coverage_series()
        assert [r.rules_accepted for r in serial.rounds] == [
            r.rules_accepted for r in parallel.rounds
        ]
        assert sorted(map(str, serial.store.policy())) == sorted(
            map(str, parallel.store.policy())
        )
