"""Tests for the HIPAA rulebook and corpus generator."""

from __future__ import annotations

import pytest

from repro.corpus import (
    CLINICAL_DEPARTMENTS,
    CorpusSpec,
    MODALITIES,
    generate_corpus,
    hipaa_vocabulary,
)
from repro.errors import CorpusError
from repro.policy.parser import format_rule


def test_vocabulary_has_all_three_attribute_trees():
    vocabulary = hipaa_vocabulary(CLINICAL_DEPARTMENTS[:3])
    for attribute in ("data", "purpose", "authorized"):
        tree = vocabulary.tree_for(attribute)
        assert tree is not None
        assert len(tree.leaves()) >= 15

def test_vocabulary_departments_get_flowsheet_leaves():
    vocabulary = hipaa_vocabulary(("cardiology", "oncology"))
    data = vocabulary.tree_for("data")
    assert "cardiology_flowsheet" in data
    assert "oncology_flowsheet" in data
    assert "emergency_flowsheet" not in data


def test_vocabulary_rejects_unknown_and_empty_departments():
    with pytest.raises(CorpusError):
        hipaa_vocabulary(())
    with pytest.raises(CorpusError):
        hipaa_vocabulary(("cardiology", "submarine_bay"))


def test_spec_validation():
    with pytest.raises(CorpusError):
        CorpusSpec(departments=0)
    with pytest.raises(CorpusError):
        CorpusSpec(misuse_rate=0.5, noise_rate=0.3, surge_rate=0.2,
                   handoff_rate=0.1, referral_rate=0.1)
    with pytest.raises(CorpusError):
        CorpusSpec(documented_fraction=1.5)


def test_spec_roundtrips_through_dict():
    spec = CorpusSpec(seed=99, departments=5, patients=50)
    assert CorpusSpec.from_dict(spec.to_dict()) == spec


SMALL = CorpusSpec(seed=5, departments=3, staff_per_role=2, patients=40,
                   rounds=1, accesses_per_round=500, protocol_rules=10)


def test_generate_is_deterministic():
    first = generate_corpus(SMALL)
    second = generate_corpus(SMALL)
    assert [r.to_dict() for r in first.rules] == [
        r.to_dict() for r in second.rules
    ]
    assert sorted(format_rule(r) for r in first.store.policy()) == sorted(
        format_rule(r) for r in second.store.policy()
    )


def test_rules_carry_modalities_and_citations():
    corpus = generate_corpus(SMALL)
    modalities = {rule.modality for rule in corpus.rules}
    assert modalities <= set(MODALITIES)
    assert corpus.deny_rules() and corpus.consent_rules() and corpus.permit_rules()
    assert all(rule.citation.startswith("45 CFR") for rule in corpus.rules)


def test_documented_store_is_a_permit_subset():
    corpus = generate_corpus(SMALL)
    permits = {format_rule(rule.rule) for rule in corpus.permit_rules()}
    documented = {format_rule(rule) for rule in corpus.store.policy()}
    assert documented <= permits
    assert 0 < len(documented) < len(permits)


def test_more_departments_and_protocols_mean_more_rules():
    small = generate_corpus(SMALL)
    large = generate_corpus(
        CorpusSpec(seed=5, departments=6, staff_per_role=2, patients=40,
                   rounds=1, accesses_per_round=500, protocol_rules=60)
    )
    assert len(large.rules) > len(small.rules)
    assert len(large.rules) >= 180


def test_all_rules_ground_in_the_vocabulary():
    corpus = generate_corpus(SMALL)
    for corpus_rule in corpus.rules:
        for attribute in ("data", "purpose", "authorized"):
            value = corpus_rule.rule.value_of(attribute)
            assert corpus.vocabulary.ground_values(attribute, value)
