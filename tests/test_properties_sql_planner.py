"""Differential property tests: planned executor vs the reference.

Hypothesis generates random tables, index configurations and queries;
every query runs through both the optimizing plan-DAG executor
(:class:`~repro.sqlmini.executor.Executor`, via ``Database.query``) and
the brute-force :class:`~repro.sqlmini.reference.ReferenceExecutor`.

The contract being checked is the one the optimizer promises:

- results are always **multiset-identical** (same rows, same counts);
- with an ORDER BY the results are **byte-identical**, order included —
  the join-reorder rewrite is gated off for every query whose output
  order carries a contract (ORDER BY, LIMIT, DISTINCT, grouping), so
  only plain un-ordered inner joins may legally differ in row order.

Index creation is part of the generated input: the same query must
return the same rows whether it seeks or scans.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlmini.database import Database
from repro.sqlmini.parser import parse
from repro.sqlmini.reference import ReferenceExecutor

names = st.sampled_from(["ann", "bob", "cid", "dee"])
groups = st.one_of(st.none(), st.sampled_from(["er", "icu", "lab"]))
amounts = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
scores = st.integers(min_value=0, max_value=3)

t_rows = st.lists(st.tuples(names, groups, amounts), min_size=0, max_size=12)
u_rows = st.lists(st.tuples(st.sampled_from(["er", "icu", "web"]), scores),
                  min_size=0, max_size=6)

#: which of t's indexable columns get which index kind
index_flags = st.tuples(st.booleans(), st.booleans(), st.booleans())

WHERE_CLAUSES = [
    "",
    "WHERE name = 'ann'",
    "WHERE name IN ('ann', 'bob', 'zed')",
    "WHERE amount BETWEEN -2 AND 3",
    "WHERE amount > 0",
    "WHERE amount <= 1 AND name = 'ann'",
    "WHERE grp IS NULL",
    "WHERE grp = 'er' AND amount > -3",
    "WHERE name = 'ann' OR amount = 2",
]

SINGLE_TABLE_QUERIES = [
    "SELECT name, grp, amount FROM t {where} ORDER BY name, grp, amount",
    "SELECT name, amount FROM t {where} ORDER BY amount DESC, name LIMIT 3",
    "SELECT DISTINCT name FROM t {where} ORDER BY name",
    "SELECT grp, COUNT(*) AS n, SUM(amount) AS s FROM t {where} "
    "GROUP BY grp HAVING COUNT(*) >= 1 ORDER BY n DESC, grp",
    "SELECT name, COUNT(DISTINCT grp) AS g FROM t {where} "
    "GROUP BY name ORDER BY t.name",
    "SELECT COUNT(*) AS n, MIN(amount) AS lo, MAX(amount) AS hi FROM t {where}",
]

JOIN_QUERIES = [
    "SELECT t.name, u.score FROM t JOIN u ON u.grp = t.grp {where} "
    "ORDER BY t.name, u.score",
    "SELECT t.name, u.score FROM t LEFT JOIN u ON u.grp = t.grp {where} "
    "ORDER BY t.name, u.score",
    "SELECT t.name FROM t LEFT JOIN u ON u.grp = t.grp AND u.score > 1 "
    "WHERE u.grp IS NULL ORDER BY t.name, t.amount",
    "SELECT t.grp, COUNT(*) AS n FROM t JOIN u ON u.grp = t.grp {where} "
    "GROUP BY t.grp ORDER BY t.grp",
    "SELECT t.name, u.score FROM t JOIN u ON u.grp = t.grp AND u.score >= 1 "
    "{where}",
]


def _database(t_data, u_data, flags) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (name TEXT, grp TEXT, amount INTEGER)")
    db.execute("CREATE TABLE u (grp TEXT, score INTEGER)")
    t = db.table("t")
    for row in t_data:
        t.insert(row)
    u = db.table("u")
    for row in u_data:
        u.insert(row)
    hash_name, hash_grp, ordered_amount = flags
    if hash_name:
        t.create_index("name", kind="hash")
    if hash_grp:
        t.create_index("grp", kind="hash")
        u.create_index("grp", kind="hash")
    if ordered_amount:
        t.create_index("amount", kind="ordered")
    return db


def _check(db: Database, sql: str) -> None:
    planned = db.query(sql)
    reference = ReferenceExecutor(db).execute(parse(sql))
    assert planned.columns == reference.columns
    if " ORDER BY " in sql:
        assert planned.rows == reference.rows
    else:
        assert Counter(planned.rows) == Counter(reference.rows)


class TestSingleTableDifferential:
    @settings(max_examples=40, deadline=None)
    @given(t_rows, index_flags,
           st.sampled_from(SINGLE_TABLE_QUERIES), st.sampled_from(WHERE_CLAUSES))
    def test_planned_matches_reference(self, t_data, flags, template, where):
        db = _database(t_data, [], flags)
        _check(db, template.format(where=where).strip())


class TestJoinDifferential:
    @settings(max_examples=40, deadline=None)
    @given(t_rows, u_rows, index_flags,
           st.sampled_from(JOIN_QUERIES),
           st.sampled_from(["", "WHERE t.amount > 0", "WHERE t.name = 'ann'"]))
    def test_planned_matches_reference(self, t_data, u_data, flags, template,
                                       where):
        db = _database(t_data, u_data, flags)
        _check(db, template.format(where=where).strip())


class TestIndexTransparency:
    @settings(max_examples=30, deadline=None)
    @given(t_rows, st.sampled_from(WHERE_CLAUSES[1:]))
    def test_same_rows_with_and_without_indexes(self, t_data, where):
        sql = f"SELECT name, grp, amount FROM t {where} ORDER BY name, grp, amount"
        bare = _database(t_data, [], (False, False, False))
        indexed = _database(t_data, [], (True, True, True))
        assert bare.query(sql).rows == indexed.query(sql).rows
