"""Unit tests for the review queue and automated review policies."""

from __future__ import annotations

import pytest

from repro.errors import RefinementError
from repro.mining.patterns import Pattern
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.refinement.review import (
    AcceptAll,
    Decision,
    RejectAll,
    ReviewQueue,
    ThresholdReview,
)


def _pattern(data: str = "referral", support: int = 5, users: int = 3) -> Pattern:
    return Pattern(
        rule=Rule.of(data=data, purpose="registration", authorized="nurse"),
        support=support,
        distinct_users=users,
    )


class TestReviewQueue:
    def test_decisions_recorded(self):
        queue = ReviewQueue([_pattern()])
        item = queue.accept(_pattern(), reviewer="cpo", note="routine")
        assert item.decision is Decision.ACCEPTED
        assert item.reviewer == "cpo"
        assert queue.pending() == ()

    def test_reject_and_investigate(self):
        queue = ReviewQueue([_pattern("a_data"), _pattern("b_data")])
        queue.reject(_pattern("a_data"), reviewer="cpo")
        queue.investigate(_pattern("b_data"), reviewer="cpo", note="odd hours")
        decisions = {item.pattern.rule.value_of("data"): item.decision for item in queue.items}
        assert decisions == {"a_data": Decision.REJECTED, "b_data": Decision.INVESTIGATE}

    def test_cannot_decide_missing_pattern(self):
        queue = ReviewQueue()
        with pytest.raises(RefinementError):
            queue.accept(_pattern(), reviewer="cpo")

    def test_cannot_decide_twice(self):
        queue = ReviewQueue([_pattern()])
        queue.accept(_pattern(), reviewer="cpo")
        with pytest.raises(RefinementError):
            queue.reject(_pattern(), reviewer="cpo")

    def test_pending_decision_invalid(self):
        queue = ReviewQueue([_pattern()])
        with pytest.raises(RefinementError):
            queue.decide(_pattern(), Decision.PENDING, reviewer="cpo")

    def test_add_after_construction(self):
        queue = ReviewQueue()
        queue.add(_pattern())
        assert len(queue) == 1

    def test_apply_pushes_accepted_to_store(self):
        queue = ReviewQueue([_pattern("a_data"), _pattern("b_data")])
        queue.accept(_pattern("a_data"), reviewer="cpo")
        queue.reject(_pattern("b_data"), reviewer="cpo")
        store = PolicyStore()
        assert queue.apply(store) == 1
        assert len(store) == 1
        record = store.record_for(_pattern("a_data").rule)
        assert record.origin == "refinement"
        assert record.added_by == "cpo"
        assert "support=5" in record.note

    def test_apply_is_idempotent(self):
        queue = ReviewQueue([_pattern()])
        queue.accept(_pattern(), reviewer="cpo")
        store = PolicyStore()
        assert queue.apply(store) == 1
        assert queue.apply(store) == 0


class TestReviewPolicies:
    def test_accept_all_and_reject_all(self):
        assert AcceptAll().accept(_pattern()) is True
        assert RejectAll().accept(_pattern()) is False

    def test_threshold_review(self):
        review = ThresholdReview(min_support=10, min_distinct_users=3)
        assert review.accept(_pattern(support=10, users=3))
        assert not review.accept(_pattern(support=9, users=3))
        assert not review.accept(_pattern(support=10, users=2))
