"""Golden paper-number regressions pinned through every coverage path.

The paper makes exactly two quantitative claims, and a backend swap (like
the bitset Range) must not be able to drift either of them:

- **Figure 3**: store range 8, audit range 6, overlap 3 — coverage
  3/6 = 50 % (Definition 9 set semantics).
- **Table 1 / Section 5**: entry coverage over the ten-entry audit trail
  is 3/10 = 30 % (trace semantics; the five ``Referral:Registration:
  Nurse`` entries are one ground rule but five entries).

Each number is asserted through :func:`compute_coverage`,
:func:`compute_entry_coverage` *and* :class:`IncrementalCoverage`, so the
batch engines and the streaming tracker cannot diverge from each other or
from the paper.
"""

from __future__ import annotations

import pytest

from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.coverage.incremental import IncrementalCoverage


class TestFigure3Goldens:
    def test_compute_coverage_is_half(self, vocabulary, fig3_policy, fig3_audit):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        assert report.covering.cardinality == 8
        assert report.reference.cardinality == 6
        assert report.overlap.cardinality == 3
        assert report.ratio == pytest.approx(0.5)
        assert not report.complete
        assert report.uncovered.cardinality == 3

    def test_entry_coverage_on_figure3_audit_rules(
        self, vocabulary, fig3_policy, fig3_audit
    ):
        # Figure 3's audit policy is already deduplicated ground rules, so
        # trace semantics coincide with set semantics: 3/6 = 50 %.
        report = compute_entry_coverage(
            fig3_policy, iter(fig3_audit), vocabulary
        )
        assert report.total == 6
        assert report.matched == 3
        assert report.ratio == pytest.approx(0.5)

    def test_incremental_tracker_reaches_half(
        self, vocabulary, fig3_policy, fig3_audit
    ):
        tracker = IncrementalCoverage(vocabulary, policy=fig3_policy)
        for rule in fig3_audit:
            tracker.observe(rule)
        assert tracker.total_entries == 6
        assert tracker.distinct_ground_entries == 6
        assert tracker.matched_entries == 3
        assert tracker.entry_coverage() == pytest.approx(0.5)
        assert tracker.set_coverage() == pytest.approx(0.5)


class TestTable1Goldens:
    def test_entry_coverage_is_thirty_percent(
        self, vocabulary, fig3_policy, table1_log
    ):
        trace = [entry.to_rule() for entry in table1_log]
        report = compute_entry_coverage(fig3_policy, trace, vocabulary)
        assert report.total == 10
        assert report.matched == 3
        assert report.ratio == pytest.approx(0.3)
        assert len(report.uncovered_entries) == 7

    def test_set_coverage_on_deduplicated_trail_is_half(
        self, vocabulary, fig3_policy, table1_log
    ):
        # The EXPERIMENTS.md discrepancy note: Definition 9 on the
        # deduplicated Table 1 rules gives 3/6 = 50 %, not 30 %.
        report = compute_coverage(
            fig3_policy, table1_log.to_policy(), vocabulary
        )
        assert report.reference.cardinality == 6
        assert report.overlap.cardinality == 3
        assert report.ratio == pytest.approx(0.5)

    def test_incremental_tracker_reports_both_semantics(
        self, vocabulary, fig3_policy, table1_log
    ):
        tracker = IncrementalCoverage(vocabulary, policy=fig3_policy)
        for entry in table1_log:
            tracker.observe(entry.to_rule())
        assert tracker.total_entries == 10
        assert tracker.distinct_ground_entries == 6
        assert tracker.matched_entries == 3
        assert tracker.entry_coverage() == pytest.approx(0.3)
        assert tracker.set_coverage() == pytest.approx(0.5)

    def test_incremental_retroactive_credit_matches_batch(
        self, vocabulary, fig3_policy, table1_log
    ):
        # Stream the whole trail first, then the policy: retroactive
        # credit must land on the same 30 % the batch engine reports.
        tracker = IncrementalCoverage(vocabulary)
        for entry in table1_log:
            tracker.observe(entry.to_rule())
        assert tracker.matched_entries == 0
        for rule in fig3_policy:
            tracker.add_rule(rule)
        assert tracker.entry_coverage() == pytest.approx(0.3)
        assert tracker.set_coverage() == pytest.approx(0.5)
