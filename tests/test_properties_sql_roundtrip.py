"""Grammar fuzz: every AST the printer emits must re-parse to itself.

``str(statement)`` is used by the enforcement layer (rewritten SQL is
reported to callers) and by error messages, so printer/parser agreement
is a real invariant, not a nicety.  Random expression and SELECT trees
are generated bottom-up and round-tripped.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlmini import ast
from repro.sqlmini.parser import parse, parse_expression

column_names = st.sampled_from(["a", "b", "c", "data", "purpose", "status"])
table_names = st.sampled_from(["t", "u", "audit"])
function_names = st.sampled_from(["lower", "upper", "length", "abs", "coalesce"])

literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
    st.sampled_from(["x", "it's", "a%b", 'q"q', ""]).map(ast.Literal),
)

simple_operands = st.one_of(
    literals,
    column_names.map(ast.ColumnRef),
    st.tuples(table_names, column_names).map(
        lambda pair: ast.ColumnRef(pair[1], table=pair[0])
    ),
)


@st.composite
def expressions(draw, depth: int = 3) -> ast.Expression:
    if depth == 0:
        return draw(simple_operands)
    sub = expressions(depth=depth - 1)
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(simple_operands)
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*", "/", "=", "<>", "<", ">=", "AND", "OR"]))
        return ast.BinaryOp(op, draw(sub), draw(sub))
    if choice == 2:
        op = draw(st.sampled_from(["NOT", "-"]))
        if op == "-":
            # parsed unary minus over a numeric literal constant-folds,
            # so generate it only over column references
            return ast.UnaryOp("-", ast.ColumnRef(draw(column_names)))
        return ast.UnaryOp("NOT", draw(sub))
    if choice == 3:
        return ast.IsNull(draw(sub), negated=draw(st.booleans()))
    if choice == 4:
        options = draw(st.lists(sub, min_size=1, max_size=3))
        return ast.InList(draw(sub), tuple(options), negated=draw(st.booleans()))
    if choice == 5:
        return ast.Between(
            draw(sub), draw(sub), draw(sub), negated=draw(st.booleans())
        )
    if choice == 6:
        args = draw(st.lists(sub, min_size=1, max_size=2))
        return ast.FuncCall(draw(function_names), tuple(args))
    whens = draw(st.lists(st.tuples(sub, sub), min_size=1, max_size=2))
    default = draw(st.one_of(st.none(), sub))
    return ast.Case(tuple(whens), default)


@st.composite
def selects(draw) -> ast.Select:
    items = tuple(
        ast.SelectItem(draw(expressions(depth=2)), alias=draw(st.one_of(st.none(), column_names)))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    joins = tuple(
        ast.JoinClause(
            draw(table_names),
            draw(st.one_of(st.none(), st.sampled_from(["j1", "j2"]))),
            draw(expressions(depth=1)),
            outer=draw(st.booleans()),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    )
    return ast.Select(
        items=items,
        table=draw(table_names),
        table_alias=draw(st.one_of(st.none(), st.just("base"))),
        joins=joins,
        where=draw(st.one_of(st.none(), expressions(depth=2))),
        group_by=tuple(
            draw(st.lists(column_names.map(ast.ColumnRef), max_size=2, unique_by=str))
        ),
        having=None,
        order_by=tuple(
            ast.OrderItem(ast.ColumnRef(name), ascending=draw(st.booleans()))
            for name in draw(st.lists(column_names, max_size=2, unique=True))
        ),
        limit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=99))),
        distinct=draw(st.booleans()),
    )


class TestPrinterParserAgreement:
    @settings(max_examples=150)
    @given(expressions())
    def test_expression_round_trip(self, expr):
        assert parse_expression(str(expr)) == expr

    @settings(max_examples=100)
    @given(selects())
    def test_select_round_trip(self, statement):
        assert parse(str(statement)) == statement

    @settings(max_examples=50)
    @given(st.lists(selects(), min_size=2, max_size=3))
    def test_union_all_round_trip(self, arms):
        statement = ast.UnionAll(tuple(arms))
        assert parse(str(statement)) == statement
