"""Crash-safety tests: torn tails, missing files, recovery telemetry."""

from __future__ import annotations

import pytest

from repro import obs
from repro.audit.log import make_entry
from repro.store.codec import HEADER_SIZE, SEGMENT_HEADER
from repro.store.manifest import load_manifest
from repro.store.store import AuditStore, StoreConfig


def _entry(tick: int):
    return make_entry(tick, f"user{tick % 3}", "referral", "registration", "nurse")


def _populate(directory, count: int = 23, **config) -> None:
    config.setdefault("fsync", "off")
    config.setdefault("max_segment_entries", 5)
    with AuditStore(directory, StoreConfig(**config)) as store:
        store.extend(_entry(tick) for tick in range(1, count + 1))


GARBAGE = b"\x50\x00\x00\x00\xde\xad\xbe\xefpartial"


class TestTornTail:
    def test_truncated_on_reopen(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        active = directory / load_manifest(directory).active
        intact = active.stat().st_size
        with active.open("ab") as handle:
            handle.write(GARBAGE)
        with AuditStore(directory, create=False) as store:
            report = store.last_recovery
            assert report is not None
            assert report.torn
            assert report.torn_bytes_dropped == len(GARBAGE)
            assert len(store) == 23
            assert [entry.time for entry in store][:3] == [1, 2, 3]
        assert active.stat().st_size == intact

    def test_recovered_store_accepts_appends(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        active = directory / load_manifest(directory).active
        with active.open("ab") as handle:
            handle.write(GARBAGE)
        with AuditStore(directory, create=False) as store:
            store.append(_entry(24))
            assert len(store) == 24
        with AuditStore(directory, create=False) as store:
            assert store.verify().ok
            assert len(store) == 24

    def test_sub_header_stub_rewritten(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory, count=20)  # exactly 4 segments; active is fresh
        active = directory / load_manifest(directory).active
        active.write_bytes(SEGMENT_HEADER[:3])  # crash mid header write
        with AuditStore(directory, create=False) as store:
            assert store.last_recovery.torn
            assert len(store) == 20
        assert active.stat().st_size == HEADER_SIZE

    def test_missing_active_file_recreated(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory, count=20)
        active = directory / load_manifest(directory).active
        active.unlink()  # crash between manifest swap and file creation
        with AuditStore(directory, create=False) as store:
            assert store.last_recovery.active_recreated
            assert len(store) == 20
            store.append(_entry(21))
            assert store.verify().ok

    def test_clean_reopen_reports_nothing_torn(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        with AuditStore(directory, create=False) as store:
            assert not store.last_recovery.torn
            assert store.last_recovery.scanned_entries == 3  # active only

    def test_garbage_beyond_valid_tail_ignored_by_iteration(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        active = directory / load_manifest(directory).active
        with active.open("ab") as handle:
            handle.write(b"\x00" * 3)  # truncated length prefix
        with AuditStore(directory, create=False) as store:
            assert len(list(store)) == 23


class TestRecoveryTelemetry:
    def test_torn_truncation_counters(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        active = directory / load_manifest(directory).active
        with active.open("ab") as handle:
            handle.write(GARBAGE)
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            with AuditStore(directory, create=False):
                pass
            assert registry.counter("repro_store_recoveries_total").value == 1
            assert registry.counter(
                "repro_store_torn_tail_truncations_total"
            ).value == 1
            assert registry.counter(
                "repro_store_torn_bytes_dropped_total"
            ).value == len(GARBAGE)

    def test_clean_recovery_does_not_count_truncation(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory)
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            with AuditStore(directory, create=False):
                pass
            assert registry.counter("repro_store_recoveries_total").value == 1
            assert registry.counter(
                "repro_store_torn_tail_truncations_total"
            ).value == 0

    def test_append_metrics_flow_through_snapshot(self, tmp_path):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
                store.extend(_entry(tick) for tick in range(1, 11))
                registry.snapshot()
                assert registry.counter("repro_store_appends_total").value == 10
                assert registry.gauge("repro_store_entries").value == 10


class TestSealDurability:
    def test_sealed_segments_survive_torn_active(self, tmp_path):
        directory = tmp_path / "s"
        _populate(directory, count=23)
        manifest = load_manifest(directory)
        assert len(manifest.sealed) == 4
        active = directory / manifest.active
        active.write_bytes(SEGMENT_HEADER)  # lose the whole active tail
        with AuditStore(directory, create=False) as store:
            assert len(store) == 20  # the 4 sealed segments
            assert store.verify().ok
