"""Tests for the shift-structured workload generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.mining.patterns import MiningConfig
from repro.mining.temporal import hour_extractor, mine_temporal_patterns
from repro.policy.conditions import TimeWindow
from repro.policy.store import PolicyStore
from repro.refinement.filtering import filter_practice
from repro.workload.generator import WorkloadConfig
from repro.workload.hospital import build_hospital
from repro.workload.shifts import ShiftStructuredEnvironment, add_night_practice


@pytest.fixture()
def hospital(vocabulary):
    model = build_hospital(vocabulary, departments=1, staff_per_role=3, seed=23)
    add_night_practice(model, "insurance", "registration", "nurse", weight=8.0)
    return model


def _environment(hospital, **config) -> ShiftStructuredEnvironment:
    defaults = dict(accesses_per_round=1200, seed=23,
                    noise_rate=0.0, violation_rate=0.0)
    defaults.update(config)
    return ShiftStructuredEnvironment(
        hospital, WorkloadConfig(**defaults), ticks_per_hour=10
    )


class TestTimestamps:
    def test_round_spans_one_day(self, hospital):
        environment = _environment(hospital)
        log = environment.simulate_round(0, PolicyStore())
        first, last = log.time_range()
        assert 0 <= first
        assert last < 24 * 10

    def test_rounds_advance_days(self, hospital):
        environment = _environment(hospital)
        day0 = environment.simulate_round(0, PolicyStore())
        day1 = environment.simulate_round(1, PolicyStore())
        assert day1[0].time >= 24 * 10
        assert day0[-1].time < day1[0].time or day0[-1].time < 24 * 10

    def test_entries_time_ordered(self, hospital):
        log = _environment(hospital).simulate_round(0, PolicyStore())
        times = [entry.time for entry in log]
        assert times == sorted(times)

    def test_hour_extractor_recovers_hours(self, hospital):
        log = _environment(hospital).simulate_round(0, PolicyStore())
        extract = hour_extractor(ticks_per_hour=10)
        assert all(0 <= extract(entry) <= 23 for entry in log)

    def test_ticks_per_hour_validated(self, hospital):
        with pytest.raises(WorkloadError):
            ShiftStructuredEnvironment(hospital, ticks_per_hour=0)


class TestWindowedPractices:
    def test_windowed_practice_stays_in_window(self, hospital):
        log = _environment(hospital).simulate_round(0, PolicyStore())
        extract = hour_extractor(ticks_per_hour=10)
        window = TimeWindow(22, 6)
        night_entries = [
            entry for entry in log
            if entry.data == "insurance" and entry.purpose == "registration"
        ]
        assert night_entries
        assert all(window.contains(extract(entry)) for entry in night_entries)

    def test_unwindowed_practices_spread_across_day(self, hospital):
        log = _environment(hospital, accesses_per_round=2400).simulate_round(
            0, PolicyStore()
        )
        extract = hour_extractor(ticks_per_hour=10)
        day_hours = {
            extract(entry)
            for entry in log
            if not (entry.data == "insurance" and entry.purpose == "registration")
        }
        assert len(day_hours) > 18  # essentially all hours hit

    def test_temporal_miner_finds_generated_night_practice(self, hospital):
        environment = _environment(hospital, accesses_per_round=2000)
        log = environment.simulate_round(0, PolicyStore())
        practice = filter_practice(log)
        temporal = mine_temporal_patterns(
            practice,
            MiningConfig(min_support=10),
            hour_of=hour_extractor(ticks_per_hour=10),
            max_span=10,
        )
        windows = {
            (t.pattern.rule.value_of("data"), t.pattern.rule.value_of("purpose")):
                t.window
            for t in temporal
        }
        assert ("insurance", "registration") in windows
        night = windows[("insurance", "registration")]
        assert all(hour in TimeWindow(22, 6).hours() for hour in night.hours())
