"""Unit tests for the versioned policy store."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.policy import PolicySource
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore


def _rule(data: str = "referral") -> Rule:
    return Rule.of(data=data, purpose="treatment", authorized="nurse")


class TestAdd:
    def test_add_returns_true_on_change(self):
        store = PolicyStore()
        assert store.add(_rule()) is True
        assert len(store) == 1

    def test_add_duplicate_is_noop(self):
        store = PolicyStore()
        store.add(_rule())
        assert store.add(_rule()) is False
        assert store.revision == 1

    def test_add_all_counts_changes(self):
        store = PolicyStore()
        added = store.add_all([_rule("a_data"), _rule("b_data"), _rule("a_data")])
        assert added == 2

    def test_add_rejects_non_rule(self):
        with pytest.raises(PolicyError):
            PolicyStore().add("nope")  # type: ignore[arg-type]

    def test_provenance_recorded(self):
        store = PolicyStore()
        store.add(_rule(), added_by="alice", origin="refinement", note="support=9")
        record = store.record_for(_rule())
        assert record.added_by == "alice"
        assert record.origin == "refinement"
        assert record.note == "support=9"
        assert record.revision == 1


class TestRetire:
    def test_retire_deactivates_but_keeps_record(self):
        store = PolicyStore()
        store.add(_rule())
        assert store.retire(_rule()) is True
        assert _rule() not in store
        assert len(store) == 0
        assert store.record_for(_rule()) is not None
        assert store.records(include_retired=True)[0].active is False

    def test_retire_missing_is_noop(self):
        assert PolicyStore().retire(_rule()) is False

    def test_reactivation_after_retire(self):
        store = PolicyStore()
        store.add(_rule())
        store.retire(_rule())
        assert store.add(_rule()) is True
        assert _rule() in store


class TestHistoryAndSnapshot:
    def test_history_orders_events(self):
        store = PolicyStore()
        store.add(_rule("a_data"))
        store.add(_rule("b_data"))
        store.retire(_rule("a_data"))
        actions = [event.action for event in store.history]
        assert actions == ["add", "add", "retire"]
        assert [event.revision for event in store.history] == [1, 2, 3]

    def test_policy_snapshot(self):
        store = PolicyStore("hospital")
        store.add(_rule("a_data"))
        snapshot = store.policy()
        assert snapshot.source is PolicySource.POLICY_STORE
        assert snapshot.name == "hospital"
        assert snapshot.cardinality == 1
        # the snapshot is detached from future store changes
        store.add(_rule("b_data"))
        assert snapshot.cardinality == 1

    def test_iteration_yields_active_rules(self):
        store = PolicyStore()
        store.add(_rule("a_data"))
        store.add(_rule("b_data"))
        store.retire(_rule("a_data"))
        assert list(store) == [_rule("b_data")]
