"""Unit tests for the telemetry layer (:mod:`repro.obs`).

Covers the metric primitives (histogram bucketing edge cases especially),
registry behaviour (get-or-create, kind conflicts, collectors, snapshots),
the span timer in both forms, the snapshot → exposition round trip, the
null registry's no-op guarantees, and the logging setup.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.metrics import CARDINALITY_BUCKETS, DEFAULT_BUCKETS, Histogram


class TestHistogramBuckets:
    def test_zero_lands_in_first_bucket(self):
        h = Histogram("h", {}, (1.0, 2.0, 4.0))
        h.observe(0.0)
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_negative_lands_in_first_bucket(self):
        h = Histogram("h", {}, (1.0, 2.0))
        h.observe(-3.5)
        assert h.cumulative_buckets()[0] == (1.0, 1)
        assert h.sum == -3.5

    def test_huge_value_lands_in_inf_bucket(self):
        h = Histogram("h", {}, (1.0, 2.0))
        h.observe(10.0**12)
        le, count = h.cumulative_buckets()[-1]
        assert le == "+Inf"
        assert count == 1
        assert h.cumulative_buckets()[-2] == (2.0, 0)

    def test_value_on_bound_counts_into_that_bucket(self):
        h = Histogram("h", {}, (1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h.cumulative_buckets()[1] == (2.0, 1)

    def test_cumulative_counts_are_monotone_and_end_at_total(self):
        h = Histogram("h", {}, (1.0, 4.0, 16.0))
        for v in (0.5, 0.5, 3.0, 10.0, 100.0):
            h.observe(v)
        counts = [count for _, count in h.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == h.count == 5

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] < 1e-6
        assert DEFAULT_BUCKETS[-1] == 32.0
        assert CARDINALITY_BUCKETS[0] == 1.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", {}, (2.0, 1.0))

    def test_log_buckets_powers_of_two(self):
        assert obs.log_buckets(1, 8) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ObservabilityError):
            obs.log_buckets(0, 8)


class TestCounterAndGauge:
    def test_counter_is_monotone(self):
        reg = obs.MetricsRegistry()
        counter = reg.counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = obs.MetricsRegistry().gauge("repro_test_size")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = obs.MetricsRegistry()
        assert reg.counter("repro_x_total", k="a") is reg.counter(
            "repro_x_total", k="a"
        )
        assert reg.counter("repro_x_total", k="a") is not reg.counter(
            "repro_x_total", k="b"
        )

    def test_kind_conflict_raises(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro_x_total")

    def test_invalid_names_and_labels_raise(self):
        reg = obs.MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad name")
        with pytest.raises(ObservabilityError):
            reg.counter("repro_ok_total", **{"bad-label": 1})

    def test_collector_flushes_at_snapshot_time(self):
        reg = obs.MetricsRegistry()
        state = {"hits": 0, "reported": 0}

        def flush():
            reg.counter("repro_test_hits_total").inc(
                state["hits"] - state["reported"]
            )
            state["reported"] = state["hits"]

        reg.register_collector(flush)
        state["hits"] = 7
        snap = reg.snapshot()
        assert snap["counters"][0]["value"] == 7.0
        state["hits"] = 9
        assert reg.snapshot()["counters"][0]["value"] == 9.0

    def test_bound_method_collector_is_weakly_held(self):
        reg = obs.MetricsRegistry()

        class Component:
            """A throwaway instrumented component."""

            def flush(self):
                """Flush into the registry."""
                reg.counter("repro_test_dead_total").inc()

        component = Component()
        reg.register_collector(component.flush)
        reg.collect()
        del component
        reg.collect()  # prunes the dead weakref instead of raising
        assert reg.counter("repro_test_dead_total").value == 1.0

    def test_sample_values_and_delta(self):
        reg = obs.MetricsRegistry()
        reg.counter("repro_a_total", k="x").inc(2)
        before = reg.sample_values()
        reg.counter("repro_a_total", k="x").inc(3)
        reg.histogram("repro_b_seconds").observe(0.5)
        delta = obs.sample_delta(before, reg.sample_values())
        assert delta['repro_a_total{k="x"}'] == 3.0
        assert delta["repro_b_seconds#count"] == 1.0
        assert delta["repro_b_seconds#sum"] == 0.5

    def test_format_sample_stable_label_order(self):
        assert obs.format_sample("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'


class TestSpan:
    def test_context_manager_records_histogram(self):
        reg = obs.MetricsRegistry()
        with reg.span("repro_test_op", stage="x"):
            pass
        h = reg.histogram("repro_test_op_seconds", stage="x")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_decorator_form_times_each_call(self):
        reg = obs.MetricsRegistry()

        @reg.span("repro_test_fn")
        def work(value):
            return value * 2

        assert work(3) == 6
        assert work(4) == 8
        assert reg.histogram("repro_test_fn_seconds").count == 2

    def test_exception_still_recorded_and_propagates(self):
        reg = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.span("repro_test_boom"):
                raise ValueError("boom")
        assert reg.histogram("repro_test_boom_seconds").count == 1

    def test_span_emits_event_when_sink_attached(self):
        reg = obs.MetricsRegistry()
        sink, buffer = obs.memory_sink()
        reg.attach_sink(sink)
        with reg.span("repro_test_op", stage="x"):
            pass
        record = json.loads(buffer.getvalue())
        assert record["event"] == "span"
        assert record["name"] == "repro_test_op"
        assert record["stage"] == "x"
        assert record["error"] is None

    def test_module_level_span_is_late_bound(self):
        reg = obs.MetricsRegistry()

        @obs.span("repro_test_late")
        def work():
            return 1

        with obs.use_registry(reg):
            work()
        work()  # outside the scope: lands on the (different) active registry
        assert reg.histogram("repro_test_late_seconds").count == 1


class TestEventSink:
    def test_jsonl_file_sink_appends_and_counts(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.JsonlEventSink(path) as sink:
            sink.emit("one", a=1)
            sink.emit("two", b="x")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["one", "two"]
        assert sink.events_written == 2

    def test_concurrent_emits_never_interleave_lines(self, tmp_path):
        """The serve loop and the refine daemon share one sink; ``emit``
        holds a lock so concurrent writers cannot tear each other's
        lines (a regression test for the unlocked original)."""
        import threading

        path = tmp_path / "events.jsonl"
        writers, per_writer = 8, 200
        with obs.JsonlEventSink(path) as sink:
            def hammer(worker: int) -> None:
                for index in range(per_writer):
                    sink.emit("span", worker=worker, index=index,
                              padding="x" * 64)

            threads = [
                threading.Thread(target=hammer, args=(worker,))
                for worker in range(writers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == writers * per_writer
        records = [json.loads(line) for line in lines]  # every line parses
        assert sink.events_written == writers * per_writer
        seen = {(r["worker"], r["index"]) for r in records}
        assert len(seen) == writers * per_writer


class TestExpositionRoundTrip:
    def _populated_registry(self) -> obs.MetricsRegistry:
        reg = obs.MetricsRegistry()
        reg.counter("repro_test_total", kind="a").inc(3)
        reg.gauge("repro_test_size").set(11)
        reg.histogram("repro_test_seconds").observe(0.004)
        return reg

    def test_snapshot_save_load_round_trip(self, tmp_path):
        snap = self._populated_registry().snapshot()
        path = obs.save_snapshot(snap, tmp_path / "m.json")
        assert obs.load_snapshot(path) == snap

    def test_load_rejects_non_snapshot(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            obs.load_snapshot(bogus)
        bogus.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            obs.load_snapshot(bogus)

    def test_prometheus_text_has_types_buckets_and_labels(self):
        text = obs.render_prometheus(self._populated_registry().snapshot())
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{kind="a"} 3' in text
        assert "# TYPE repro_test_size gauge" in text
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_test_seconds_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert obs.render_prometheus(obs.MetricsRegistry().snapshot()) == ""


class TestNullRegistry:
    def test_disabled_flag_and_shared_instruments(self):
        null = obs.NULL_REGISTRY
        assert null.enabled is False
        assert null.counter("repro_a_total") is null.counter("repro_b_total")
        null.counter("repro_a_total").inc(5)
        null.gauge("repro_g").set(9)
        null.histogram("repro_h").observe(1.0)
        assert null.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_null_span_is_reusable_and_decorator_is_identity(self):
        null = obs.NullRegistry()
        span = null.span("repro_x")
        with span:
            pass

        def fn():
            return 42

        assert span(fn) is fn
        assert null.span("repro_y") is span

    def test_collectors_are_dropped(self):
        null = obs.NullRegistry()
        calls = []
        null.register_collector(lambda: calls.append(1))
        null.collect()
        null.snapshot()
        assert calls == []

    def test_events_discarded(self):
        null = obs.NullRegistry()
        sink, buffer = obs.memory_sink()
        null.attach_sink(sink)
        null.event("anything", a=1)
        assert buffer.getvalue() == ""


class TestRuntimeSwitch:
    def test_use_registry_restores_previous(self):
        original = obs.get_registry()
        mine = obs.MetricsRegistry()
        with obs.use_registry(mine) as active:
            assert active is mine
            assert obs.get_registry() is mine
        assert obs.get_registry() is original

    def test_set_registry_returns_previous(self):
        original = obs.get_registry()
        mine = obs.MetricsRegistry()
        assert obs.set_registry(mine) is original
        assert obs.set_registry(original) is mine

    def test_default_registry_is_live(self):
        assert obs.get_registry().enabled is True


class TestLogSetup:
    def test_configure_logging_verbose_sets_debug(self):
        logger = obs.configure_logging(verbose=True)
        try:
            assert logger.level == logging.DEBUG
            assert logging.getLogger("repro").isEnabledFor(logging.DEBUG)
        finally:
            obs.configure_logging(verbose=False)

    def test_configure_logging_is_idempotent(self):
        first = obs.configure_logging(verbose=False)
        second = obs.configure_logging(verbose=False)
        assert first is second
        assert len([h for h in first.handlers
                    if getattr(h, "_repro_obs_handler", False)]) == 1

    def test_kv_renders_sorted_pairs(self):
        assert obs.kv(b=2, a="x") == "a=x b=2"
