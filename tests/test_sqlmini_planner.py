"""Regression tests for the sqlmini binder and plan builder.

Covers the three binder bugs fixed alongside the plan-DAG refactor:

1. ``SELECT DISTINCT a ... ORDER BY b`` silently produced rows ordered by
   an expression that DISTINCT had already collapsed away; it must be a
   plan error.
2. Bare and qualified identifiers were distinct keys, so
   ``GROUP BY a ORDER BY t.a`` failed to resolve even though both name
   the same column.  The binder now canonicalizes every reference.
3. A JOIN ON condition could reference a table joined *later* in the FROM
   clause and would read garbage NULL padding; forward references are now
   rejected with a clear error.

Plus shape tests for the optimizer: predicate pushdown, index-seek
routing, lookup joins, and the byte-identity reorder gate.
"""

from __future__ import annotations

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlPlanError
from repro.sqlmini.optimizer import build_plan
from repro.sqlmini.parser import parse
from repro.sqlmini.plan import render_plan, walk_plan
from repro.sqlmini.planner import bind_select


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (a TEXT, b INTEGER, c TEXT)")
    database.execute("CREATE TABLE u (a TEXT, d INTEGER)")
    t = database.table("t")
    t.insert(("x", 2, "p"))
    t.insert(("y", 1, "q"))
    t.insert(("x", 3, "p"))
    u = database.table("u")
    u.insert(("x", 10))
    u.insert(("y", 20))
    return database


def _kinds(database: Database, sql: str) -> list[str]:
    plan = build_plan(bind_select(parse(sql), database))
    return [node.kind for node in walk_plan(plan.root)]


class TestDistinctOrderBy:
    """Bug 1: DISTINCT + ORDER BY on a non-selected expression."""

    def test_order_by_outside_select_list_rejected(self, db):
        with pytest.raises(SqlPlanError) as err:
            db.query("SELECT DISTINCT a FROM t ORDER BY b")
        assert (
            "for SELECT DISTINCT, ORDER BY expressions must appear in the "
            "select list"
        ) in str(err.value)

    def test_order_by_selected_column_allowed(self, db):
        result = db.query("SELECT DISTINCT a FROM t ORDER BY a DESC")
        assert list(result.rows) == [("y",), ("x",)]

    def test_order_by_qualified_form_of_selected_column_allowed(self, db):
        # canonicalization makes `a` and `t.a` the same expression
        result = db.query("SELECT DISTINCT a FROM t ORDER BY t.a")
        assert list(result.rows) == [("x",), ("y",)]

    def test_order_by_item_alias_allowed(self, db):
        result = db.query("SELECT DISTINCT b + 0 AS n FROM t ORDER BY n")
        assert list(result.rows) == [(1,), (2,), (3,)]


class TestIdentifierCanonicalization:
    """Bug 2: bare vs qualified spellings of one column."""

    def test_group_by_bare_order_by_qualified(self, db):
        result = db.query(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY t.a"
        )
        assert list(result.rows) == [("x", 2), ("y", 1)]

    def test_group_by_qualified_order_by_bare(self, db):
        result = db.query(
            "SELECT t.a, COUNT(*) AS n FROM t GROUP BY t.a ORDER BY a"
        )
        assert list(result.rows) == [("x", 2), ("y", 1)]

    def test_select_bare_group_by_qualified(self, db):
        result = db.query("SELECT a FROM t GROUP BY t.a ORDER BY a")
        assert list(result.rows) == [("x",), ("y",)]

    def test_having_mixes_spellings(self, db):
        result = db.query(
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY t.a"
        )
        assert list(result.rows) == [("x",)]

    def test_unknown_column_still_rejected(self, db):
        with pytest.raises(SqlPlanError, match="unknown column"):
            db.query("SELECT nope FROM t")
        with pytest.raises(SqlPlanError, match="unknown column"):
            db.query("SELECT a FROM t ORDER BY t.nope")

    def test_ambiguous_bare_name_rejected_across_tables(self, db):
        # `a` exists in both t and u: the bare spelling must not guess
        with pytest.raises(SqlPlanError):
            db.query("SELECT a FROM t JOIN u ON t.a = u.a")


class TestJoinForwardReferences:
    """Bug 3: ON conditions referencing not-yet-joined tables."""

    def test_forward_reference_rejected(self, db):
        db.execute("CREATE TABLE v (a TEXT)")
        with pytest.raises(SqlPlanError) as err:
            db.query(
                "SELECT t.a FROM t JOIN u ON u.a = v.a JOIN v ON v.a = t.a"
            )
        message = str(err.value)
        assert "forward references are not allowed" in message
        assert "'v'" in message

    def test_backward_reference_accepted(self, db):
        result = db.query(
            "SELECT t.a, u.d FROM t JOIN u ON u.a = t.a ORDER BY t.b"
        )
        assert list(result.rows) == [("y", 20), ("x", 10), ("x", 10)]

    def test_self_only_condition_accepted(self, db):
        result = db.query("SELECT t.a FROM t JOIN u ON u.d > 15 ORDER BY t.b, t.a")
        assert [row[0] for row in result.rows] == ["y", "x", "x"]


class TestPlanShapes:
    def test_pushdown_produces_pushed_filter(self, db):
        plan = build_plan(
            bind_select(
                parse("SELECT t.a FROM t JOIN u ON u.a = t.a WHERE t.b > 1"), db
            )
        )
        rendered = render_plan(plan.root)
        assert "[pushed]" in rendered
        assert plan.pushed >= 1

    def test_equality_seek_uses_hash_index(self, db):
        db.table("t").create_index("a", kind="hash")
        kinds = _kinds(db, "SELECT b FROM t WHERE a = 'x'")
        assert "index_seek" in kinds
        assert "scan" not in kinds

    def test_range_seek_uses_ordered_index(self, db):
        db.table("t").create_index("b", kind="ordered")
        kinds = _kinds(db, "SELECT a FROM t WHERE b BETWEEN 1 AND 2")
        assert "index_seek" in kinds

    def test_family_mismatch_stays_a_filter(self, db):
        db.table("t").create_index("b", kind="ordered")
        # TEXT literal probing an INTEGER column must not seek
        kinds = _kinds(db, "SELECT a FROM t WHERE b = 'x'")
        assert "index_seek" not in kinds
        assert list(db.query("SELECT a FROM t WHERE b = 'x'").rows) == []

    def test_join_against_indexed_column_becomes_lookup(self, db):
        db.table("u").create_index("a", kind="hash")
        # ORDER BY pins FROM order, leaving indexed u on the probe side
        sql = "SELECT t.a, u.d FROM t JOIN u ON u.a = t.a ORDER BY t.b"
        kinds = _kinds(db, sql)
        assert "index_lookup" in kinds
        assert list(db.query(sql).rows) == [("y", 20), ("x", 10), ("x", 10)]

    def test_reorder_gated_off_by_order_by(self, db):
        plan = build_plan(
            bind_select(
                parse("SELECT t.a FROM t JOIN u ON u.a = t.a ORDER BY t.b"), db
            )
        )
        assert not plan.reordered
        assert [table.alias for table in plan.exec_tables] == ["t", "u"]

    def test_reorder_starts_from_smaller_table(self, db):
        plan = build_plan(
            bind_select(parse("SELECT t.a FROM t JOIN u ON u.a = t.a"), db)
        )
        assert plan.reordered
        assert plan.exec_tables[0].alias == "u"

    def test_explain_via_database(self, db):
        text = db.explain("SELECT a FROM t WHERE c = 'p' ORDER BY b LIMIT 1")
        assert text.splitlines()[0].startswith("Limit")
        assert "Sort" in text
        assert "Scan t" in text
