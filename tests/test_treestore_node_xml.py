"""Unit tests for the tree document model and the XML reader/writer."""

from __future__ import annotations

import pytest

from repro.treestore.node import TreeDocument, TreeError, TreeNode
from repro.treestore.xmlio import dumps, loads


@pytest.fixture()
def document() -> TreeDocument:
    root = TreeNode("patients")
    alice = root.child("patient", {"id": "p1"})
    alice.child("name", text="Alice")
    record = alice.child("record")
    record.child("prescription", text="amoxicillin")
    record.child("psychiatry", text="notes-a")
    bob = root.child("patient", {"id": "p2"})
    bob.child("name", text="Bob")
    return TreeDocument(root, name="ward")


class TestTreeNode:
    def test_invalid_names_rejected(self):
        with pytest.raises(TreeError):
            TreeNode("1bad")
        with pytest.raises(TreeError):
            TreeNode("ok", {"bad name": "x"})

    def test_append_sets_parent(self, document):
        alice = document.root.children[0]
        assert alice.parent is document.root
        assert alice.children[0].name == "name"

    def test_append_rejects_reparenting(self, document):
        alice = document.root.children[0]
        other = TreeNode("other")
        with pytest.raises(TreeError):
            other.append(alice)

    def test_append_rejects_non_node(self):
        with pytest.raises(TreeError):
            TreeNode("a").append("nope")  # type: ignore[arg-type]

    def test_remove(self, document):
        root = document.root
        bob = root.children[1]
        root.remove(bob)
        assert bob.parent is None
        assert len(root) == 1
        with pytest.raises(TreeError):
            root.remove(bob)

    def test_walk_preorder(self, document):
        names = [node.name for node in document.root.walk()]
        assert names == [
            "patients", "patient", "name", "record", "prescription",
            "psychiatry", "patient", "name",
        ]

    def test_path(self, document):
        prescription = document.root.find_all("prescription")[0]
        assert prescription.path() == "/patients/patient/record/prescription"

    def test_find_all(self, document):
        assert len(document.root.find_all("name")) == 2

    def test_clone_is_deep_and_detached(self, document):
        copy = document.root.clone()
        assert copy.parent is None
        assert [n.name for n in copy.walk()] == [n.name for n in document.root.walk()]
        copy.children[0].attributes["id"] = "changed"
        assert document.root.children[0].attributes["id"] == "p1"

    def test_document_size(self, document):
        assert document.size() == 8


class TestXmlWriter:
    def test_round_trip(self, document):
        text = dumps(document)
        rebuilt = loads(text, name="ward")
        assert [n.name for n in rebuilt.root.walk()] == [
            n.name for n in document.root.walk()
        ]
        assert rebuilt.root.children[0].attributes == {"id": "p1"}
        assert rebuilt.root.find_all("prescription")[0].text == "amoxicillin"

    def test_escaping_round_trip(self):
        root = TreeNode("note", {"author": 'Dr "A" & co'}, text="a < b & c > d")
        rebuilt = loads(dumps(TreeDocument(root)))
        assert rebuilt.root.text == "a < b & c > d"
        assert rebuilt.root.attributes["author"] == 'Dr "A" & co'

    def test_self_closing_for_empty_elements(self):
        text = dumps(TreeDocument(TreeNode("empty")))
        assert text == "<empty/>"


class TestXmlReader:
    def test_declaration_and_comments_skipped(self):
        text = "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>"
        document = loads(text)
        assert [n.name for n in document.root.walk()] == ["a", "b"]

    def test_entities_decoded(self):
        document = loads("<a t=\"&quot;x&quot;\">&lt;&amp;&gt;</a>")
        assert document.root.text == "<&>"
        assert document.root.attributes["t"] == '"x"'

    def test_text_and_children_mix(self):
        document = loads("<a>hello <b/> world</a>")
        assert document.root.text == "hello  world"
        assert document.root.children[0].name == "b"

    @pytest.mark.parametrize(
        "bad",
        [
            "<a>",                      # unterminated element
            "<a></b>",                  # mismatched closing tag
            "<a b=c/>",                 # unquoted attribute
            "<a b=\"1\" b=\"2\"/>",     # duplicate attribute
            "<a>&bogus;</a>",           # unknown entity
            "<a/><b/>",                 # two roots
            "<!-- only a comment -->",  # no root at all
            "<a><!-- unterminated </a>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(TreeError):
            loads(bad)
