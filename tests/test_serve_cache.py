"""Unit tests for the interned decision cache."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import use_registry
from repro.serve.cache import DecisionCache


class TestKeying:
    def test_keys_are_interned_ints(self):
        cache = DecisionCache()
        key = cache.key(3, 1, "nurse", "treatment", ("referral", "name"))
        assert key[0] == 3 and key[1] == 1
        assert all(isinstance(atom, int) for atom in key[2:4])
        assert all(isinstance(atom, int) for atom in key[4])

    def test_same_inputs_same_key(self):
        cache = DecisionCache()
        a = cache.key(1, 1, "nurse", "treatment", ("referral",))
        b = cache.key(1, 1, "nurse", "treatment", ("referral",))
        assert a == b

    def test_version_pair_changes_key(self):
        cache = DecisionCache()
        base = cache.key(1, 1, "nurse", "treatment", ("referral",))
        assert cache.key(2, 1, "nurse", "treatment", ("referral",)) != base
        assert cache.key(1, 2, "nurse", "treatment", ("referral",)) != base

    def test_distinct_strings_get_distinct_atoms(self):
        cache = DecisionCache()
        a = cache.key(1, 1, "nurse", "treatment", ())
        b = cache.key(1, 1, "physician", "treatment", ())
        assert a[2] != b[2]
        assert a[3] == b[3]  # same purpose atom


class TestLookup:
    def test_miss_then_hit(self):
        cache = DecisionCache()
        key = cache.key(1, 1, "nurse", "treatment", ("referral",))
        assert cache.get(key) is None
        cache.put(key, frozenset({"referral"}))
        assert cache.get(key) == frozenset({"referral"})
        assert cache.misses == 1
        assert cache.hits == 1

    def test_stale_version_is_a_miss_not_a_wrong_answer(self):
        cache = DecisionCache()
        old = cache.key(1, 1, "nurse", "treatment", ("referral",))
        cache.put(old, frozenset({"referral"}))
        fresh = cache.key(2, 1, "nurse", "treatment", ("referral",))
        assert cache.get(fresh) is None

    def test_lru_eviction_order(self):
        cache = DecisionCache(max_entries=2)
        k1 = cache.key(1, 1, "a", "p", ())
        k2 = cache.key(1, 1, "b", "p", ())
        k3 = cache.key(1, 1, "c", "p", ())
        cache.put(k1, frozenset())
        cache.put(k2, frozenset())
        cache.get(k1)  # k1 now most recently used
        cache.put(k3, frozenset())  # evicts k2
        assert cache.get(k2) is None
        assert cache.get(k1) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_invalidate_clears_and_counts(self):
        cache = DecisionCache()
        cache.put(cache.key(1, 1, "a", "p", ()), frozenset())
        cache.invalidate()
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DecisionCache(max_entries=0)


class TestTelemetry:
    def test_collector_flushes_deltas(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = DecisionCache()
            key = cache.key(1, 1, "nurse", "treatment", ("referral",))
            cache.get(key)
            cache.put(key, frozenset({"referral"}))
            cache.get(key)
            cache.invalidate()
            snapshot = registry.snapshot()
        counters = {
            (s["name"]): s["value"] for s in snapshot["counters"]
        }
        assert counters["repro_serve_decision_cache_hits_total"] == 1
        assert counters["repro_serve_decision_cache_misses_total"] == 1
        assert counters["repro_serve_decision_cache_invalidations_total"] == 1
        gauges = {s["name"]: s["value"] for s in snapshot["gauges"]}
        assert gauges["repro_serve_decision_cache_size"] == 0

    def test_stats_dict_is_json_ready(self):
        cache = DecisionCache(max_entries=8)
        stats = cache.stats()
        assert stats == {
            "entries": 0, "max_entries": 8, "hits": 0, "misses": 0,
            "evictions": 0, "invalidations": 0,
        }
