"""Unit tests for repro.policy.rule (Definitions 5-6, Corollary 1)."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.rule import Rule
from repro.policy.ruleterm import RuleTerm


class TestConstruction:
    def test_of_builds_canonical_rule(self):
        rule = Rule.of(data="Referral", purpose="Treatment", authorized="Nurse")
        assert rule.cardinality == 3
        assert rule.value_of("data") == "referral"

    def test_terms_sorted_canonically(self):
        a = Rule.of(purpose="billing", data="insurance", authorized="nurse")
        b = Rule.of(authorized="nurse", data="insurance", purpose="billing")
        assert a == b
        assert hash(a) == hash(b)

    def test_duplicate_terms_collapse(self):
        rule = Rule.from_pairs([("data", "name"), ("data", "name")])
        assert rule.cardinality == 1

    def test_empty_rule_rejected(self):
        with pytest.raises(PolicyError):
            Rule(())

    def test_of_requires_assignments(self):
        with pytest.raises(PolicyError):
            Rule.of()

    def test_str_matches_paper_notation(self):
        rule = Rule.of(data="insurance", purpose="billing", authorized="nurse")
        assert str(rule) == (
            "{(authorized, nurse) ^ (data, insurance) ^ (purpose, billing)}"
        )


class TestProjection:
    def test_project_keeps_requested_attributes(self):
        rule = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        projected = rule.project(["data", "purpose"])
        assert projected == Rule.of(data="referral", purpose="treatment")

    def test_project_empty_raises(self):
        rule = Rule.of(data="referral")
        with pytest.raises(PolicyError):
            rule.project(["purpose"])

    def test_value_of_missing_attribute_is_none(self):
        assert Rule.of(data="referral").value_of("purpose") is None


class TestGrounding:
    def test_ground_rule_stays_itself(self, vocabulary):
        rule = Rule.of(data="gender", purpose="billing", authorized="clerk")
        assert rule.is_ground(vocabulary)
        assert rule.ground_rules(vocabulary) == (rule,)

    def test_composite_rule_expands_by_product(self, vocabulary):
        # demographic (4 leaves) x operations (3 leaves) = 12 ground rules
        rule = Rule.of(data="demographic", purpose="operations", authorized="clerk")
        assert not rule.is_ground(vocabulary)
        expansion = rule.ground_rules(vocabulary)
        assert len(expansion) == 12
        assert all(ground.is_ground(vocabulary) for ground in expansion)

    def test_corollary1_every_rule_has_ground_counterpart(self, vocabulary):
        rule = Rule.of(data="clinical", purpose="healthcare", authorized="clinical_staff")
        assert len(rule.ground_rules(vocabulary)) >= 1

    def test_figure3_rule1_expands_to_three(self, vocabulary):
        rule = Rule.of(data="medical_records", purpose="treatment", authorized="nurse")
        expansion = rule.ground_rules(vocabulary)
        assert len(expansion) == 3
        assert Rule.of(data="referral", purpose="treatment", authorized="nurse") in expansion


class TestEquivalence:
    def test_ground_rules_equivalent_iff_equal(self, vocabulary):
        a = Rule.of(data="gender", purpose="billing", authorized="clerk")
        b = Rule.of(data="gender", purpose="billing", authorized="clerk")
        c = Rule.of(data="name", purpose="billing", authorized="clerk")
        assert a.equivalent(b, vocabulary)
        assert not a.equivalent(c, vocabulary)

    def test_different_cardinality_never_equivalent(self, vocabulary):
        a = Rule.of(data="gender", purpose="billing")
        b = Rule.of(data="gender", purpose="billing", authorized="clerk")
        assert not a.equivalent(b, vocabulary)

    def test_composite_equivalent_to_contained_ground(self, vocabulary):
        composite = Rule.of(data="demographic", purpose="billing", authorized="clerk")
        ground = Rule.of(data="address", purpose="billing", authorized="clerk")
        assert composite.equivalent(ground, vocabulary)
        assert ground.equivalent(composite, vocabulary)

    def test_equivalence_requires_overlap_on_every_attribute(self, vocabulary):
        a = Rule.of(data="demographic", purpose="billing", authorized="clerk")
        b = Rule.of(data="address", purpose="treatment", authorized="clerk")
        assert not a.equivalent(b, vocabulary)


class TestCovers:
    def test_composite_covers_contained_ground_rule(self, vocabulary):
        store_rule = Rule.of(
            data="medical_records", purpose="treatment", authorized="nurse"
        )
        request = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        assert store_rule.covers(request, vocabulary)

    def test_does_not_cover_outside_subtree(self, vocabulary):
        store_rule = Rule.of(
            data="medical_records", purpose="treatment", authorized="nurse"
        )
        request = Rule.of(data="psychiatry", purpose="treatment", authorized="nurse")
        assert not store_rule.covers(request, vocabulary)

    def test_ground_covers_only_itself(self, vocabulary):
        rule = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        assert rule.covers(rule, vocabulary)
        other = Rule.of(data="referral", purpose="registration", authorized="nurse")
        assert not rule.covers(other, vocabulary)

    def test_cardinality_mismatch_not_covered(self, vocabulary):
        wide = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        narrow = Rule.of(data="referral", purpose="treatment")
        assert not wide.covers(narrow, vocabulary)

    def test_term_subsumes_helper(self, vocabulary):
        assert RuleTerm("data", "clinical").subsumes(
            RuleTerm("data", "prescription"), vocabulary
        )
