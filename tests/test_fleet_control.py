"""Unit tests for the fleet control channel (no processes spawned)."""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro.fleet import (
    APPLY_OPS,
    REPLAY_OPS,
    WorkerControl,
    apply_broadcast,
    worker_site,
    worker_store_dir,
)
from repro.errors import FleetError
from repro.serve import build_demo_engine, protocol


@pytest.fixture()
def engine():
    return build_demo_engine(rows=30, seed=7)


class TestApplyBroadcast:
    def test_add_rule_applies_through_the_admin_path(self, engine):
        before = engine.versions()["policy"]
        response = apply_broadcast(
            engine,
            {"op": "admin.add_rule",
             "rule": "ALLOW auditor TO USE insurance FOR audit",
             "note": "t"},
        )
        assert response["ok"] is True
        assert engine.versions()["policy"] == before + 1

    def test_consent_bumps_the_consent_version(self, engine):
        response = apply_broadcast(
            engine,
            {"op": "admin.consent", "patient": "p1", "purpose": "research",
             "allowed": True, "data": None},
        )
        assert response["ok"] is True
        assert engine.versions()["consent"] == 1

    def test_adopt_parses_and_swaps_once(self, engine):
        response = apply_broadcast(
            engine,
            {"op": "fleet.adopt",
             "rules": ["ALLOW auditor TO USE insurance FOR audit"],
             "note": "round=0"},
        )
        assert response["ok"] is True
        assert response["added"] == 1
        # idempotent: re-adoption swaps nothing
        again = apply_broadcast(
            engine,
            {"op": "fleet.adopt",
             "rules": ["ALLOW auditor TO USE insurance FOR audit"]},
        )
        assert again["ok"] is True
        assert again["added"] == 0

    def test_adopt_rejects_unparsable_dsl(self, engine):
        response = apply_broadcast(
            engine, {"op": "fleet.adopt", "rules": ["NOT A RULE"]}
        )
        assert response["ok"] is False
        assert response["code"] == protocol.BAD_REQUEST

    def test_sync_answers_with_trail_size(self, engine):
        response = apply_broadcast(engine, {"op": "fleet.sync"})
        assert response["ok"] is True
        assert response["synced"] == len(engine.audit_log)

    def test_unknown_op_is_bad_request(self, engine):
        response = apply_broadcast(engine, {"op": "fleet.explode"})
        assert response["ok"] is False
        assert response["code"] == protocol.BAD_REQUEST

    def test_replay_ops_exclude_the_sync_barrier(self):
        assert REPLAY_OPS < APPLY_OPS
        assert "fleet.sync" in APPLY_OPS
        assert "fleet.sync" not in REPLAY_OPS


class TestWorkerControlLoop:
    """Drive the worker endpoint over an in-process pipe pair."""

    def _running_control(self, engine):
        sup_conn, worker_conn = multiprocessing.Pipe(duplex=True)
        control = WorkerControl("worker-00", worker_conn)
        control.attach(engine, None)
        thread = threading.Thread(target=control.run, daemon=True)
        thread.start()
        return sup_conn, control, thread

    def test_run_before_attach_raises(self):
        _, worker_conn = multiprocessing.Pipe(duplex=True)
        with pytest.raises(FleetError):
            WorkerControl("worker-00", worker_conn).run()

    def test_apply_is_acked_with_the_version(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        try:
            sup_conn.send(("apply", 3, {"op": "admin.consent", "patient": "p1",
                                        "purpose": "research", "allowed": True,
                                        "data": None}))
            assert sup_conn.poll(10)
            kind, site, version, response = sup_conn.recv()
            assert (kind, site, version) == ("applied", "worker-00", 3)
            assert response["ok"] is True
            assert control.version_applied == 3
        finally:
            sup_conn.send(("stop",))
            thread.join(10)

    def test_apply_failure_acks_an_error_not_a_crash(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        try:
            sup_conn.send(("apply", 1, {"op": "fleet.explode"}))
            assert sup_conn.poll(10)
            _, _, _, response = sup_conn.recv()
            assert response["ok"] is False
            # the loop survives a bad op: a later apply still works
            sup_conn.send(("apply", 2, {"op": "fleet.sync"}))
            assert sup_conn.poll(10)
            assert sup_conn.recv()[3]["ok"] is True
        finally:
            sup_conn.send(("stop",))
            thread.join(10)

    def test_status_req_round_trip(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        try:
            sup_conn.send(("status_req",))
            assert sup_conn.poll(10)
            kind, site, row = sup_conn.recv()
            assert kind == "status"
            assert row["site"] == "worker-00"
            assert row["versions"] == engine.versions()
            assert row["ready"] is False  # no server attached
        finally:
            sup_conn.send(("stop",))
            thread.join(10)

    def test_proxied_admin_resolves_by_ticket(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        try:
            outcome = {}

            def call():
                outcome["response"] = control.admin_request(
                    {"op": "admin.consent", "patient": "p1",
                     "purpose": "research", "allowed": True, "data": None}
                )

            caller = threading.Thread(target=call)
            caller.start()
            assert sup_conn.poll(10)
            kind, site, ticket, payload = sup_conn.recv()
            assert kind == "admin"
            assert payload["op"] == "admin.consent"
            sup_conn.send(("admin_reply", ticket,
                           protocol.ok_response(changed=True)))
            caller.join(10)
            assert outcome["response"]["ok"] is True
        finally:
            sup_conn.send(("stop",))
            thread.join(10)

    def test_stop_sets_the_stopping_event(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        sup_conn.send(("stop",))
        thread.join(10)
        assert control.stopping.is_set()

    def test_supervisor_eof_stops_the_loop(self, engine):
        sup_conn, control, thread = self._running_control(engine)
        sup_conn.close()
        thread.join(10)
        assert not thread.is_alive()


class TestTrailNaming:
    def test_site_names_sort_with_their_indices(self):
        assert worker_site(0) == "worker-00"
        assert worker_site(11) == "worker-11"
        assert sorted(worker_site(i) for i in (10, 2, 0)) == [
            "worker-00", "worker-02", "worker-10"
        ]

    def test_negative_index_rejected(self):
        with pytest.raises(FleetError):
            worker_site(-1)

    def test_store_dir_lives_under_the_root(self, tmp_path):
        assert worker_store_dir(tmp_path, 3) == tmp_path / "worker-03"
