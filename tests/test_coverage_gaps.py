"""Unit tests for repro.coverage.gaps (the Section 3.3 narrative)."""

from __future__ import annotations

from repro.coverage.engine import compute_coverage
from repro.coverage.gaps import analyse_gaps
from repro.policy.policy import Policy
from repro.policy.rule import Rule


def _gaps(vocabulary, fig3_policy, fig3_audit):
    report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
    return analyse_gaps(report, fig3_policy, vocabulary)


class TestFigure3Narrative:
    def test_rule3_deviates_on_purpose(self, vocabulary, fig3_policy, fig3_audit):
        # "a nurse needed to access referral data for registration purpose,
        #  but the policy allows the use of such data only for treatment"
        gaps = _gaps(vocabulary, fig3_policy, fig3_audit)
        rule3 = Rule.of(data="referral", purpose="registration", authorized="nurse")
        deviations = [d for d in gaps.deviations if d.uncovered == rule3]
        assert len(deviations) == 1
        assert deviations[0].attribute == "purpose"
        assert deviations[0].observed == "registration"
        assert deviations[0].allowed == "treatment"

    def test_rule4_deviates_on_role_and_data(self, vocabulary, fig3_policy, fig3_audit):
        # psychiatry:treatment:nurse misses the physician-only rule on the
        # role axis and the medical-records rule on the data axis
        gaps = _gaps(vocabulary, fig3_policy, fig3_audit)
        rule4 = Rule.of(data="psychiatry", purpose="treatment", authorized="nurse")
        attributes = {d.attribute for d in gaps.deviations if d.uncovered == rule4}
        assert attributes == {"authorized", "data"}

    def test_rule6_deviates_on_data(self, vocabulary, fig3_policy, fig3_audit):
        # "the policy allows the use of only demographic data for this purpose"
        gaps = _gaps(vocabulary, fig3_policy, fig3_audit)
        rule6 = Rule.of(data="prescription", purpose="billing", authorized="clerk")
        deviations = [d for d in gaps.deviations if d.uncovered == rule6]
        assert len(deviations) == 1
        assert deviations[0].attribute == "data"
        assert deviations[0].allowed == "demographic"

    def test_every_figure3_gap_is_explained(self, vocabulary, fig3_policy, fig3_audit):
        gaps = _gaps(vocabulary, fig3_policy, fig3_audit)
        assert gaps.unexplained == ()
        assert gaps.explained_count == 3

    def test_by_attribute_histogram(self, vocabulary, fig3_policy, fig3_audit):
        gaps = _gaps(vocabulary, fig3_policy, fig3_audit)
        assert gaps.by_attribute() == {"data": 2, "authorized": 1, "purpose": 1}

    def test_describe_mentions_values(self, vocabulary, fig3_policy, fig3_audit):
        text = _gaps(vocabulary, fig3_policy, fig3_audit).describe()
        assert "registration" in text
        assert "deviates" in text


class TestEdgeCases:
    def test_unexplained_when_no_near_miss(self, vocabulary):
        store = Policy([Rule.of(data="address", purpose="billing", authorized="clerk")])
        audit = Policy([Rule.of(data="psychiatry", purpose="research", authorized="nurse")])
        report = compute_coverage(store, audit, vocabulary)
        gaps = analyse_gaps(report, store, vocabulary)
        assert len(gaps.unexplained) == 1
        assert gaps.deviations == ()
        assert "no near-miss" in gaps.describe()

    def test_cardinality_mismatch_is_not_comparable(self, vocabulary):
        store = Policy([Rule.of(data="address", purpose="billing")])
        audit = Policy([Rule.of(data="address", purpose="research", authorized="clerk")])
        report = compute_coverage(store, audit, vocabulary)
        gaps = analyse_gaps(report, store, vocabulary)
        assert gaps.unexplained != ()

    def test_no_gaps_when_complete(self, vocabulary, fig3_policy):
        report = compute_coverage(fig3_policy, fig3_policy, vocabulary)
        gaps = analyse_gaps(report, fig3_policy, vocabulary)
        assert gaps.deviations == ()
        assert gaps.unexplained == ()
