"""Unit tests for coverage trend analytics."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.coverage.trends import coverage_by_attribute, coverage_series
from repro.errors import AuditError, CoverageError
from repro.policy.policy import Policy
from repro.policy.rule import Rule


def _covered_entry(tick: int):
    return make_entry(tick, "u1", "referral", "treatment", "nurse")


def _uncovered_entry(tick: int):
    return make_entry(tick, "u2", "psychiatry", "treatment", "nurse",
                      status=AccessStatus.EXCEPTION)


@pytest.fixture()
def store_policy() -> Policy:
    return Policy([
        Rule.of(data="medical_records", purpose="treatment", authorized="nurse"),
    ])


class TestCoverageSeries:
    def test_windows_aligned_and_scored(self, vocabulary, store_policy):
        log = AuditLog()
        # window 1 (ticks 0-9): 2 covered, 2 uncovered; window 2: all covered
        log.extend([_covered_entry(0), _uncovered_entry(1),
                    _covered_entry(5), _uncovered_entry(9)])
        log.extend([_covered_entry(10), _covered_entry(12)])
        points = coverage_series(store_policy, log, vocabulary, window_size=10)
        assert len(points) == 2
        first, second = points
        assert (first.start, first.end, first.entries) == (0, 10, 4)
        assert first.entry_coverage == pytest.approx(0.5)
        assert first.set_coverage == pytest.approx(0.5)
        assert first.exception_rate == pytest.approx(0.5)
        assert second.entry_coverage == 1.0
        assert second.exception_rate == 0.0

    def test_empty_windows_skipped(self, vocabulary, store_policy):
        log = AuditLog()
        log.append(_covered_entry(0))
        log.append(_covered_entry(35))
        points = coverage_series(store_policy, log, vocabulary, window_size=10)
        assert [point.start for point in points] == [0, 30]

    def test_validation(self, vocabulary, store_policy):
        with pytest.raises(CoverageError):
            coverage_series(store_policy, AuditLog([_covered_entry(0)]),
                            vocabulary, window_size=0)
        with pytest.raises(AuditError):
            coverage_series(store_policy, AuditLog(), vocabulary, window_size=10)

    def test_trend_shows_improvement_on_table1_plus_fix(
        self, vocabulary, fig3_policy, table1_log
    ):
        grown = Policy([
            *fig3_policy,
            Rule.of(data="referral", purpose="registration", authorized="nurse"),
        ])
        before = coverage_series(fig3_policy, table1_log, vocabulary, window_size=10)
        after = coverage_series(grown, table1_log, vocabulary, window_size=10)
        assert after[0].entry_coverage > before[0].entry_coverage


class TestCoverageByAttribute:
    def test_breakdown_by_role(self, vocabulary, fig3_policy, table1_log):
        slices = coverage_by_attribute(
            fig3_policy, table1_log, vocabulary, "authorized"
        )
        by_value = {item.value: item for item in slices}
        # nurses: 2 of 7 entries covered; clerks: 1 of 2; the doctor: 0 of 1
        assert by_value["nurse"].entries == 7
        assert by_value["nurse"].matched == 2
        assert by_value["clerk"].matched == 1
        assert by_value["doctor"].matched == 0

    def test_sorted_worst_first(self, vocabulary, fig3_policy, table1_log):
        slices = coverage_by_attribute(
            fig3_policy, table1_log, vocabulary, "authorized"
        )
        ratios = [item.entry_coverage for item in slices]
        assert ratios == sorted(ratios)

    def test_breakdown_by_data(self, vocabulary, fig3_policy, table1_log):
        slices = coverage_by_attribute(fig3_policy, table1_log, vocabulary, "data")
        by_value = {item.value: item for item in slices}
        assert by_value["referral"].entries == 6
        assert by_value["referral"].matched == 1  # only the treatment one

    def test_unknown_attribute_rejected(self, vocabulary, fig3_policy, table1_log):
        with pytest.raises(AuditError):
            coverage_by_attribute(fig3_policy, table1_log, vocabulary, "bogus")

    def test_empty_log_rejected(self, vocabulary, fig3_policy):
        with pytest.raises(AuditError):
            coverage_by_attribute(fig3_policy, AuditLog(), vocabulary)
