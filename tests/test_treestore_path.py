"""Unit tests for the path query language."""

from __future__ import annotations

import pytest

from repro.treestore.node import TreeDocument, TreeError, TreeNode
from repro.treestore.path import compile_path


@pytest.fixture()
def document() -> TreeDocument:
    root = TreeNode("patients")
    for pid, name in (("p1", "Alice"), ("p2", "Bob")):
        patient = root.child("patient", {"id": pid})
        patient.child("name", text=name)
        record = patient.child("record")
        record.child("prescription", text=f"rx-{pid}")
        nested = record.child("attachments")
        nested.child("note", text=f"note-{pid}")
    return TreeDocument(root, name="ward")


class TestSelection:
    def test_absolute_child_steps(self, document):
        nodes = compile_path("/patients/patient/name").select(document)
        assert [node.text for node in nodes] == ["Alice", "Bob"]

    def test_root_name_must_match(self, document):
        assert compile_path("/hospital/patient").select(document) == ()

    def test_descendant_axis_anywhere(self, document):
        nodes = compile_path("//note").select(document)
        assert [node.text for node in nodes] == ["note-p1", "note-p2"]

    def test_descendant_axis_mid_path(self, document):
        nodes = compile_path("/patients//note").select(document)
        assert len(nodes) == 2

    def test_wildcard_step(self, document):
        nodes = compile_path("/patients/*/name").select(document)
        assert len(nodes) == 2

    def test_attribute_predicate(self, document):
        nodes = compile_path("/patients/patient[@id='p2']/name").select(document)
        assert [node.text for node in nodes] == ["Bob"]

    def test_predicate_no_match(self, document):
        assert compile_path("/patients/patient[@id='p9']").select(document) == ()

    def test_descendant_results_deduplicated_in_order(self, document):
        nodes = compile_path("//record//note").select(document)
        assert [node.text for node in nodes] == ["note-p1", "note-p2"]

    def test_select_from_bare_node(self, document):
        patient = document.root.children[0]
        nodes = compile_path("/patient/record/prescription").select(patient)
        assert [node.text for node in nodes] == ["rx-p1"]

    def test_matches_node(self, document):
        expression = compile_path("/patients/patient[@id='p1']/record/prescription")
        prescription = document.root.children[0].children[1].children[0]
        other = document.root.children[1].children[1].children[0]
        assert expression.matches_node(prescription)
        assert not expression.matches_node(other)


class TestCompilation:
    def test_steps_structure(self):
        expression = compile_path("/a//b[@x='1']/*")
        axes = [step.axis for step in expression.steps]
        assert axes == ["child", "descendant", "child"]
        assert expression.steps[1].attribute == ("x", "1")
        assert expression.steps[2].name == "*"

    def test_str_round_trip(self):
        source = "/a//b[@x='1']"
        assert str(compile_path(source)) == source

    @pytest.mark.parametrize(
        "bad", ["", "a/b", "/", "/a/", "/a[@b]", "/a[@b=c]", "/a[b='c']"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(TreeError):
            compile_path(bad)
