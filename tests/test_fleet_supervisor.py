"""End-to-end fleet tests: shared port, broadcasts, crashes, federation."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.errors import FleetError, ServeError
from repro.fleet import (
    FleetConfig,
    FleetPolicyTarget,
    FleetRefineDaemon,
    FleetSupervisor,
    consolidated_trail,
    fleet_sites,
    sealed_entry_counts,
)
from repro.refine_daemon.gate import AutoAcceptGate
from repro.serve import PdpClient, RetryPolicy, protocol
from repro.workload.traces import demo_decision_payloads

_ROWS = 30


def _decide_ok(response):
    """A served decision reached an engine (allow and deny both count)."""
    return response.get("ok") or response.get("code") == protocol.DENIED


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-store")
    config = FleetConfig(
        store_dir=str(root), workers=2, rows=_ROWS, segment_entries=16
    )
    supervisor = FleetSupervisor(config).start()
    try:
        yield supervisor
    finally:
        supervisor.shutdown()


class TestFleetServing:
    def test_status_shows_a_converged_ready_fleet(self, fleet):
        status = fleet.status()
        assert status["ok"] is True
        assert status["size"] == 2
        assert status["ready"] == 2
        assert status["converged"] is True
        sites = [worker["site"] for worker in status["workers"]]
        assert sites == ["worker-00", "worker-01"]
        assert all(worker["reachable"] for worker in status["workers"])

    def test_decides_serve_on_the_shared_port(self, fleet):
        payloads = demo_decision_payloads(20)
        with PdpClient(fleet.host, fleet.port) as client:
            responses = [client.request(dict(p)) for p in payloads]
        assert all(_decide_ok(r) for r in responses)

    def test_stats_carries_the_worker_identity(self, fleet):
        with PdpClient(fleet.host, fleet.port) as client:
            stats = client.stats()
        assert stats["ok"] is True
        assert stats["worker"]["id"] in fleet_sites(fleet.config.store_dir) or \
            stats["worker"]["id"].startswith("worker-")
        assert stats["worker"]["pid"] != os.getpid()

    def test_admin_broadcast_converges_under_concurrent_decides(self, fleet):
        payloads = demo_decision_payloads(60)
        failures: list = []
        stop = threading.Event()

        def pound():
            with PdpClient(fleet.host, fleet.port) as client:
                index = 0
                while not stop.is_set():
                    response = client.request(dict(payloads[index % 60]))
                    if not _decide_ok(response):
                        failures.append(response)
                        return
                    index += 1

        threads = [threading.Thread(target=pound) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            with PdpClient(fleet.host, fleet.port) as admin:
                consent = admin.record_consent("p000001", "research", True)
                added = admin.add_rule(
                    "ALLOW auditor TO USE insurance FOR audit",
                    note="converge-test",
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(30)
        assert not failures
        assert consent["ok"] is True
        assert consent["fleet"]["acks"] == 2
        assert added["ok"] is True
        status = fleet.status()
        assert status["converged"] is True
        stamps = {
            tuple(sorted(worker["versions"].items()))
            for worker in status["workers"]
        }
        assert len(stamps) == 1
        # the broadcast is in the oplog, so future respawns replay it
        assert status["oplog"] >= 2

    def test_fleet_ops_reach_the_supervisor_through_any_worker(self, fleet):
        with PdpClient(fleet.host, fleet.port) as client:
            status = client.fleet_status()
            assert status["ok"] is True
            assert status["size"] == 2
            synced = client.fleet_sync()
            assert synced["ok"] is True
            metrics = client.fleet_metrics()
        assert metrics["ok"] is True
        assert 'worker="worker-00"' in metrics["metrics"]
        assert 'worker="worker-01"' in metrics["metrics"]

    def test_refine_daemon_broadcasts_adoptions(self, fleet):
        payloads = demo_decision_payloads(200)
        with PdpClient(fleet.host, fleet.port) as client:
            for payload in payloads:
                assert _decide_ok(client.request(dict(payload)))
            assert client.fleet_sync()["ok"] is True
        daemon = FleetRefineDaemon(
            fleet.config.store_dir,
            FleetPolicyTarget(fleet),
            gate=AutoAcceptGate(3, 2),
        )
        report = daemon.poll()
        assert report.consumed > 0
        # marks are per member: "site:count", one per worker directory
        marks = dict(
            item.rsplit(":", 1) for item in daemon.state.segments_consumed
        )
        assert set(marks) == set(fleet_sites(fleet.config.store_dir))
        assert sum(int(count) for count in marks.values()) == report.watermark
        if report.accepted:
            status = fleet.status()
            assert status["converged"] is True
            adopted = [str(rule) for rule in report.accepted]
            assert all(rule in fleet.policy_store.policy() for rule
                       in report.accepted), adopted
        # a second poll over unchanged trails consumes nothing
        assert daemon.poll().consumed == 0

    def test_sealed_counts_are_live_safe(self, fleet):
        counts = sealed_entry_counts(fleet.config.store_dir)
        assert set(counts) == {"worker-00", "worker-01"}
        assert all(count >= 0 for count in counts.values())


class TestCrashRespawn:
    @pytest.fixture()
    def crash_fleet(self, tmp_path):
        config = FleetConfig(
            store_dir=str(tmp_path), workers=2, rows=_ROWS,
            segment_entries=8,
        )
        supervisor = FleetSupervisor(config).start()
        try:
            yield supervisor
        finally:
            supervisor.shutdown()

    def _await_respawn(self, supervisor, dead_pid, timeout=45.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = supervisor.status()
            pids = [worker["pid"] for worker in status["workers"]
                    if worker["reachable"]]
            if status["ready"] == 2 and dead_pid not in pids:
                return status
            time.sleep(0.2)
        raise AssertionError("worker did not respawn in time")

    def test_killed_worker_respawns_converged_with_no_lost_entries(
        self, crash_fleet
    ):
        supervisor = crash_fleet
        payloads = demo_decision_payloads(40)
        with PdpClient(supervisor.host, supervisor.port) as client:
            for payload in payloads:
                assert _decide_ok(client.request(dict(payload)))
            assert client.record_consent("p000001", "research", True)["ok"]
            # durability barrier first: fsync="interval" buffering would
            # otherwise lose tail entries to the SIGKILL below
            assert client.fleet_sync()["ok"] is True
            status = client.fleet_status()
        victim = status["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        status = self._await_respawn(supervisor, victim)
        # the respawn replayed the oplog: same versions on every worker
        assert status["converged"] is True
        assert status["respawns"] == 1
        consent_versions = [worker["versions"]["consent"]
                            for worker in status["workers"]]
        assert consent_versions == [1, 1]
        with PdpClient(supervisor.host, supervisor.port) as client:
            more = demo_decision_payloads(10)
            for payload in more:
                assert _decide_ok(client.request(dict(payload)))
        supervisor.shutdown()
        # every decide audited exactly once across the federated trail:
        # nothing lost to the crash, nothing duplicated by the replay
        trail = consolidated_trail(supervisor.config.store_dir)
        assert len(trail) == 50

    def test_client_replays_idempotent_ops_only_across_a_crash(
        self, crash_fleet
    ):
        supervisor = crash_fleet
        retry = RetryPolicy(attempts=6, base_delay=0.1)
        with PdpClient(supervisor.host, supervisor.port, retry=retry) as client:
            stats = client.stats()
            my_worker_pid = stats["worker"]["pid"]
            os.kill(my_worker_pid, signal.SIGKILL)
            # non-idempotent op on the dead connection: surfaced, never
            # silently replayed on a fresh connection
            with pytest.raises(ServeError):
                client.add_rule("ALLOW auditor TO USE insurance FOR audit")
            # idempotent op: transparently replayed on a reconnect (which
            # lands on a live worker)
            response = client.decide("u1", "physician", "treatment",
                                     ["prescription"])
            assert response["ok"] is True
        self._await_respawn(supervisor, my_worker_pid)


class TestListenerModes:
    def test_fd_mode_shares_one_accept_queue(self, tmp_path):
        config = FleetConfig(
            store_dir=str(tmp_path), workers=2, rows=_ROWS, listener="fd"
        )
        with FleetSupervisor(config) as supervisor:
            assert supervisor.listener_mode == "fd"
            with PdpClient(supervisor.host, supervisor.port) as client:
                assert client.ping()["ok"] is True
                status = client.fleet_status()
                assert status["listener"] == "fd"
                assert status["ready"] == 2

    def test_client_shutdown_stops_the_whole_fleet(self, tmp_path):
        config = FleetConfig(store_dir=str(tmp_path), workers=2, rows=_ROWS)
        supervisor = FleetSupervisor(config).start()
        try:
            with PdpClient(supervisor.host, supervisor.port) as client:
                response = client.shutdown_server()
                assert response["ok"] is True
            assert supervisor.wait(45), "fleet did not drain and stop"
        finally:
            supervisor.shutdown()
        # after drain-then-stop, every worker directory federates cleanly
        assert fleet_sites(supervisor.config.store_dir) == (
            "worker-00", "worker-01"
        )


class TestConfigValidation:
    def test_store_dir_is_required(self):
        with pytest.raises(FleetError):
            FleetConfig(workers=2)

    def test_worker_floor(self):
        with pytest.raises(FleetError):
            FleetConfig(store_dir="x", workers=0)

    def test_unknown_listener_mode(self):
        with pytest.raises(FleetError):
            FleetConfig(store_dir="x", listener="quic")

    def test_port_property_requires_start(self, tmp_path):
        supervisor = FleetSupervisor(FleetConfig(store_dir=str(tmp_path)))
        with pytest.raises(FleetError):
            _ = supervisor.port
