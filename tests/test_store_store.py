"""Unit tests for the segmented AuditStore: append, rotate, read, verify."""

from __future__ import annotations

import pytest

from repro.audit.log import make_entry
from repro.errors import AuditError, StoreError
from repro.store.store import AuditStore, StoreConfig


def _entry(tick: int, user: str = "mark", data: str = "referral"):
    return make_entry(tick, user, data, "registration", "nurse")


@pytest.fixture()
def small_config() -> StoreConfig:
    """Rotate every 5 entries so rotation paths get exercised."""
    return StoreConfig(max_segment_entries=5, fsync="off")


class TestConfig:
    def test_rejects_unknown_fsync_policy(self):
        with pytest.raises(StoreError):
            StoreConfig(fsync="sometimes")

    def test_rejects_non_positive_limits(self):
        with pytest.raises(StoreError):
            StoreConfig(max_segment_bytes=0)
        with pytest.raises(StoreError):
            StoreConfig(max_segment_entries=0)
        with pytest.raises(StoreError):
            StoreConfig(fsync_interval=0)
        with pytest.raises(StoreError):
            StoreConfig(time_index_stride=0)


class TestAppendAndRead:
    def test_round_trip_order_preserved(self, tmp_path, small_config):
        written = [_entry(tick) for tick in range(1, 23)]
        with AuditStore(tmp_path / "s", small_config) as store:
            store.extend(written)
            assert len(store) == 22
            assert list(store) == written

    def test_rotation_seals_segments(self, tmp_path, small_config):
        with AuditStore(tmp_path / "s", small_config) as store:
            store.extend(_entry(tick) for tick in range(1, 23))
            stats = store.stats()
        assert stats.sealed_segments == 4
        assert stats.entries == 22

    def test_reopen_preserves_everything(self, tmp_path, small_config):
        directory = tmp_path / "s"
        written = [_entry(tick) for tick in range(1, 23)]
        with AuditStore(directory, small_config) as store:
            store.extend(written)
        with AuditStore(directory, small_config, create=False) as store:
            assert list(store) == written
            assert store.time_range() == (1, 22)

    def test_rejects_non_entry(self, tmp_path):
        with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
            with pytest.raises(AuditError):
                store.append("not an entry")

    def test_rejects_time_regression(self, tmp_path):
        with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
            store.append(_entry(5))
            with pytest.raises(AuditError):
                store.append(_entry(4))

    def test_equal_times_allowed(self, tmp_path):
        with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
            store.append(_entry(5))
            store.append(_entry(5, user="tim"))
            assert len(store) == 2

    def test_closed_store_refuses_io(self, tmp_path):
        store = AuditStore(tmp_path / "s", StoreConfig(fsync="off"))
        store.close()
        with pytest.raises(StoreError):
            store.append(_entry(1))

    def test_time_range_empty_raises(self, tmp_path):
        with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
            with pytest.raises(AuditError):
                store.time_range()

    def test_segments_without_manifest_rejected(self, tmp_path):
        directory = tmp_path / "s"
        directory.mkdir()
        (directory / "seg-00000001.seg").write_bytes(b"PRAS\x01\x00\x00\x00")
        with pytest.raises(StoreError):
            AuditStore(directory)

    def test_open_missing_store_without_create(self, tmp_path):
        with pytest.raises(StoreError):
            AuditStore(tmp_path / "absent", create=False)


class TestQueries:
    @pytest.fixture()
    def populated(self, tmp_path, small_config):
        with AuditStore(tmp_path / "s", small_config) as store:
            for tick in range(1, 23):
                store.append(_entry(tick, user=f"user{tick % 3}",
                                    data="referral" if tick % 2 else "name"))
            yield store

    def test_scan_window_half_open(self, populated):
        times = [entry.time for entry in populated.scan_window(5, 12)]
        assert times == [5, 6, 7, 8, 9, 10, 11]

    def test_scan_window_crosses_segments(self, populated):
        assert len(list(populated.scan_window(1, 23))) == 22

    def test_scan_window_empty_range(self, populated):
        assert list(populated.scan_window(100, 200)) == []

    def test_lookup_by_user(self, populated):
        hits = tuple(populated.lookup(user="user1"))
        assert all(entry.user == "user1" for entry in hits)
        assert len(hits) == len([t for t in range(1, 23) if t % 3 == 1])

    def test_lookup_intersection(self, populated):
        hits = tuple(populated.lookup(user="user1", data="name"))
        assert all(
            entry.user == "user1" and entry.data == "name" for entry in hits
        )
        assert len(hits) == len(
            [t for t in range(1, 23) if t % 3 == 1 and t % 2 == 0]
        )

    def test_lookup_canonicalises_query(self, populated):
        assert tuple(populated.lookup(user="  USER1 ")) == tuple(
            populated.lookup(user="user1")
        )

    def test_lookup_unknown_value_empty(self, populated):
        assert tuple(populated.lookup(user="nobody")) == ()

    def test_lookup_without_attributes_rejected(self, populated):
        with pytest.raises(StoreError):
            next(populated.lookup())

    def test_tail_newest_first_window(self, populated):
        assert [entry.time for entry in populated.tail(3)] == [20, 21, 22]

    def test_tail_larger_than_store(self, populated):
        assert len(populated.tail(1000)) == 22


class TestVerify:
    def test_clean_store_verifies(self, tmp_path, small_config):
        with AuditStore(tmp_path / "s", small_config) as store:
            store.extend(_entry(tick) for tick in range(1, 23))
            report = store.verify()
        assert report.ok
        assert report.records == 22

    def test_flipped_bit_detected(self, tmp_path, small_config):
        directory = tmp_path / "s"
        with AuditStore(directory, small_config) as store:
            store.extend(_entry(tick) for tick in range(1, 23))
        victim = sorted(directory.glob("seg-*.seg"))[0]
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with AuditStore(directory, small_config, create=False) as store:
            assert not store.verify().ok
