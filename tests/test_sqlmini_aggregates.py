"""Unit tests for aggregate accumulators."""

from __future__ import annotations

import pytest

from repro.sqlmini.aggregates import (
    Avg,
    Count,
    CountAll,
    Extreme,
    Sum,
    make_accumulator,
)
from repro.sqlmini.errors import SqlExecutionError, SqlPlanError
from repro.sqlmini.parser import parse_expression


def feed(accumulator, values):
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestCount:
    def test_count_all_includes_nulls(self):
        assert feed(CountAll(), [1, None, "x"]) == 3

    def test_count_expr_skips_nulls(self):
        assert feed(Count(), [1, None, 2]) == 2

    def test_count_distinct(self):
        assert feed(Count(distinct=True), [1, 1, 2, None, 2]) == 2

    def test_count_empty_is_zero(self):
        assert Count().result() == 0
        assert CountAll().result() == 0


class TestSumAvg:
    def test_sum(self):
        assert feed(Sum(), [1, 2, 3]) == 6

    def test_sum_distinct(self):
        assert feed(Sum(distinct=True), [1, 1, 2]) == 3

    def test_sum_empty_is_null(self):
        assert Sum().result() is None

    def test_sum_ignores_nulls(self):
        assert feed(Sum(), [None, 5, None]) == 5

    def test_sum_rejects_text(self):
        with pytest.raises(SqlExecutionError):
            Sum().add("x")

    def test_avg(self):
        assert feed(Avg(), [1, 2, 3]) == pytest.approx(2.0)

    def test_avg_distinct(self):
        assert feed(Avg(distinct=True), [1, 1, 4]) == pytest.approx(2.5)

    def test_avg_empty_is_null(self):
        assert Avg().result() is None

    def test_avg_rejects_bool(self):
        with pytest.raises(SqlExecutionError):
            Avg().add(True)


class TestMinMax:
    def test_min_max_numbers(self):
        assert feed(Extreme(want_max=False), [3, 1, 2]) == 1
        assert feed(Extreme(want_max=True), [3, 1, 2]) == 3

    def test_min_max_text(self):
        assert feed(Extreme(want_max=False), ["b", "a"]) == "a"

    def test_empty_is_null(self):
        assert Extreme(want_max=True).result() is None

    def test_nulls_skipped(self):
        assert feed(Extreme(want_max=True), [None, 2, None]) == 2

    def test_incomparable_mix_raises(self):
        acc = Extreme(want_max=True)
        acc.add(1)
        with pytest.raises(SqlExecutionError):
            acc.add("x")


class TestFactory:
    def _call(self, text):
        return parse_expression(text)

    def test_count_star(self):
        assert isinstance(make_accumulator(self._call("COUNT(*)")), CountAll)

    def test_count_distinct(self):
        acc = make_accumulator(self._call("COUNT(DISTINCT x)"))
        assert isinstance(acc, Count)

    def test_count_distinct_star_rejected(self):
        with pytest.raises(SqlPlanError):
            make_accumulator(self._call("COUNT(DISTINCT *)"))

    def test_sum_avg_min_max(self):
        assert isinstance(make_accumulator(self._call("SUM(x)")), Sum)
        assert isinstance(make_accumulator(self._call("AVG(x)")), Avg)
        assert isinstance(make_accumulator(self._call("MIN(x)")), Extreme)
        assert isinstance(make_accumulator(self._call("MAX(x)")), Extreme)

    def test_wrong_arity_rejected(self):
        with pytest.raises(SqlPlanError):
            make_accumulator(self._call("SUM(a, b)"))
        with pytest.raises(SqlPlanError):
            make_accumulator(self._call("MIN(*)"))
        with pytest.raises(SqlPlanError):
            make_accumulator(self._call("COUNT(a, b)"))

    def test_non_aggregate_rejected(self):
        with pytest.raises(SqlPlanError):
            make_accumulator(self._call("LOWER(x)"))
