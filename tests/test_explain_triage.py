"""Tests for explanation scoring, ranking and triage grading."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import ExplainError
from repro.explain import (
    ClinicalState,
    ExplanationContext,
    TriageThresholds,
    average_precision,
    build_index,
    candidate_truth,
    explanation_ranking,
    interpolated_precision,
    mine_template_weights,
    precision_recall_points,
    ranking_flags,
    support_ranking,
    triage_patterns,
)
from repro.mining.patterns import Pattern
from repro.policy.rule import Rule


def small_world():
    """A log where one exception rule is explainable and one is not."""
    state = ClinicalState(ticks_per_hour=1)
    state.add_treatment("dr_grey", "lab_results")
    state.set_shift("dr_grey", 0, 23)
    state.set_department("dr_grey", "cardiology")
    log = AuditLog()
    tick = 0
    for _ in range(10):
        tick += 1
        log.append(make_entry(tick, "dr_grey", "lab_results", "treatment",
                              "surgeon", AccessStatus.REGULAR))
    for _ in range(6):
        tick += 1
        log.append(make_entry(tick, "dr_grey", "lab_results", "case_review",
                              "surgeon", AccessStatus.EXCEPTION,
                              truth="practice"))
    for _ in range(6):
        tick += 1
        log.append(make_entry(tick, "lurker", "hiv_status", "telemarketing",
                              "clerk", AccessStatus.EXCEPTION,
                              truth="violation"))
    context = ExplanationContext(state, log)
    weights = mine_template_weights(log, context)
    index = build_index(log, context, weights)
    return log, index


GOOD = Pattern(
    rule=Rule.of(data="lab_results", purpose="case_review", authorized="surgeon"),
    support=6, distinct_users=1,
)
BAD = Pattern(
    rule=Rule.of(data="hiv_status", purpose="telemarketing", authorized="clerk"),
    support=6, distinct_users=1,
)
UNSEEN = Pattern(
    rule=Rule.of(data="ecg_strip", purpose="billing", authorized="clerk"),
    support=1, distinct_users=1,
)


def test_index_scores_explainable_rule_higher():
    _, index = small_world()
    assert index.strength(GOOD.rule) > index.strength(BAD.rule)
    assert index.support(GOOD.rule) == 6
    assert index.strength(UNSEEN.rule, 0.0) == 0.0


def test_candidate_truth_is_majority_of_supporting_entries():
    _, index = small_world()
    assert candidate_truth(index, GOOD) == "practice"
    assert candidate_truth(index, BAD) == "violation"
    assert candidate_truth(index, UNSEEN) == "unknown"


def test_explanation_ranking_puts_practice_first():
    _, index = small_world()
    ranked = explanation_ranking((BAD, GOOD), index)
    assert ranked[0] is GOOD
    flags = ranking_flags(ranked, index)
    assert flags == (True, False)


def test_support_ranking_is_support_ordered_and_stable():
    heavy = Pattern(rule=BAD.rule, support=50, distinct_users=2)
    ranked = support_ranking((GOOD, heavy))
    assert ranked[0] is heavy
    tied = support_ranking((GOOD, BAD))
    assert tied == (GOOD, BAD)


def test_triage_report_grades_and_counts():
    _, index = small_world()
    report = triage_patterns(
        (BAD, GOOD), index,
        TriageThresholds(auto_accept=0.6, review=0.3),
    )
    assert [c.verdict for c in report.candidates][0] == "adopt"
    assert report.candidates[0].truth == "practice"
    assert report.candidates[-1].verdict == "investigate"
    counts = report.counts()
    assert sum(counts.values()) == 2
    payload = report.to_dict()
    assert payload["counts"] == counts
    assert len(payload["candidates"]) == 2


def test_thresholds_validate():
    with pytest.raises(ExplainError):
        TriageThresholds(auto_accept=0.3, review=0.5)
    assert TriageThresholds().verdict(0.9) == "adopt"
    assert TriageThresholds().verdict(0.5) == "review"
    assert TriageThresholds().verdict(0.1) == "investigate"


def test_precision_recall_machinery():
    flags = (True, False, True, False)
    points = precision_recall_points(flags)
    assert points == ((0.5, 1.0), (0.5, 0.5), (1.0, 2 / 3), (1.0, 0.5))
    interpolated = interpolated_precision(points, (0.0, 0.5, 1.0))
    assert interpolated == (1.0, 1.0, 2 / 3)
    assert average_precision(flags) == pytest.approx((1.0 + 2 / 3) / 2)
    with pytest.raises(ExplainError):
        precision_recall_points((False, False))
    with pytest.raises(ExplainError):
        average_precision(())
