"""Property-based guarantees for explanation-triaged review.

Two invariants the online loop leans on:

- **Stable triage**: neither :func:`repro.explain.triage.\
explanation_ranking` nor the daemon's pre-sorted pending queue ever
reorders candidates of *equal* strength — the privacy officer's queue is
deterministic, not an artifact of sort internals.
- **Threshold composition**: an :class:`~repro.refine_daemon.gate.\
ExplanationGate` is a pure partition of the strength axis — every
candidate lands in exactly one of accept / reject / the inner gate, the
inner gate sees only the middle band, and stacking the gate over the
human queue or over an :class:`~repro.refine_daemon.gate.AutoAcceptGate`
changes *which* verdicts fire but never invents a fourth outcome.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DaemonError
from repro.explain.triage import explanation_ranking
from repro.mining.patterns import Pattern
from repro.policy.rule import Rule
from repro.refine_daemon.gate import (
    VERDICTS,
    AutoAcceptGate,
    ExplanationGate,
    QueueForReviewGate,
)

ROLES = ("nurse", "clerk", "doctor", "surgeon", "registrar", "auditor")


class MappingIndex:
    """A StrengthIndex backed by a plain dict (test double)."""

    def __init__(self, strengths: dict[Rule, float]) -> None:
        self._strengths = strengths

    def strength(self, rule: Rule, default: float = 0.0) -> float:
        return self._strengths.get(rule, default)


def make_patterns(supports: list[int]) -> list[Pattern]:
    """One distinct pattern per support value, insertion-ordered."""
    return [
        Pattern(
            rule=Rule.of(
                data="lab_results",
                purpose="treatment",
                authorized=ROLES[index % len(ROLES)] + f"_{index}",
            ),
            support=support,
            distinct_users=1 + support % 3,
        )
        for index, support in enumerate(supports)
    ]


strength_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@given(
    supports=st.lists(st.integers(min_value=1, max_value=50), max_size=12),
    strengths=st.lists(
        st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]), max_size=12
    ),
)
def test_equal_strength_candidates_keep_their_order(supports, strengths):
    """Ranking is stable: within a strength class, miner order survives."""
    patterns = make_patterns(supports)
    index = MappingIndex(
        {
            pattern.rule: strengths[i % len(strengths)] if strengths else 0.0
            for i, pattern in enumerate(patterns)
        }
    )
    ranked = explanation_ranking(tuple(patterns), index)
    by_strength: dict[float, list[int]] = {}
    original = {id(p): i for i, p in enumerate(patterns)}
    for pattern in ranked:
        by_strength.setdefault(index.strength(pattern.rule), []).append(
            original[id(pattern)]
        )
    for positions in by_strength.values():
        assert positions == sorted(positions)


@given(supports=st.lists(st.integers(min_value=1, max_value=50), max_size=12))
def test_all_equal_strength_is_the_identity_ranking(supports):
    """When every candidate ties, triage must not reorder anything."""
    patterns = make_patterns(supports)
    index = MappingIndex({pattern.rule: 0.5 for pattern in patterns})
    assert explanation_ranking(tuple(patterns), index) == tuple(patterns)


@given(
    supports=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=12
    ),
    values=st.lists(strength_values, min_size=1, max_size=12),
    auto_accept=strength_values,
    reject_fraction=strength_values,
    has_reject=st.booleans(),
)
def test_gate_partitions_the_strength_axis(
    supports, values, auto_accept, reject_fraction, has_reject
):
    """Every candidate gets exactly one verdict, decided by thresholds."""
    auto_reject = auto_accept * reject_fraction if has_reject else None
    patterns = make_patterns(supports)
    index = MappingIndex(
        {
            pattern.rule: values[i % len(values)]
            for i, pattern in enumerate(patterns)
        }
    )
    seen_by_inner = []

    class RecordingInner:
        def decide(self, pattern):
            seen_by_inner.append(pattern)
            return "pend"

    gate = ExplanationGate(
        index,
        auto_accept=auto_accept,
        auto_reject=auto_reject,
        inner=RecordingInner(),
    )
    for pattern in patterns:
        strength = gate.strength_of(pattern)
        verdict = gate.decide(pattern)
        assert verdict in VERDICTS
        if strength >= auto_accept:
            assert verdict == "accept"
        elif auto_reject is not None and strength <= auto_reject:
            assert verdict == "reject"
        else:
            assert verdict == "pend"
    # the inner gate saw exactly the middle band, in candidate order
    expected_middle = [
        pattern
        for pattern in patterns
        if gate.strength_of(pattern) < auto_accept
        and (auto_reject is None or gate.strength_of(pattern) > auto_reject)
    ]
    assert seen_by_inner == expected_middle


@given(
    supports=st.lists(
        st.integers(min_value=1, max_value=50), min_size=1, max_size=12
    ),
    values=st.lists(strength_values, min_size=1, max_size=12),
)
def test_gate_composes_with_auto_accept_gate(supports, values):
    """With an AutoAcceptGate inner, the middle band follows *its* rules."""
    patterns = make_patterns(supports)
    index = MappingIndex(
        {
            pattern.rule: values[i % len(values)]
            for i, pattern in enumerate(patterns)
        }
    )
    inner = AutoAcceptGate(min_support=10, min_distinct_users=2)
    gate = ExplanationGate(index, auto_accept=0.9, inner=inner)
    for pattern in patterns:
        verdict = gate.decide(pattern)
        if gate.strength_of(pattern) >= 0.9:
            assert verdict == "accept"
        else:
            assert verdict == inner.decide(pattern)


@given(
    auto_accept=strength_values,
    auto_reject=strength_values,
)
def test_gate_rejects_inverted_thresholds(auto_accept, auto_reject):
    """auto_reject above auto_accept is a configuration error, always."""
    if auto_reject <= auto_accept:
        ExplanationGate(MappingIndex({}), auto_accept, auto_reject)
        return
    try:
        ExplanationGate(MappingIndex({}), auto_accept, auto_reject)
    except DaemonError:
        return
    raise AssertionError("inverted thresholds must raise DaemonError")


def test_default_inner_is_the_human_queue():
    gate = ExplanationGate(MappingIndex({}))
    assert isinstance(gate.inner, QueueForReviewGate)
