"""Tests pinning the E1/E2 reproductions to the paper's numbers."""

from __future__ import annotations

import pytest

from repro.experiments.paper import reproduce_figure3, reproduce_table1
from repro.policy.rule import Rule


class TestFigure3:
    def test_headline_numbers(self):
        result = reproduce_figure3()
        assert result.store_range_size == 8
        assert result.audit_range_size == 6
        assert result.overlap_size == 3
        assert result.coverage == pytest.approx(0.5)

    def test_gap_analysis_covers_all_three_exceptions(self):
        result = reproduce_figure3()
        assert result.gaps.explained_count == 3
        assert result.gaps.unexplained == ()


class TestTable1:
    def test_coverage_before(self):
        result = reproduce_table1()
        assert result.entry_coverage_before.ratio == pytest.approx(0.3)
        assert result.set_coverage_before.ratio == pytest.approx(0.5)

    def test_filter_keeps_seven_entries(self):
        assert reproduce_table1().practice_size == 7

    def test_single_pattern_with_paper_evidence(self):
        result = reproduce_table1()
        assert len(result.patterns) == 1
        pattern = result.patterns[0]
        assert pattern.rule == Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        )
        assert pattern.support == 5
        assert pattern.distinct_users == 3
        assert result.useful_patterns == result.patterns  # nothing pruned

    def test_coverage_after_adoption(self):
        result = reproduce_table1()
        assert result.entry_coverage_after.ratio == pytest.approx(0.8)
        assert result.set_coverage_after.ratio == pytest.approx(4 / 6)

    def test_refinement_improves_both_semantics(self):
        result = reproduce_table1()
        assert result.entry_coverage_after.ratio > result.entry_coverage_before.ratio
        assert result.set_coverage_after.ratio > result.set_coverage_before.ratio
