"""Unit tests for sqlmini heap tables and views."""

from __future__ import annotations

import pytest

from repro.sqlmini.errors import SqlCatalogError, SqlTypeError
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.table import Table, ViewTable
from repro.sqlmini.types import SqlType


@pytest.fixture()
def table() -> Table:
    schema = TableSchema(
        "people",
        (
            Column("id", SqlType.INTEGER, nullable=False),
            Column("name", SqlType.TEXT),
            Column("age", SqlType.INTEGER),
        ),
    )
    t = Table(schema)
    t.insert((1, "alice", 30))
    t.insert((2, "bob", 25))
    t.insert((3, "alice", 41))
    return t


class TestInsertScan:
    def test_len_and_scan_order(self, table):
        assert len(table) == 3
        assert [row[0] for row in table.scan()] == [1, 2, 3]

    def test_insert_validates(self, table):
        with pytest.raises(SqlTypeError):
            table.insert((4, "eve", "old"))

    def test_insert_mapping(self, table):
        table.insert_mapping({"id": 4, "name": "eve"})
        assert table.rows()[-1] == (4, "eve", None)

    def test_insert_many(self, table):
        assert table.insert_many([(4, "x", 1), (5, "y", 2)]) == 2
        assert len(table) == 5

    def test_column_values(self, table):
        assert table.column_values("name") == ["alice", "bob", "alice"]


class TestIndexes:
    def test_lookup_without_index_scans(self, table):
        rows = list(table.lookup("name", "alice"))
        assert [row[0] for row in rows] == [1, 3]

    def test_lookup_with_index(self, table):
        table.create_index("name")
        assert table.has_index("name")
        rows = list(table.lookup("name", "alice"))
        assert [row[0] for row in rows] == [1, 3]

    def test_index_maintained_on_insert(self, table):
        table.create_index("name")
        table.insert((4, "alice", 50))
        assert [row[0] for row in table.lookup("name", "alice")] == [1, 3, 4]

    def test_lookup_null_matches_nothing(self, table):
        table.insert((4, None, None))
        assert list(table.lookup("name", None)) == []

    def test_create_index_on_missing_column(self, table):
        with pytest.raises(SqlCatalogError):
            table.create_index("bogus")

    def test_index_rebuilt_after_delete(self, table):
        table.create_index("name")
        table.delete_where(lambda row: row[0] == 1)
        assert [row[0] for row in table.lookup("name", "alice")] == [3]


class TestDeleteClear:
    def test_delete_where(self, table):
        removed = table.delete_where(lambda row: row[2] is not None and row[2] > 28)
        assert removed == 2
        assert len(table) == 1

    def test_delete_nothing(self, table):
        assert table.delete_where(lambda row: False) == 0

    def test_clear_keeps_schema(self, table):
        table.create_index("name")
        table.clear()
        assert len(table) == 0
        table.insert((9, "zed", 1))
        assert [row[0] for row in table.lookup("name", "zed")] == [9]


class TestViewTable:
    def _view(self, rows):
        schema = TableSchema("v", (Column("a", SqlType.INTEGER),))
        return ViewTable(schema, lambda: iter(rows))

    def test_scan_reflects_producer(self):
        backing = [(1,), (2,)]
        view = self._view(backing)
        assert len(view) == 2
        backing.append((3,))
        assert len(view) == 3  # virtual: sees new data

    def test_lookup(self):
        view = self._view([(1,), (2,), (1,)])
        assert list(view.lookup("a", 1)) == [(1,), (1,)]
        assert list(view.lookup("a", None)) == []

    def test_read_only(self):
        view = self._view([])
        with pytest.raises(SqlCatalogError):
            view.insert((1,))

    def test_never_has_index(self):
        assert self._view([]).has_index("a") is False
