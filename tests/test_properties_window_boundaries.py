"""Property tests: window boundary semantics, in memory and on disk.

The parallel sharder slices the trail into contiguous pieces and relies
on both log shapes agreeing about half-open windows — ``start <= time <
end`` — *especially* when equal timestamps straddle a segment boundary
(the store's sparse time index must not skip or duplicate the ties).
``AuditLog.window`` is the executable model; ``DurableAuditLog.window``
(backed by ``AuditStore.scan_window`` and its index seeks) must match it
entry for entry on arbitrary logs and arbitrary window edges.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.store.durable import copy_to_durable
from repro.store.store import StoreConfig

users = st.sampled_from(["ann", "bob", "cmd"])
data_values = st.sampled_from(["referral", "labs"])


@st.composite
def clustered_logs(draw, max_size: int = 30) -> AuditLog:
    """Logs with heavy timestamp ties (steps of 0 are the common draw)."""
    count = draw(st.integers(min_value=1, max_value=max_size))
    log = AuditLog()
    tick = draw(st.integers(min_value=0, max_value=4))
    for _ in range(count):
        tick += draw(st.sampled_from([0, 0, 0, 1, 2]))
        log.append(
            make_entry(
                tick,
                draw(users),
                draw(data_values),
                "treatment",
                "nurse",
                status=draw(
                    st.sampled_from([AccessStatus.REGULAR, AccessStatus.EXCEPTION])
                ),
            )
        )
    return log


def _key(entry):
    return (entry.time, entry.user, entry.data, entry.purpose, entry.authorized)


@given(
    log=clustered_logs(),
    start=st.integers(min_value=-2, max_value=20),
    span=st.integers(min_value=0, max_value=20),
    segment_entries=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=120, deadline=None)
def test_durable_window_matches_in_memory_model(log, start, span, segment_entries):
    end = start + span
    expected = [_key(e) for e in log.window(start, end)]
    with tempfile.TemporaryDirectory() as tmp:
        durable = copy_to_durable(
            log,
            Path(tmp) / "store",
            config=StoreConfig(max_segment_entries=segment_entries),
        )
        try:
            via_window = [_key(e) for e in durable.window(start, end)]
            via_scan = [_key(e) for e in durable.store.scan_window(start, end)]
        finally:
            durable.close()
    assert via_window == expected
    assert via_scan == expected


def test_equal_timestamps_straddling_a_segment_boundary():
    """The pinned concrete case: one timestamp spans two segments."""
    log = AuditLog()
    for user in ("a", "b"):
        log.append(make_entry(5, user, "referral", "treatment", "nurse"))
    for user in ("c", "d", "e"):
        log.append(make_entry(7, user, "referral", "treatment", "nurse"))
    log.append(make_entry(9, "f", "referral", "treatment", "nurse"))
    with tempfile.TemporaryDirectory() as tmp:
        # two entries per segment: the three t=7 entries straddle
        # the seal between segments 2 and 3
        durable = copy_to_durable(
            log, Path(tmp) / "store", config=StoreConfig(max_segment_entries=2)
        )
        try:
            assert durable.stats().sealed_segments >= 2
            for start, end, expected_users in [
                (7, 8, ["c", "d", "e"]),   # exactly the straddling tie
                (5, 7, ["a", "b"]),        # end is exclusive at the tie
                (7, 9, ["c", "d", "e"]),   # end excludes the last entry
                (6, 10, ["c", "d", "e", "f"]),
                (8, 9, []),
                (9, 9, []),                # empty half-open window
            ]:
                got = [e.user for e in durable.window(start, end)]
                model = [e.user for e in log.window(start, end)]
                assert got == model == expected_users, (start, end)
        finally:
            durable.close()
