"""Tests for the closed refinement loop (Figure 2 dynamics)."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import RefinementError
from repro.mining.patterns import MiningConfig
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.refinement.engine import RefinementConfig
from repro.refinement.loop import RefinementLoop
from repro.refinement.review import AcceptAll, RejectAll, ThresholdReview
from repro.vocab.builtin import healthcare_vocabulary


class _ScriptedEnvironment:
    """Deterministic environment: one recurring undocumented practice."""

    def __init__(self) -> None:
        self.tick = 1

    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        covered = Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        ) in store
        log = AuditLog(name=f"round{round_index}")
        for user in ("a", "b", "c", "a", "b", "c"):
            log.append(
                make_entry(
                    self.tick, user, "referral", "registration", "nurse",
                    status=AccessStatus.REGULAR if covered else AccessStatus.EXCEPTION,
                )
            )
            self.tick += 1
        # one sanctioned access so exception_rate is defined either way
        log.append(
            make_entry(self.tick, "d", "prescription", "treatment", "nurse",
                       status=AccessStatus.REGULAR)
        )
        self.tick += 1
        return log


def _store() -> PolicyStore:
    store = PolicyStore()
    store.add(Rule.of(data="prescription", purpose="treatment", authorized="nurse"))
    return store


def _loop(review, **kwargs) -> RefinementLoop:
    return RefinementLoop(
        environment=_ScriptedEnvironment(),
        store=_store(),
        vocabulary=healthcare_vocabulary(),
        review=review,
        config=RefinementConfig(mining=MiningConfig(min_support=5)),
        **kwargs,
    )


class TestLoopDynamics:
    def test_accepted_rule_stops_exception_traffic(self):
        result = _loop(AcceptAll()).run(3)
        rates = result.exception_rate_series()
        # round 0 is all exceptions; once the rule lands, traffic is regular
        assert rates[0] == pytest.approx(6 / 7)
        assert rates[1] == 0.0
        assert rates[2] == 0.0

    def test_coverage_improves_after_acceptance(self):
        result = _loop(AcceptAll()).run(2)
        first = result.rounds[0]
        assert first.coverage_after > first.coverage_before
        assert first.rules_accepted == 1
        assert first.store_size_after == 2

    def test_reject_all_keeps_exceptions_flowing(self):
        result = _loop(RejectAll()).run(3)
        assert all(rate == pytest.approx(6 / 7) for rate in result.exception_rate_series())
        assert all(r.rules_accepted == 0 for r in result.rounds)
        # the same useful pattern keeps being proposed every round
        assert all(r.patterns_useful == 1 for r in result.rounds)

    def test_threshold_review_gates_acceptance(self):
        # 6 occurrences, 3 users per round; threshold demands 12 support,
        # reached once two rounds accumulate (cumulative refinement)
        loop = _loop(ThresholdReview(min_support=12, min_distinct_users=3))
        result = loop.run(3)
        accepted_in = [r.round_index for r in result.rounds if r.rules_accepted]
        assert accepted_in == [1]

    def test_window_mode_refines_on_round_only(self):
        loop = _loop(
            ThresholdReview(min_support=12, min_distinct_users=3),
            refine_on_cumulative=False,
        )
        result = loop.run(3)
        # per-round windows never reach 12 occurrences
        assert all(r.rules_accepted == 0 for r in result.rounds)

    def test_cumulative_log_collects_all_rounds(self):
        result = _loop(AcceptAll()).run(3)
        assert len(result.cumulative_log) == 21

    def test_round_reports_capture_refinement_result(self):
        result = _loop(AcceptAll()).run(1)
        report = result.rounds[0]
        assert report.entries == 7
        assert report.patterns_mined == 1
        assert report.refinement.useful_patterns[0].support == 6

    def test_coverage_series_shape(self):
        result = _loop(AcceptAll()).run(3)
        series = result.coverage_series()
        assert len(series) == 3
        assert series[0] == 1.0  # both distinct rules covered after round 0


class TestValidation:
    def test_zero_rounds_rejected(self):
        with pytest.raises(RefinementError):
            _loop(AcceptAll()).run(0)

    def test_empty_environment_rejected(self):
        class Empty:
            def simulate_round(self, round_index, store):
                return AuditLog()

        loop = RefinementLoop(
            environment=Empty(),
            store=_store(),
            vocabulary=healthcare_vocabulary(),
            review=AcceptAll(),
        )
        with pytest.raises(RefinementError):
            loop.run(1)
