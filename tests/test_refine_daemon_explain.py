"""ExplanationGate wired into the online refinement daemon."""

from __future__ import annotations

import pytest

from repro.corpus import CorpusSpec, generate_corpus, simulate_corpus_trace
from repro.errors import DaemonError
from repro.explain import ExplanationContext, build_index, mine_template_weights
from repro.mining.patterns import MiningConfig
from repro.refine_daemon import (
    AutoAcceptGate,
    DaemonConfig,
    ExplanationGate,
    RefineDaemon,
    StorePolicyTarget,
    load_state,
)
from repro.store.durable import DurableAuditLog

SPEC = CorpusSpec(seed=11, departments=3, staff_per_role=2, patients=60,
                  rounds=2, accesses_per_round=1500, protocol_rules=10)


def corpus_world():
    corpus = generate_corpus(SPEC)
    trace = simulate_corpus_trace(corpus)
    context = ExplanationContext(trace.state, trace.log)
    weights = mine_template_weights(trace.log, context)
    index = build_index(trace.log, context, weights)
    return corpus, trace, index


def drive(tmp_path, corpus, trace, gate):
    log = DurableAuditLog(tmp_path / "trail", name="online")
    daemon = RefineDaemon(
        log, StorePolicyTarget(corpus.store), corpus.vocabulary, gate,
        DaemonConfig(mining=MiningConfig(min_support=5, min_distinct_users=2)),
    )
    log.extend(trace.log)
    log.seal_active()
    daemon.poll()
    log.close()
    return load_state(tmp_path / "trail")


def test_pending_queue_is_pre_sorted_by_strength(tmp_path):
    corpus, trace, index = corpus_world()
    state = drive(tmp_path, corpus, trace, ExplanationGate(index))
    assert state.pending
    strengths = [candidate.strength for candidate in state.pending]
    assert all(value is not None for value in strengths)
    assert strengths == sorted(strengths, reverse=True)


def test_auto_bands_resolve_clear_candidates(tmp_path):
    corpus, trace, index = corpus_world()
    before = len(corpus.store.policy())
    gate = ExplanationGate(index, auto_accept=0.7, auto_reject=0.1)
    state = drive(tmp_path, corpus, trace, gate)
    assert state.accepted
    assert all(c.strength >= 0.7 for c in state.accepted)
    assert all(c.decided_by == "auto-gate" for c in state.accepted)
    assert all(0.1 < (c.strength or 0.0) < 0.7 for c in state.pending)
    assert len(corpus.store.policy()) == before + len(state.accepted)


def test_strength_survives_the_state_file(tmp_path):
    corpus, trace, index = corpus_world()
    state = drive(tmp_path, corpus, trace, ExplanationGate(index))
    reloaded = load_state(tmp_path / "trail")
    assert [c.strength for c in reloaded.pending] == [
        c.strength for c in state.pending
    ]


def test_plain_gates_leave_strength_unset(tmp_path):
    corpus, trace, _ = corpus_world()
    state = drive(tmp_path, corpus, trace, AutoAcceptGate())
    ledger = state.pending + state.accepted + state.rejected
    assert ledger
    assert all(candidate.strength is None for candidate in ledger)
    for candidate in ledger:
        assert "strength" not in candidate.to_dict()


def test_gate_threshold_validation():
    corpus, trace, index = corpus_world()
    with pytest.raises(DaemonError):
        ExplanationGate(index, auto_accept=1.5)
    with pytest.raises(DaemonError):
        ExplanationGate(index, auto_accept=0.5, auto_reject=0.6)
