"""Tests for the E4/E5/E9 sweep harnesses."""

from __future__ import annotations

import random

import pytest

from repro.experiments.harness import clinical_db_setup, standard_loop_setup
from repro.experiments.reporting import format_series, format_table
from repro.experiments.sweeps import (
    mining_comparison,
    planted_correlation_log,
    threshold_sweep,
    violation_sweep,
)
from repro.policy.store import PolicyStore
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import build_hospital


@pytest.fixture(scope="module")
def synthetic_setup():
    setup = standard_loop_setup(accesses_per_round=2000, seed=11)
    log = setup.environment.simulate_round(0, setup.store)
    workflow = set(setup.hospital.practice_rules())
    return log, workflow


class TestThresholdSweep:
    def test_lower_f_finds_more_patterns(self, synthetic_setup):
        log, workflow = synthetic_setup
        points = threshold_sweep(
            log, workflow, support_values=(2, 20), user_values=(2,)
        )
        low, high = points
        assert low.patterns_found >= high.patterns_found

    def test_recall_monotone_nonincreasing_in_f(self, synthetic_setup):
        log, workflow = synthetic_setup
        points = threshold_sweep(
            log, workflow, support_values=(2, 5, 10, 20), user_values=(2,)
        )
        recalls = [p.workflow_recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_user_condition_screens_snooper(self, synthetic_setup):
        log, workflow = synthetic_setup
        loose, strict = threshold_sweep(
            log, workflow, support_values=(5,), user_values=(1, 2)
        )
        # with c=1 the single-user violation patterns are mined too
        assert loose.violation_found > 0
        assert strict.violation_found == 0

    def test_counts_partition_patterns(self, synthetic_setup):
        log, workflow = synthetic_setup
        for point in threshold_sweep(log, workflow, (2, 5), (1, 2)):
            assert 0.0 <= point.workflow_recall <= 1.0
            assert (
                point.workflow_found + point.violation_found + point.noise_found
                == point.patterns_found
            )


class TestMiningComparison:
    def test_planted_pair_split(self):
        comparison = mining_comparison(planted_correlation_log())
        assert comparison.planted_pair_found_by_sql is False
        assert comparison.planted_pair_found_by_apriori is True

    def test_runtimes_recorded(self):
        comparison = mining_comparison(planted_correlation_log())
        assert comparison.sql_seconds > 0
        assert comparison.apriori_seconds > 0

    def test_planted_log_shape(self):
        log = planted_correlation_log(per_role_support=4, roles=("a_role", "b_role"))
        pair_entries = [
            e for e in log if e.data == "referral" and e.purpose == "registration"
        ]
        assert len(pair_entries) == 8


class TestViolationSweep:
    def test_recall_reported_per_rate(self, vocabulary):
        hospital = build_hospital(vocabulary, departments=1, staff_per_role=3, seed=2)

        def make_environment(rate):
            env = SyntheticHospitalEnvironment(
                hospital,
                WorkloadConfig(accesses_per_round=1500, violation_rate=rate, seed=2),
            )
            store = hospital.documented_store(0.5, random.Random(2))
            return env, store

        points = violation_sweep(make_environment, rates=(0.05, 0.15))
        assert len(points) == 2
        for point in points:
            assert point.labelled_violations > 0
            assert point.recall > 0.5  # the snooper is caught


class TestClinicalDbSetup:
    def test_builds_enforceable_database(self):
        setup = clinical_db_setup(rows=50)
        result = setup.control_center.run(
            "n1", "nurse", "treatment", "SELECT prescription FROM patients LIMIT 5"
        )
        assert len(result.result.rows) == 5
        assert result.categories_returned == ("prescription",)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 0.5], [22, "x"]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "0.5000" in text
        assert "22" in text

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_format_series(self):
        assert format_series("cov", [0.5, 0.75]) == "cov: [0.500, 0.750]"
