"""Differential property tests: bitset Range vs a frozenset reference.

The bitset backend re-encodes ranges as ID bitmasks (see DESIGN.md §7);
these tests are the contract that the re-encoding changed *nothing*
observable.  Hypothesis generates random vocabularies (random per-attribute
trees) and random composite policies, grounds them both through the real
:class:`~repro.policy.grounding.Range` and through a plain-frozenset
reference model, and asserts the two agree on every public operation:
``∩ ∪ − ⊆ ∈ ==``, cardinality, and the deterministic :meth:`Range.rules`
ordering.  Cross-interner combinations (bare ``Range`` literals, ranges
from different vocabularies) are exercised explicitly, since those take
the slow rule-level path instead of the bitwise one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.grounding import Grounder, Range
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary

_ATTRIBUTES = ("data", "purpose")


def _rule_sort_key(rule: Rule) -> tuple:
    return tuple((t.attr, t.value) for t in rule.terms)


@st.composite
def vocabularies(draw) -> Vocabulary:
    """A random two-attribute vocabulary with 1-3 branches of 1-4 leaves."""
    vocab = Vocabulary("prop-range")
    for attr in _ATTRIBUTES:
        tree = vocab.new_tree(attr)
        branches = draw(st.integers(min_value=1, max_value=3))
        for b in range(branches):
            leaves = draw(st.integers(min_value=1, max_value=4))
            tree.add_branch(
                f"{attr}_b{b}", [f"{attr}_b{b}_l{i}" for i in range(leaves)]
            )
    return vocab


def _node_strategy(vocab: Vocabulary, attr: str):
    return st.sampled_from(sorted(vocab.tree_for(attr)))


def _rules_strategy(vocab: Vocabulary):
    return st.builds(
        lambda d, p: Rule.of(data=d, purpose=p),
        _node_strategy(vocab, "data"),
        _node_strategy(vocab, "purpose"),
    )


@st.composite
def vocab_and_rule_lists(draw):
    """A vocabulary plus two random rule lists drawn from its node universe."""
    vocab = draw(vocabularies())
    rules = _rules_strategy(vocab)
    lists = st.lists(rules, min_size=0, max_size=6)
    return vocab, draw(lists), draw(lists)


def _model(vocab: Vocabulary, rules) -> frozenset:
    """The reference implementation: a plain frozenset of ground rules."""
    return frozenset(
        ground for rule in rules for ground in rule.ground_rules(vocab)
    )


class TestDifferentialAlgebra:
    @settings(max_examples=120, deadline=None)
    @given(vocab_and_rule_lists())
    def test_bitset_agrees_with_frozenset_model(self, payload):
        vocab, rules_a, rules_b = payload
        grounder = Grounder(vocab)
        range_a = grounder.range_of(rules_a)
        range_b = grounder.range_of(rules_b)
        model_a = _model(vocab, rules_a)
        model_b = _model(vocab, rules_b)

        assert frozenset(range_a) == model_a
        assert frozenset(range_b) == model_b
        assert range_a.cardinality == len(model_a)
        assert len(range_a) == len(model_a)

        assert frozenset(range_a & range_b) == model_a & model_b
        assert frozenset(range_a | range_b) == model_a | model_b
        assert frozenset(range_a - range_b) == model_a - model_b
        assert (range_a <= range_b) == (model_a <= model_b)
        assert (range_a == range_b) == (model_a == model_b)
        if model_a == model_b:
            assert hash(range_a) == hash(range_b)

    @settings(max_examples=60, deadline=None)
    @given(vocab_and_rule_lists())
    def test_membership_and_rules_ordering(self, payload):
        vocab, rules_a, rules_b = payload
        grounder = Grounder(vocab)
        range_a = grounder.range_of(rules_a)
        model_a = _model(vocab, rules_a)

        # membership agrees for rules inside and outside the range
        for ground in model_a:
            assert ground in range_a
        for ground in _model(vocab, rules_b) - model_a:
            assert ground not in range_a
        assert Rule.of(data="unseen_value", purpose="unseen_value") not in range_a

        # rules() returns exactly the model, in the documented sort order
        assert range_a.rules() == tuple(sorted(model_a, key=_rule_sort_key))

    @settings(max_examples=60, deadline=None)
    @given(vocab_and_rule_lists())
    def test_cross_interner_operations_agree(self, payload):
        """Bare Range literals use a different interner than the grounder's;
        mixed-interner algebra must agree with the model all the same."""
        vocab, rules_a, rules_b = payload
        grounder = Grounder(vocab)
        range_a = grounder.range_of(rules_a)
        model_a = _model(vocab, rules_a)
        model_b = _model(vocab, rules_b)
        literal_b = Range(model_b)  # literal interner, not the vocabulary's

        assert literal_b.interner is not range_a.interner
        assert frozenset(range_a & literal_b) == model_a & model_b
        assert frozenset(range_a | literal_b) == model_a | model_b
        assert frozenset(range_a - literal_b) == model_a - model_b
        assert frozenset(literal_b - range_a) == model_b - model_a
        assert (range_a <= literal_b) == (model_a <= model_b)
        assert (literal_b <= range_a) == (model_b <= model_a)
        assert (range_a == literal_b) == (model_a == model_b)
        assert (literal_b == range_a) == (model_b == model_a)

    @settings(max_examples=40, deadline=None)
    @given(vocab_and_rule_lists())
    def test_empty_and_identity_laws(self, payload):
        vocab, rules_a, _ = payload
        grounder = Grounder(vocab)
        range_a = grounder.range_of(rules_a)
        empty = Range()

        assert (range_a & empty).cardinality == 0
        assert frozenset(range_a | empty) == frozenset(range_a)
        assert frozenset(range_a - empty) == frozenset(range_a)
        assert empty <= range_a
        assert (range_a <= empty) == (range_a.cardinality == 0)
        assert range_a | range_a == range_a
        assert range_a & range_a == range_a
        assert (range_a - range_a).cardinality == 0
