"""Unit tests for the patient consent store."""

from __future__ import annotations

import pytest

from repro.errors import ConsentError
from repro.hdb.consent import ConsentStore


@pytest.fixture()
def consent(vocabulary) -> ConsentStore:
    return ConsentStore(vocabulary, default_allowed=True)


class TestDefaults:
    def test_default_allows(self, consent):
        decision = consent.decide("p1", "address", "billing")
        assert decision.allowed is True
        assert decision.choice is None

    def test_opt_in_default_false(self, vocabulary):
        strict = ConsentStore(vocabulary, default_allowed=False)
        assert not strict.permits("p1", "address", "billing")

    def test_patient_id_validated(self, consent):
        with pytest.raises(ConsentError):
            consent.record("  ", "billing", allowed=False)


class TestDirectives:
    def test_whole_purpose_opt_out(self, consent):
        consent.opt_out("p1", "secondary_use")
        assert not consent.permits("p1", "prescription", "telemarketing")
        assert not consent.permits("p1", "prescription", "research")
        # other purposes unaffected
        assert consent.permits("p1", "prescription", "treatment")

    def test_whole_purpose_opt_out_is_row_level(self, consent):
        consent.opt_out("p1", "research")
        decision = consent.decide("p1", "prescription", "research")
        assert decision.row_level is True

    def test_data_specific_opt_out_is_cell_level(self, consent):
        consent.opt_out("p1", "research", data="psychiatry")
        decision = consent.decide("p1", "psychiatry", "research")
        assert not decision.allowed
        assert decision.row_level is False
        # other data categories still allowed for that purpose
        assert consent.permits("p1", "prescription", "research")

    def test_hierarchy_aware_purpose(self, consent):
        consent.opt_out("p1", "operations")
        assert not consent.permits("p1", "address", "billing")
        assert not consent.permits("p1", "address", "registration")

    def test_hierarchy_aware_data(self, consent):
        consent.opt_out("p1", "billing", data="demographic")
        assert not consent.permits("p1", "address", "billing")
        assert not consent.permits("p1", "gender", "billing")
        assert consent.permits("p1", "insurance", "billing")

    def test_choices_isolated_per_patient(self, consent):
        consent.opt_out("p1", "research")
        assert consent.permits("p2", "prescription", "research")

    def test_choices_for(self, consent):
        consent.opt_out("p1", "research")
        consent.opt_in("p1", "treatment")
        assert len(consent.choices_for("p1")) == 2
        assert consent.choices_for("unknown") == ()


class TestSpecificityResolution:
    def test_specific_opt_in_overrides_broad_opt_out(self, consent):
        consent.opt_out("p1", "secondary_use")
        consent.opt_in("p1", "research", data="lab_results")
        assert consent.permits("p1", "lab_results", "research")
        assert not consent.permits("p1", "lab_results", "telemarketing")

    def test_specific_opt_out_overrides_broad_opt_in(self, consent):
        consent.opt_in("p1", "operations")
        consent.opt_out("p1", "billing", data="address")
        assert not consent.permits("p1", "address", "billing")
        assert consent.permits("p1", "name", "billing")

    def test_deny_wins_exact_tie(self, consent):
        consent.opt_in("p1", "billing", data="address")
        consent.opt_out("p1", "billing", data="address")
        assert not consent.permits("p1", "address", "billing")

    def test_deeper_data_wins_over_deeper_purpose(self, consent):
        # data depth is the primary specificity axis
        consent.opt_out("p1", "operations", data="address")
        consent.opt_in("p1", "billing")
        assert not consent.permits("p1", "address", "billing")
