"""Unit tests for the patient consent store."""

from __future__ import annotations

import pytest

from repro.errors import ConsentError
from repro.hdb.consent import ConsentStore


@pytest.fixture()
def consent(vocabulary) -> ConsentStore:
    return ConsentStore(vocabulary, default_allowed=True)


class TestDefaults:
    def test_default_allows(self, consent):
        decision = consent.decide("p1", "address", "billing")
        assert decision.allowed is True
        assert decision.choice is None

    def test_opt_in_default_false(self, vocabulary):
        strict = ConsentStore(vocabulary, default_allowed=False)
        assert not strict.permits("p1", "address", "billing")

    def test_patient_id_validated(self, consent):
        with pytest.raises(ConsentError):
            consent.record("  ", "billing", allowed=False)


class TestDirectives:
    def test_whole_purpose_opt_out(self, consent):
        consent.opt_out("p1", "secondary_use")
        assert not consent.permits("p1", "prescription", "telemarketing")
        assert not consent.permits("p1", "prescription", "research")
        # other purposes unaffected
        assert consent.permits("p1", "prescription", "treatment")

    def test_whole_purpose_opt_out_is_row_level(self, consent):
        consent.opt_out("p1", "research")
        decision = consent.decide("p1", "prescription", "research")
        assert decision.row_level is True

    def test_data_specific_opt_out_is_cell_level(self, consent):
        consent.opt_out("p1", "research", data="psychiatry")
        decision = consent.decide("p1", "psychiatry", "research")
        assert not decision.allowed
        assert decision.row_level is False
        # other data categories still allowed for that purpose
        assert consent.permits("p1", "prescription", "research")

    def test_hierarchy_aware_purpose(self, consent):
        consent.opt_out("p1", "operations")
        assert not consent.permits("p1", "address", "billing")
        assert not consent.permits("p1", "address", "registration")

    def test_hierarchy_aware_data(self, consent):
        consent.opt_out("p1", "billing", data="demographic")
        assert not consent.permits("p1", "address", "billing")
        assert not consent.permits("p1", "gender", "billing")
        assert consent.permits("p1", "insurance", "billing")

    def test_choices_isolated_per_patient(self, consent):
        consent.opt_out("p1", "research")
        assert consent.permits("p2", "prescription", "research")

    def test_choices_for(self, consent):
        consent.opt_out("p1", "research")
        consent.opt_in("p1", "treatment")
        assert len(consent.choices_for("p1")) == 2
        assert consent.choices_for("unknown") == ()


class TestSpecificityResolution:
    def test_specific_opt_in_overrides_broad_opt_out(self, consent):
        consent.opt_out("p1", "secondary_use")
        consent.opt_in("p1", "research", data="lab_results")
        assert consent.permits("p1", "lab_results", "research")
        assert not consent.permits("p1", "lab_results", "telemarketing")

    def test_specific_opt_out_overrides_broad_opt_in(self, consent):
        consent.opt_in("p1", "operations")
        consent.opt_out("p1", "billing", data="address")
        assert not consent.permits("p1", "address", "billing")
        assert consent.permits("p1", "name", "billing")

    def test_deny_wins_exact_tie(self, consent):
        consent.opt_in("p1", "billing", data="address")
        consent.opt_out("p1", "billing", data="address")
        assert not consent.permits("p1", "address", "billing")

    def test_deeper_data_wins_over_deeper_purpose(self, consent):
        # data depth is the primary specificity axis
        consent.opt_out("p1", "operations", data="address")
        consent.opt_in("p1", "billing")
        assert not consent.permits("p1", "address", "billing")


class TestAtomicSnapshots:
    """Copy-on-write swap semantics the decision service leans on."""

    def test_version_bumps_on_every_record(self, consent):
        assert consent.version == 0
        consent.opt_out("p1", "research")
        assert consent.version == 1
        consent.opt_in("p1", "research", data="referral")
        assert consent.version == 2

    def test_choices_for_returns_a_stable_snapshot(self, consent):
        consent.opt_out("p1", "research")
        before = consent.choices_for("p1")
        consent.opt_out("p1", "billing")
        assert len(before) == 1  # the held tuple did not grow
        assert len(consent.choices_for("p1")) == 2

    def test_record_replaces_the_table_not_the_rows(self, consent):
        consent.opt_out("p1", "research")
        table_before = consent._choices
        consent.opt_out("p2", "research")
        assert consent._choices is not table_before
        assert table_before.keys() == {"p1"}

    def test_clone_is_independent_and_same_version(self, consent):
        consent.opt_out("p1", "research")
        twin = consent.clone()
        assert twin.version == consent.version
        assert twin.permits("p1", "prescription", "research") is False
        twin.opt_out("p2", "billing")
        assert consent.choices_for("p2") == ()
        assert consent.version == 1
        assert twin.version == 2

    def test_clone_preserves_default(self, vocabulary):
        strict = ConsentStore(vocabulary, default_allowed=False)
        assert strict.clone().default_allowed is False

    def test_mid_update_reader_sees_old_or_new_never_mixed(self, consent):
        # a reader that resolved against the pre-swap table still gets a
        # coherent answer built entirely from that table
        consent.opt_out("p1", "secondary_use")
        decision_before = consent.decide("p1", "prescription", "research")
        consent.opt_in("p1", "research", data="prescription")
        decision_after = consent.decide("p1", "prescription", "research")
        assert decision_before.allowed is False
        assert decision_after.allowed is True  # more specific choice wins
