"""Shared fixtures: the paper's vocabulary, policies and audit trail."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog
from repro.policy.policy import Policy
from repro.policy.store import PolicyStore
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.vocabulary import Vocabulary
from repro.workload.scenarios import (
    figure3_audit_policy,
    figure3_policy,
    figure3_policy_store,
    table1_audit_log,
)


@pytest.fixture()
def vocabulary() -> Vocabulary:
    """The Figure 1 healthcare vocabulary."""
    return healthcare_vocabulary()


@pytest.fixture()
def strict_vocabulary() -> Vocabulary:
    return healthcare_vocabulary(strict=True)


@pytest.fixture()
def fig3_store() -> PolicyStore:
    """Figure 3(a) as a policy store."""
    return figure3_policy_store()


@pytest.fixture()
def fig3_policy() -> Policy:
    """Figure 3(a) as a plain policy."""
    return figure3_policy()


@pytest.fixture()
def fig3_audit() -> Policy:
    """Figure 3(b) as the audit-log policy."""
    return figure3_audit_policy()


@pytest.fixture()
def table1_log() -> AuditLog:
    """The Section 5 audit trail (t1..t10)."""
    return table1_audit_log()
