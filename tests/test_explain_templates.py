"""Tests for clinical-state relations, explanation templates and weights."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import ExplainError
from repro.explain import (
    ClinicalState,
    DEFAULT_TEMPLATES,
    ExplanationContext,
    hour_in_shift,
    mine_template_weights,
    template_by_name,
)


def make_state(ticks_per_hour: int = 1) -> ClinicalState:
    state = ClinicalState(ticks_per_hour=ticks_per_hour)
    state.add_treatment("dr_grey", "lab_results")
    state.add_assignment("nurse_kim", "vital_signs")
    state.add_referral("dr_yang", "imaging_report")
    state.set_shift("dr_grey", 7, 15)
    state.set_shift("night_nurse", 23, 7)
    state.add_role_purpose("surgeon", "surgery_planning")
    state.set_department("dr_grey", "cardiology")
    return state


def entry_for(user="dr_grey", data="lab_results", purpose="treatment",
              role="surgeon", time=8):
    return make_entry(time, user, data, purpose, role, AccessStatus.EXCEPTION)


def test_hour_in_shift_wraps_midnight():
    assert hour_in_shift(23, 7, 23)
    assert hour_in_shift(23, 7, 2)
    assert not hour_in_shift(23, 7, 12)
    assert hour_in_shift(7, 15, 7)
    assert not hour_in_shift(7, 15, 15)
    with pytest.raises(ExplainError):
        hour_in_shift(7, 15, 24)


def test_relation_predicates():
    state = make_state()
    context = ExplanationContext(state)
    assert template_by_name("treatment_relationship").fires(entry_for(), context)
    assert not template_by_name("treatment_relationship").fires(
        entry_for(user="nurse_kim"), context
    )
    assert template_by_name("work_assignment").fires(
        entry_for(user="nurse_kim", data="vital_signs"), context
    )
    assert template_by_name("referral_received").fires(
        entry_for(user="dr_yang", data="imaging_report"), context
    )
    assert template_by_name("role_purpose_affinity").fires(
        entry_for(role="surgeon", purpose="surgery_planning"), context
    )


def test_on_shift_uses_tick_hours():
    state = make_state(ticks_per_hour=10)
    context = ExplanationContext(state)
    on_shift = template_by_name("on_shift")
    # tick 80 → hour 8, inside dr_grey's 7-15 shift
    assert on_shift.fires(entry_for(time=80), context)
    # tick 200 → hour 20, outside it
    assert not on_shift.fires(entry_for(time=200), context)
    # the night shift wraps midnight
    assert on_shift.fires(entry_for(user="night_nurse", time=10), context)


def test_department_echo_uses_regular_traffic():
    state = make_state()
    log = AuditLog()
    log.append(make_entry(1, "dr_grey", "ecg_strip", "treatment", "surgeon",
                          AccessStatus.REGULAR))
    context = ExplanationContext(state, log)
    echo = template_by_name("department_data_echo")
    assert echo.fires(entry_for(data="ecg_strip", time=2), context)
    assert not echo.fires(entry_for(data="hiv_status", time=2), context)


def test_template_by_name_rejects_unknown():
    with pytest.raises(ExplainError):
        template_by_name("phase_of_moon")


def test_mined_weights_separate_regular_from_exception_behaviour():
    state = make_state()
    log = AuditLog()
    # regular traffic: treated patients (log time must be non-decreasing)
    for tick in range(1, 21):
        log.append(make_entry(tick, "dr_grey", "lab_results",
                              "treatment", "surgeon", AccessStatus.REGULAR))
    # exception traffic: a stranger with no relations
    for tick in range(21, 41):
        log.append(make_entry(tick, "lurker", "hiv_status", "telemarketing",
                              "clerk", AccessStatus.EXCEPTION))
    context = ExplanationContext(state, log)
    weights = mine_template_weights(log, context)
    treatment = next(
        weight for weight in weights.weights
        if weight.name == "treatment_relationship"
    )
    assert treatment.regular_rate > treatment.exception_rate
    assert treatment.fired_weight > 0
    # an entry matching the regular profile scores stronger than the lurker
    strong = weights.strength(entry_for(time=8), context)
    weak = weights.strength(
        entry_for(user="lurker", data="hiv_status", role="clerk", time=20),
        context,
    )
    assert strong > weak


def test_weights_require_both_traffic_classes():
    state = make_state()
    log = AuditLog()
    log.append(make_entry(1, "dr_grey", "lab_results", "treatment", "surgeon",
                          AccessStatus.REGULAR))
    with pytest.raises(ExplainError):
        mine_template_weights(log, ExplanationContext(state, log))


def test_weights_roundtrip():
    state = make_state()
    log = AuditLog()
    log.append(make_entry(1, "dr_grey", "lab_results", "treatment", "surgeon",
                          AccessStatus.REGULAR))
    log.append(make_entry(2, "lurker", "hiv_status", "telemarketing", "clerk",
                          AccessStatus.EXCEPTION))
    context = ExplanationContext(state, log)
    weights = mine_template_weights(log, context)
    rebuilt = type(weights).from_dict(weights.to_dict())
    assert rebuilt.to_dict() == weights.to_dict()


def test_default_templates_are_unique():
    names = [template.name for template in DEFAULT_TEMPLATES]
    assert len(names) == len(set(names)) == 6
