"""Unit tests for the HDB Control Center facade."""

from __future__ import annotations

from repro.hdb.control_center import HdbControlCenter
from repro.policy.rule import Rule


class TestPolicyEntry:
    def test_define_rule_from_dsl(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        assert center.define_rule("ALLOW nurse TO USE referral FOR treatment")
        assert Rule.of(
            data="referral", purpose="treatment", authorized="nurse"
        ) in center.policy_store

    def test_define_rule_from_object(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        rule = Rule.of(data="referral", purpose="treatment", authorized="nurse")
        assert center.define_rule(rule) is True
        assert center.define_rule(rule) is False  # dedup

    def test_define_rules_counts_changes(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        added = center.define_rules(
            [
                "ALLOW nurse TO USE referral FOR treatment",
                "ALLOW nurse TO USE referral FOR treatment",
                Rule.of(data="address", purpose="billing", authorized="clerk"),
            ]
        )
        assert added == 2

    def test_current_policy_snapshot(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        center.define_rule("ALLOW nurse TO USE referral FOR treatment")
        policy = center.current_policy()
        assert policy.cardinality == 1

    def test_provenance_records_author(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        center.define_rule(
            "ALLOW nurse TO USE referral FOR treatment", added_by="cpo"
        )
        record = center.policy_store.record_for(
            Rule.of(data="referral", purpose="treatment", authorized="nurse")
        )
        assert record.added_by == "cpo"


class TestWiring:
    def test_components_share_vocabulary_and_log(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        assert center.enforcer.vocabulary is vocabulary
        assert center.consent.vocabulary is vocabulary
        assert center.audit_log is center.auditor.log
        assert center.enforcer.policy_store is center.policy_store

    def test_default_consent_flag(self, vocabulary):
        strict = HdbControlCenter(vocabulary, default_consent=False)
        assert strict.consent.default_allowed is False

    def test_record_consent_delegates(self, vocabulary):
        center = HdbControlCenter(vocabulary)
        center.record_consent("p1", "research", allowed=False)
        assert not center.consent.permits("p1", "prescription", "research")
