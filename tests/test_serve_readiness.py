"""Liveness vs readiness probes, not-ready shedding, overload backoff."""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    PdpClient,
    RetryPolicy,
    ServerConfig,
    ServerThread,
    build_demo_engine,
    protocol,
)


@pytest.fixture()
def not_ready_server():
    engine = build_demo_engine(rows=30, seed=7)
    srv = ServerThread(engine, ServerConfig(port=0), ready=False).start()
    try:
        yield srv
    finally:
        srv.stop()


def http_status(srv, path):
    try:
        with urllib.request.urlopen(
            f"http://{srv.host}:{srv.port}{path}", timeout=10
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestLivenessVsReadiness:
    def test_livez_is_200_even_before_ready(self, not_ready_server):
        status, body = http_status(not_ready_server, "/livez")
        assert status == 200
        assert b"live" in body

    def test_readyz_is_503_before_ready_then_200(self, not_ready_server):
        status, body = http_status(not_ready_server, "/readyz")
        assert status == 503
        assert b'"ready":false' in body
        not_ready_server.server.mark_ready()
        status, body = http_status(not_ready_server, "/readyz")
        assert status == 200
        assert b'"ready":true' in body

    def test_healthz_reports_readiness(self, not_ready_server):
        status, body = http_status(not_ready_server, "/healthz")
        assert status == 200  # alive — healthz stays the liveness signal
        assert b'"ready":false' in body

    def test_mark_not_ready_takes_a_ready_server_out(self):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0)).start()
        try:
            assert http_status(srv, "/readyz")[0] == 200
            srv.server.mark_not_ready()
            assert http_status(srv, "/readyz")[0] == 503
            assert http_status(srv, "/livez")[0] == 200
        finally:
            srv.stop()


class TestNotReadyShedding:
    def test_decisions_shed_with_retry_hint_until_ready(self, not_ready_server):
        srv = not_ready_server
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u1", "physician", "treatment",
                                     ["prescription"])
            assert response["ok"] is False
            assert response["code"] == protocol.OVERLOADED
            assert response["retry_after_ms"] >= 0
            # non-decision ops still answer while not ready
            assert client.ping()["ok"] is True
            srv.server.mark_ready()
            response = client.decide("u1", "physician", "treatment",
                                     ["prescription"])
            assert response["ok"] is True


class TestOverloadBackoff:
    def test_overload_delay_prefers_server_hint(self):
        policy = RetryPolicy(base_delay=9.0, max_retry_after=2.0)
        assert policy.overload_delay({"retry_after_ms": 80}, 0) == 0.08

    def test_overload_delay_caps_the_hint(self):
        policy = RetryPolicy(max_retry_after=0.5)
        assert policy.overload_delay({"retry_after_ms": 60_000}, 0) == 0.5

    def test_overload_delay_ignores_bad_hints(self):
        policy = RetryPolicy(base_delay=0.25)
        fallback = policy.delay(0)
        assert policy.overload_delay({}, 0) == fallback
        assert policy.overload_delay({"retry_after_ms": -5}, 0) == fallback
        assert policy.overload_delay({"retry_after_ms": True}, 0) == fallback
        assert policy.overload_delay({"retry_after_ms": "soon"}, 0) == fallback

    def test_client_retries_overloaded_decides_until_ready(self):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0), ready=False).start()
        try:
            timer = threading.Timer(0.3, srv.server.mark_ready)
            timer.start()
            retry = RetryPolicy(overload_retries=20, max_retry_after=0.2)
            with PdpClient(srv.host, srv.port, retry=retry) as client:
                started = time.perf_counter()
                response = client.decide("u1", "physician", "treatment",
                                         ["prescription"])
            assert response["ok"] is True
            # it really waited through shed responses rather than failing
            assert time.perf_counter() - started >= 0.2
            timer.cancel()
        finally:
            srv.stop()

    def test_zero_retries_returns_overloaded_immediately(self):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0), ready=False).start()
        try:
            with PdpClient(srv.host, srv.port) as client:
                response = client.decide("u1", "physician", "treatment",
                                         ["prescription"])
            assert response["code"] == protocol.OVERLOADED
        finally:
            srv.stop()
