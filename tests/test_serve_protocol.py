"""Unit tests for the PDP wire protocol (NDJSON frames)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve import protocol


class TestFrames:
    def test_encode_decode_roundtrip(self):
        payload = {"op": "ping", "id": 7, "note": "héllo"}
        assert protocol.decode_frame(protocol.encode_frame(payload)) == payload

    def test_encoded_frame_is_one_line(self):
        frame = protocol.encode_frame({"op": "ping"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_decode_rejects_non_json(self):
        with pytest.raises(protocol.ProtocolError, match="not JSON"):
            protocol.decode_frame(b"this is not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="JSON objects"):
            protocol.decode_frame(b"[1, 2, 3]\n")

    def test_decode_rejects_binary_garbage(self):
        with pytest.raises(protocol.ProtocolError, match="not UTF-8"):
            protocol.decode_frame(b"\xff\xfe\x00\x01\n")

    def test_oversized_frame_rejected_both_ways(self):
        big = {"op": "decide", "sql": "x" * protocol.MAX_FRAME_BYTES}
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.encode_frame(big)
        line = (json.dumps(big) + "\n").encode()
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_frame(line)

    def test_protocol_error_is_serve_error(self):
        assert issubclass(protocol.ProtocolError, ServeError)


class TestParseRequest:
    def test_requires_op(self):
        with pytest.raises(protocol.ProtocolError, match="'op'"):
            protocol.parse_request({"user": "u"})

    def test_unknown_op_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.parse_request({"op": "drop_tables"})

    def test_ping_parses_bare(self):
        request = protocol.parse_request({"op": "ping", "id": 3})
        assert request.op == "ping"
        assert request.id == 3

    def test_decide_requires_all_fields(self):
        base = {"op": "decide", "user": "u", "role": "nurse",
                "purpose": "treatment", "categories": ["referral"]}
        assert protocol.parse_request(base).categories == ("referral",)
        for missing in ("user", "role", "purpose", "categories"):
            broken = {k: v for k, v in base.items() if k != missing}
            with pytest.raises(protocol.ProtocolError):
                protocol.parse_request(broken)

    def test_decide_rejects_empty_categories(self):
        with pytest.raises(protocol.ProtocolError, match="categories"):
            protocol.parse_request(
                {"op": "decide", "user": "u", "role": "r", "purpose": "p",
                 "categories": []}
            )

    def test_decide_rejects_non_string_category(self):
        with pytest.raises(protocol.ProtocolError, match="categories"):
            protocol.parse_request(
                {"op": "decide", "user": "u", "role": "r", "purpose": "p",
                 "categories": ["ok", 42]}
            )

    def test_decide_rejects_non_boolean_exception(self):
        with pytest.raises(protocol.ProtocolError, match="exception"):
            protocol.parse_request(
                {"op": "decide", "user": "u", "role": "r", "purpose": "p",
                 "categories": ["c"], "exception": "yes"}
            )

    def test_deadline_must_be_positive_number(self):
        base = {"op": "query", "user": "u", "role": "r", "purpose": "p",
                "sql": "SELECT 1"}
        assert protocol.parse_request({**base, "deadline_ms": 250}).deadline_ms == 250.0
        for bad in (0, -5, "soon", True):
            with pytest.raises(protocol.ProtocolError, match="deadline_ms"):
                protocol.parse_request({**base, "deadline_ms": bad})

    def test_query_requires_sql(self):
        with pytest.raises(protocol.ProtocolError, match="sql"):
            protocol.parse_request(
                {"op": "query", "user": "u", "role": "r", "purpose": "p"}
            )

    def test_admin_rule_ops_require_rule_text(self):
        for op in ("admin.add_rule", "admin.retire_rule"):
            request = protocol.parse_request({"op": op, "rule": "ALLOW x TO USE y FOR z"})
            assert request.rule.startswith("ALLOW")
            with pytest.raises(protocol.ProtocolError):
                protocol.parse_request({"op": op})

    def test_admin_consent_parses(self):
        request = protocol.parse_request(
            {"op": "admin.consent", "patient": "p1", "purpose": "research",
             "allowed": False, "data": "psychiatry"}
        )
        assert request.patient == "p1"
        assert request.allowed is False
        assert request.data == "psychiatry"

    def test_admin_consent_data_defaults_to_whole_purpose(self):
        request = protocol.parse_request(
            {"op": "admin.consent", "patient": "p1", "purpose": "research",
             "allowed": False}
        )
        assert request.data is None

    def test_admin_consent_rejects_blank_data(self):
        with pytest.raises(protocol.ProtocolError, match="data"):
            protocol.parse_request(
                {"op": "admin.consent", "patient": "p1", "purpose": "research",
                 "allowed": False, "data": "   "}
            )


class TestResponses:
    def test_ok_response_shape(self):
        response = protocol.ok_response(9, decision="allow")
        assert response["ok"] is True
        assert response["code"] == protocol.OK
        assert response["id"] == 9
        assert response["decision"] == "allow"

    def test_error_response_shape(self):
        response = protocol.error_response(1, protocol.OVERLOADED, "full",
                                           retry_after_ms=50)
        assert response["ok"] is False
        assert response["code"] == protocol.OVERLOADED
        assert response["retry_after_ms"] == 50

    def test_error_response_refuses_ok_code(self):
        with pytest.raises(ServeError):
            protocol.error_response(1, protocol.OK, "not an error")

    def test_every_code_has_an_http_status(self):
        assert set(protocol.HTTP_STATUS) == set(protocol.CODES)
