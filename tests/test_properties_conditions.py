"""Property-based tests for time windows and the temporal detector."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.temporal import _best_window
from repro.policy.conditions import TimeWindow

starts = st.integers(min_value=0, max_value=23)
ends = st.integers(min_value=0, max_value=24)
hours = st.integers(min_value=0, max_value=23)


class TestTimeWindowProperties:
    @given(starts, ends)
    def test_span_equals_hours_length(self, start, end):
        window = TimeWindow(start, end)
        assert window.span == len(window.hours())

    @given(starts, ends, hours)
    def test_contains_agrees_with_hours(self, start, end, hour):
        window = TimeWindow(start, end)
        assert window.contains(hour) == (hour in window.hours())

    @given(starts, ends)
    def test_hours_are_distinct_and_valid(self, start, end):
        listed = TimeWindow(start, end).hours()
        assert len(listed) == len(set(listed))
        assert all(0 <= hour <= 23 for hour in listed)

    @given(starts, ends)
    def test_span_bounds(self, start, end):
        assert 0 <= TimeWindow(start, end).span <= 24

    @given(hours)
    def test_all_day_contains_everything(self, hour):
        assert TimeWindow.all_day().contains(hour)


histograms = st.lists(
    st.integers(min_value=0, max_value=10), min_size=24, max_size=24
)


class TestBestWindowProperties:
    @settings(max_examples=100)
    @given(histograms, st.integers(min_value=1, max_value=23),
           st.floats(min_value=0.5, max_value=1.0))
    def test_returned_window_meets_concentration(self, histogram, max_span, threshold):
        result = _best_window(histogram, max_span, threshold)
        total = sum(histogram)
        if result is None:
            return
        window, concentration = result
        inside = sum(histogram[hour] for hour in window.hours())
        assert window.span <= max_span
        assert concentration == inside / total
        assert concentration >= threshold

    @settings(max_examples=100)
    @given(histograms, st.integers(min_value=1, max_value=23),
           st.floats(min_value=0.5, max_value=1.0))
    def test_window_is_minimal(self, histogram, max_span, threshold):
        result = _best_window(histogram, max_span, threshold)
        total = sum(histogram)
        if result is None or total == 0:
            return
        window, _ = result
        for span in range(1, window.span):
            for start in range(24):
                inside = sum(histogram[(start + k) % 24] for k in range(span))
                assert inside / total < threshold

    @settings(max_examples=60)
    @given(st.integers(min_value=1, max_value=23))
    def test_empty_histogram_yields_nothing(self, max_span):
        assert _best_window([0] * 24, max_span, 0.9) is None

    @settings(max_examples=60)
    @given(hours, st.integers(min_value=1, max_value=10))
    def test_single_hour_spike_gets_one_hour_window(self, hour, count):
        histogram = [0] * 24
        histogram[hour] = count
        window, concentration = _best_window(histogram, 12, 0.9)
        assert window.span == 1
        assert window.contains(hour)
        assert concentration == 1.0
