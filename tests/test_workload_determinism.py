"""Cross-interpreter determinism of the synthetic workload generator.

The corpus generator (:mod:`repro.corpus`) promises byte-identical
bundles from a seed, which only holds if everything *under* it — the
hospital builder and :class:`~repro.workload.generator.\
SyntheticHospitalEnvironment` — is itself free of hash-order
dependence.  In-process assertions cannot catch ``PYTHONHASHSEED``
sensitivity (the hash seed is fixed per interpreter), so the regression
test here spawns fresh interpreters with *different* hash seeds and
compares trail digests across them.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.harness import standard_loop_setup

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The digest job run inside each fresh interpreter: simulate two rounds
#: against the E3 fixture and print a digest over every audit attribute.
DIGEST_SCRIPT = """
import hashlib
from repro.experiments.harness import standard_loop_setup

setup = standard_loop_setup(accesses_per_round=600, seed=23)
digest = hashlib.sha256()
for round_index in range(2):
    window = setup.environment.simulate_round(round_index, setup.store)
    for entry in window:
        digest.update(repr((entry.as_row(), entry.truth)).encode())
print(digest.hexdigest())
"""


def run_with_hash_seed(hash_seed: str) -> str:
    """The workload digest from a fresh interpreter with ``hash_seed``."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip()


def in_process_digest() -> str:
    """The same digest computed in this interpreter."""
    setup = standard_loop_setup(accesses_per_round=600, seed=23)
    digest = hashlib.sha256()
    for round_index in range(2):
        window = setup.environment.simulate_round(round_index, setup.store)
        for entry in window:
            digest.update(repr((entry.as_row(), entry.truth)).encode())
    return digest.hexdigest()


def test_workload_digest_stable_across_hash_seeds():
    digests = {seed: run_with_hash_seed(seed) for seed in ("0", "1", "4242")}
    assert len(set(digests.values())) == 1, digests


def test_workload_digest_matches_fresh_interpreter():
    assert in_process_digest() == run_with_hash_seed("0")


def test_same_seed_same_trail_in_process():
    assert in_process_digest() == in_process_digest()
