"""Unit tests for audit CSV/JSONL persistence."""

from __future__ import annotations

import pytest

from repro.audit import io as audit_io
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import AuditError


class TestCsv:
    def test_round_trip(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        rebuilt = audit_io.load_csv(path)
        assert rebuilt.entries == table1_log.entries

    def test_csv_drops_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="practice")
        )
        path = audit_io.save_csv(log, tmp_path / "log.csv")
        rebuilt = audit_io.load_csv(path)
        assert rebuilt[0].truth == ""

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
        with pytest.raises(AuditError):
            audit_io.load_csv(path)

    def test_name_defaults_to_stem(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "trail.csv")
        assert audit_io.load_csv(path).name == "trail"

    def test_truncated_row_raises_with_location(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[3] = ",".join(lines[3].split(",")[:4])  # drop trailing fields
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditError, match=r"log\.csv:4: expected 7 fields"):
            audit_io.load_csv(path)

    def test_extra_field_raises_with_location(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[2] += ",surprise"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditError, match=r"log\.csv:3: expected 7 fields"):
            audit_io.load_csv(path)

    def test_non_integer_time_raises_with_location(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        lines = path.read_text(encoding="utf-8").splitlines()
        fields = lines[5].split(",")
        fields[0] = "not-a-tick"
        lines[5] = ",".join(fields)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditError, match=r"log\.csv:6: malformed audit row"):
            audit_io.load_csv(path)

    def test_corrupt_status_raises_with_location(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        lines = path.read_text(encoding="utf-8").splitlines()
        fields = lines[1].split(",")
        fields[-1] = "42"  # not a valid AccessStatus
        lines[1] = ",".join(fields)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(AuditError, match=r"log\.csv:2"):
            audit_io.load_csv(path)

    def test_blank_csv_lines_skipped(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        path.write_text(
            path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8"
        )
        assert len(audit_io.load_csv(path)) == len(table1_log)


class TestJsonl:
    def test_round_trip_keeps_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        path = audit_io.save_jsonl(log, tmp_path / "log.jsonl")
        rebuilt = audit_io.load_jsonl(path)
        assert rebuilt[0].truth == "violation"

    def test_round_trip_can_drop_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        path = audit_io.save_jsonl(log, tmp_path / "log.jsonl", include_truth=False)
        assert audit_io.load_jsonl(path)[0].truth == ""

    def test_blank_lines_skipped(self, tmp_path, table1_log):
        path = audit_io.save_jsonl(table1_log, tmp_path / "log.jsonl")
        padded = path.read_text() + "\n\n"
        path.write_text(padded, encoding="utf-8")
        assert len(audit_io.load_jsonl(path)) == 10

    def test_invalid_json_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(AuditError, match="bad.jsonl:1"):
            audit_io.load_jsonl(path)
