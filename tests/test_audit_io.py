"""Unit tests for audit CSV/JSONL persistence."""

from __future__ import annotations

import pytest

from repro.audit import io as audit_io
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import AuditError


class TestCsv:
    def test_round_trip(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "log.csv")
        rebuilt = audit_io.load_csv(path)
        assert rebuilt.entries == table1_log.entries

    def test_csv_drops_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="practice")
        )
        path = audit_io.save_csv(log, tmp_path / "log.csv")
        rebuilt = audit_io.load_csv(path)
        assert rebuilt[0].truth == ""

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
        with pytest.raises(AuditError):
            audit_io.load_csv(path)

    def test_name_defaults_to_stem(self, tmp_path, table1_log):
        path = audit_io.save_csv(table1_log, tmp_path / "trail.csv")
        assert audit_io.load_csv(path).name == "trail"


class TestJsonl:
    def test_round_trip_keeps_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        path = audit_io.save_jsonl(log, tmp_path / "log.jsonl")
        rebuilt = audit_io.load_jsonl(path)
        assert rebuilt[0].truth == "violation"

    def test_round_trip_can_drop_truth(self, tmp_path):
        log = AuditLog()
        log.append(
            make_entry(1, "a", "referral", "treatment", "nurse",
                       status=AccessStatus.EXCEPTION, truth="violation")
        )
        path = audit_io.save_jsonl(log, tmp_path / "log.jsonl", include_truth=False)
        assert audit_io.load_jsonl(path)[0].truth == ""

    def test_blank_lines_skipped(self, tmp_path, table1_log):
        path = audit_io.save_jsonl(table1_log, tmp_path / "log.jsonl")
        padded = path.read_text() + "\n\n"
        path.write_text(padded, encoding="utf-8")
        assert len(audit_io.load_jsonl(path)) == 10

    def test_invalid_json_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(AuditError, match="bad.jsonl:1"):
            audit_io.load_jsonl(path)
