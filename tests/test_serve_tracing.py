"""End-to-end tracing through the PDP server (ISSUE 7).

Covers the frame-level echo contract (the response ``trace`` field comes
from the *request*, so bodies are byte-identical with tracing on or
off), the decision-provenance side records and their audit entry-id
links, the ``stats`` / ``healthz`` trace + admission surfaces, the
``GET /traces`` HTTP routes with their error paths, shed/timeout
provenance (requests the engine never saw), and the HTTP shim's
traceparent header handling.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import trace as obstrace
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import use_registry
from repro.obs.trace import NULL_TRACER, Tracer, format_traceparent, use_tracer
from repro.serve import PdpClient, ServerConfig, ServerThread, build_demo_engine
from repro.serve import protocol


def fresh_traceparent() -> str:
    return format_traceparent(obstrace.new_trace_id(), obstrace.new_span_id())


@pytest.fixture()
def traced():
    """A server built under an always-sample tracer; yields (engine, srv, tracer)."""
    tracer = Tracer(sample_every=1)
    with use_registry(MetricsRegistry()), use_tracer(tracer):
        engine = build_demo_engine(rows=30, seed=7)
        srv = ServerThread(engine, ServerConfig(port=0)).start()
    try:
        yield engine, srv, tracer
    finally:
        srv.stop()


def http_get(srv, path):
    with urllib.request.urlopen(
        f"http://{srv.host}:{srv.port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def http_post(srv, path, body: bytes, headers=None):
    request = urllib.request.Request(
        f"http://{srv.host}:{srv.port}{path}", data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestEchoSemantics:
    def test_response_echoes_client_trace_id(self, traced):
        _, srv, tracer = traced
        traceparent = fresh_traceparent()
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"], trace=traceparent)
        assert response["trace"] == traceparent.split("-")[1]
        # the stamped request links the server trace to the client's id
        assert tracer.store.get(response["trace"]) is not None

    def test_untraced_request_gets_no_trace_field(self, traced):
        _, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"])
        assert "trace" not in response

    def test_echo_is_identical_with_tracing_disabled(self):
        """The body contract of E20: same request → same ``trace`` field,
        tracer on or off (the echo never comes from the tracer)."""
        traceparent = fresh_traceparent()
        bodies = []
        for tracer in (Tracer(sample_every=1), NULL_TRACER):
            with use_registry(MetricsRegistry()), use_tracer(tracer):
                engine = build_demo_engine(rows=30, seed=7)
                srv = ServerThread(engine, ServerConfig(port=0)).start()
            try:
                with PdpClient(srv.host, srv.port) as client:
                    response = client.decide(
                        "u", "physician", "treatment", ["prescription"],
                        trace=traceparent,
                    )
                bodies.append(json.dumps(response, sort_keys=True))
            finally:
                srv.stop()
        assert bodies[0] == bodies[1]

    def test_malformed_trace_field_rejected(self, traced):
        _, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            response = client.request({
                "op": "decide", "user": "u", "role": "physician",
                "purpose": "treatment", "categories": ["prescription"],
                "trace": "not-a-traceparent",
            })
        assert response["code"] == protocol.BAD_REQUEST
        assert "traceparent" in response["error"]


class TestDecisionProvenance:
    def test_decide_records_linked_provenance(self, traced):
        engine, srv, tracer = traced
        traceparent = fresh_traceparent()
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"], trace=traceparent)
        assert response["code"] == protocol.OK
        trace_id = response["trace"]
        [record] = engine.provenance.for_trace(trace_id)
        assert record["op"] == "decide"
        assert record["decision"] == protocol.OK
        assert record["categories"] == ["prescription"]
        assert record["cache"] in ("hit", "miss")
        assert record["matched_rules"].get("prescription") is not None
        assert record["versions"] == engine.versions()
        # entry ids point at the audit entries this decision wrote
        entry_ids = record["entry_ids"]
        assert len(entry_ids) == 1
        entry = engine.audit_log.entries[entry_ids[0]]
        assert entry.user == "u"
        assert entry.data == "prescription"
        # ...and resolve back to the trace, the refine daemon's link
        assert engine.provenance.trace_for_entries(entry_ids) == {
            entry_ids[0]: trace_id
        }
        # the retained trace carries the same entry ids as an annotation
        trace = tracer.store.get(trace_id)
        assert trace["annotations"]["entry_ids"] == entry_ids

    def test_denied_decide_links_the_deny_entries(self, traced):
        engine, srv, _ = traced
        traceparent = fresh_traceparent()
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "nurse", "marketing",
                                     ["insurance"], trace=traceparent)
        assert response["code"] == protocol.DENIED
        [record] = engine.provenance.for_trace(response["trace"])
        assert record["decision"] == protocol.DENIED
        # denies are audited too; the provenance links those entries
        [entry_id] = record["entry_ids"]
        assert not engine.audit_log.entries[entry_id].is_allowed

    def test_query_provenance_includes_masked_categories(self, traced):
        engine, srv, _ = traced
        traceparent = fresh_traceparent()
        with PdpClient(srv.host, srv.port) as client:
            response = client.query(
                "alice", "physician", "treatment",
                "SELECT prescription, insurance FROM patients LIMIT 2",
                trace=traceparent,
            )
        assert response["code"] == protocol.OK
        [record] = engine.provenance.for_trace(response["trace"])
        assert record["op"] == "query"
        assert set(record["categories"]) == set(
            response["returned"] + response["masked"]
        )

    def test_server_trace_covers_unstamped_requests_too(self, traced):
        """Server-side roots give even unstamped requests provenance —
        only their trace id stays out of the response body."""
        engine, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            client.decide("u", "physician", "treatment", ["prescription"])
        [record] = engine.provenance.recent()
        assert record["op"] == "decide"

    def test_null_tracer_records_no_provenance(self):
        with use_registry(MetricsRegistry()), use_tracer(NULL_TRACER):
            engine = build_demo_engine(rows=30, seed=7)
            srv = ServerThread(engine, ServerConfig(port=0)).start()
        try:
            with PdpClient(srv.host, srv.port) as client:
                client.decide("u", "physician", "treatment", ["prescription"],
                              trace=fresh_traceparent())
        finally:
            srv.stop()
        assert len(engine.provenance) == 0

    def test_trace_contains_enforce_and_audit_spans(self, traced):
        engine, srv, tracer = traced
        traceparent = fresh_traceparent()
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"], trace=traceparent)
        trace = tracer.store.get(response["trace"])
        names = {span["name"] for span in trace["spans"]}
        assert "repro_serve_decide" in names
        assert "repro_hdb_record_access" in names


class TestStatsAndHealthSurfaces:
    def test_stats_reports_tracer_and_admission(self, traced):
        _, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            client.decide("u", "physician", "treatment", ["prescription"],
                          trace=fresh_traceparent())
            stats = client.stats()
        trace = stats["trace"]
        assert trace["enabled"] is True
        assert trace["started"] >= 1
        assert trace["kept"] >= 1
        assert trace["sample_every"] == 1
        assert isinstance(trace["recent"], list) and trace["recent"]
        admission = stats["admission"]
        assert admission["max_inflight"] == ServerConfig().max_inflight
        assert admission["default_deadline_ms"] > 0

    def test_healthz_reports_admission(self, traced):
        _, srv, _ = traced
        status, health = http_get(srv, "/healthz")
        assert status == 200
        assert health["admission"]["max_queue"] == ServerConfig().max_queue
        assert health["admission"]["retry_after_ms"] > 0


class TestHttpTraceRoutes:
    def test_empty_store_lists_no_traces(self, traced):
        _, srv, _ = traced
        status, payload = http_get(srv, "/traces")
        assert status == 200
        assert payload["traces"] == []
        assert payload["tracer"]["enabled"] is True

    def test_list_and_show_round_trip(self, traced):
        engine, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            response = client.decide("u", "physician", "treatment",
                                     ["prescription"],
                                     trace=fresh_traceparent())
        trace_id = response["trace"]
        _, payload = http_get(srv, "/traces?limit=5")
        assert trace_id in [t["trace_id"] for t in payload["traces"]]
        status, full = http_get(srv, f"/traces/{trace_id}")
        assert status == 200
        assert full["trace_id"] == trace_id
        assert isinstance(full["spans"], list) and full["spans"]
        # the full view inlines the decision's provenance records
        assert [r["trace_id"] for r in full["provenance"]] == [trace_id]

    def test_slow_filter_orders_by_duration(self, traced):
        _, srv, _ = traced
        with PdpClient(srv.host, srv.port) as client:
            for _ in range(3):
                client.decide("u", "physician", "treatment",
                              ["prescription"], trace=fresh_traceparent())
        _, payload = http_get(srv, "/traces?slow=1&limit=10")
        durations = [t["duration_ms"] for t in payload["traces"]]
        assert durations == sorted(durations, reverse=True)

    def test_unknown_trace_id_is_404(self, traced):
        _, srv, _ = traced
        with pytest.raises(urllib.error.HTTPError) as info:
            http_get(srv, "/traces/" + "0" * 32)
        assert info.value.code == 404

    def test_bad_limit_is_400(self, traced):
        _, srv, _ = traced
        with pytest.raises(urllib.error.HTTPError) as info:
            http_get(srv, "/traces?limit=abc")
        assert info.value.code == 400


class TestHttpShimErrorPaths:
    def test_traceparent_header_links_trace(self, traced):
        _, srv, tracer = traced
        traceparent = fresh_traceparent()
        body = json.dumps({"user": "u", "role": "physician",
                           "purpose": "treatment",
                           "categories": ["prescription"]}).encode()
        status, headers, payload = http_post(
            srv, "/decide", body, {"traceparent": traceparent}
        )
        assert status == 200
        assert headers["X-Trace-Id"] == traceparent.split("-")[1]
        assert tracer.store.get(headers["X-Trace-Id"]) is not None
        # headers only: the body never gains a trace field the client
        # didn't send (byte-identity contract)
        assert "trace" not in payload

    def test_malformed_traceparent_header_ignored(self, traced):
        """Per the W3C spec a bad header means a *fresh* trace, not 400."""
        _, srv, _ = traced
        body = json.dumps({"user": "u", "role": "physician",
                           "purpose": "treatment",
                           "categories": ["prescription"]}).encode()
        status, headers, payload = http_post(
            srv, "/decide", body, {"traceparent": "hello-world"}
        )
        assert status == 200
        assert payload["code"] == protocol.OK
        fresh = headers["X-Trace-Id"]
        assert len(fresh) == 32 and fresh != "hello"

    def test_unknown_path_is_404(self, traced):
        _, srv, _ = traced
        with pytest.raises(urllib.error.HTTPError) as info:
            http_get(srv, "/nope")
        assert info.value.code == 404

    def test_oversized_body_is_400(self, traced):
        _, srv, _ = traced
        huge = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(urllib.error.HTTPError) as info:
            http_post(srv, "/decide", huge)
        assert info.value.code == 400


class TestAdmissionProvenance:
    def _saturated_server(self, tracer):
        with use_registry(MetricsRegistry()), use_tracer(tracer):
            engine = build_demo_engine(rows=30, seed=7)
            config = ServerConfig(port=0, max_inflight=1, max_queue=0,
                                  handling_delay=0.5)
            srv = ServerThread(engine, config).start()
        return engine, srv

    def test_shed_response_reports_remaining_deadline(self):
        tracer = Tracer(sample_every=10_000)
        engine, srv = self._saturated_server(tracer)
        traceparent = fresh_traceparent()
        try:
            def occupy():
                with PdpClient(srv.host, srv.port) as client:
                    client.decide("u", "physician", "treatment",
                                  ["prescription"])

            holder = threading.Thread(target=occupy)
            holder.start()
            time.sleep(0.15)
            with PdpClient(srv.host, srv.port) as client:
                shed = client.decide("v", "nurse", "billing", ["insurance"],
                                     deadline_ms=2000, trace=traceparent)
            holder.join(10)
        finally:
            srv.stop()
        assert shed["code"] == protocol.OVERLOADED
        assert 0 < shed["deadline_remaining_ms"] <= 2000
        # shed wrote no audit entries, so provenance is the only record
        assert [e.user for e in engine.audit_log.entries] == ["u"]
        trace_id = shed["trace"]
        [record] = engine.provenance.for_trace(trace_id)
        assert record["decision"] == protocol.OVERLOADED
        assert record["entry_ids"] == []
        assert record["deadline_remaining_ms"] == shed["deadline_remaining_ms"]
        # despite the huge sampling interval, the shed trace is retained
        trace = tracer.store.get(trace_id)
        assert "shed" in trace["keep"]
