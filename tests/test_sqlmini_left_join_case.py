"""Tests for LEFT JOIN and CASE expressions in sqlmini."""

from __future__ import annotations

import pytest

from repro.sqlmini.database import Database
from repro.sqlmini.errors import SqlParseError
from repro.sqlmini.parser import parse, parse_expression


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE emp (id INTEGER, name TEXT, dept TEXT)")
    database.execute(
        "INSERT INTO emp VALUES (1, 'ann', 'er'), (2, 'bob', 'icu'), "
        "(3, 'cid', 'ghost')"
    )
    database.execute("CREATE TABLE dept (code TEXT, building TEXT)")
    database.execute("INSERT INTO dept VALUES ('er', 'east'), ('icu', 'west')")
    return database


class TestLeftJoin:
    def test_unmatched_left_rows_survive_with_nulls(self, db):
        result = db.query(
            "SELECT e.name, d.building FROM emp e "
            "LEFT JOIN dept d ON e.dept = d.code ORDER BY e.name"
        )
        assert result.rows == (
            ("ann", "east"), ("bob", "west"), ("cid", None),
        )

    def test_left_outer_join_synonym(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM emp e LEFT OUTER JOIN dept d ON e.dept = d.code"
        )
        assert result.scalar() == 3

    def test_inner_join_still_drops_unmatched(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.code"
        )
        assert result.scalar() == 2

    def test_filter_unmatched_via_is_null(self, db):
        # the anti-join idiom: audit rows with no covering policy row
        result = db.query(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.code "
            "WHERE d.code IS NULL"
        )
        assert result.rows == (("cid",),)

    def test_aggregate_over_left_join(self, db):
        result = db.query(
            "SELECT d.building, COUNT(*) AS n FROM emp e "
            "LEFT JOIN dept d ON e.dept = d.code "
            "GROUP BY d.building ORDER BY n DESC, d.building"
        )
        # NULL building forms its own group
        assert set(result.rows) == {("east", 1), ("west", 1), (None, 1)}

    def test_str_round_trip(self, db):
        sql = "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.code"
        statement = parse(sql)
        assert parse(str(statement)) == statement

    def test_multiple_matches_multiply(self, db):
        db.execute("INSERT INTO dept VALUES ('er', 'annex')")
        result = db.query(
            "SELECT COUNT(*) FROM emp e LEFT JOIN dept d ON e.dept = d.code "
            "WHERE e.name = 'ann'"
        )
        assert result.scalar() == 2


class TestCase:
    def test_searched_case(self, db):
        result = db.query(
            "SELECT name, CASE WHEN dept = 'er' THEN 'emergency' "
            "WHEN dept = 'icu' THEN 'intensive' ELSE 'unknown' END AS label "
            "FROM emp ORDER BY id"
        )
        assert result.column("label") == ["emergency", "intensive", "unknown"]

    def test_case_without_else_yields_null(self):
        assert (
            parse_expression("CASE WHEN FALSE THEN 1 END") is not None
        )
        from repro.sqlmini.expressions import evaluate

        assert evaluate(parse_expression("CASE WHEN FALSE THEN 1 END"), {}) is None
        assert evaluate(parse_expression("CASE WHEN TRUE THEN 1 END"), {}) == 1

    def test_first_true_branch_wins(self):
        from repro.sqlmini.expressions import evaluate

        expr = parse_expression(
            "CASE WHEN 1 < 2 THEN 'first' WHEN 2 < 3 THEN 'second' END"
        )
        assert evaluate(expr, {}) == "first"

    def test_unknown_condition_is_not_taken(self):
        from repro.sqlmini.expressions import evaluate

        expr = parse_expression("CASE WHEN NULL THEN 'x' ELSE 'y' END")
        assert evaluate(expr, {}) == "y"

    def test_case_in_where(self, db):
        result = db.query(
            "SELECT name FROM emp WHERE CASE WHEN dept = 'ghost' THEN TRUE "
            "ELSE FALSE END"
        )
        assert result.rows == (("cid",),)

    def test_case_over_aggregates(self, db):
        result = db.query(
            "SELECT dept, CASE WHEN COUNT(*) > 0 THEN 'busy' ELSE 'idle' END "
            "AS load FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.column("load") == ["busy", "busy", "busy"]

    def test_case_requires_when(self):
        with pytest.raises(SqlParseError):
            parse_expression("CASE ELSE 1 END")

    def test_case_str_round_trip(self):
        source = "CASE WHEN (a = 1) THEN 'x' ELSE 'y' END"
        expr = parse_expression(source)
        assert parse_expression(str(expr)) == expr

    def test_aggregates_collected_inside_case(self):
        from repro.sqlmini import ast

        expr = parse_expression("CASE WHEN COUNT(*) > 1 THEN SUM(x) END")
        assert len(ast.collect_aggregates(expr)) == 2
        columns = ast.collect_columns(expr)
        assert [c.name for c in columns] == ["x"]
