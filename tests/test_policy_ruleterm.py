"""Unit tests for repro.policy.ruleterm (Definitions 1-4)."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.ruleterm import RuleTerm


class TestConstruction:
    def test_canonicalises_both_elements(self):
        term = RuleTerm("Data", " Birth Date ")
        assert term.attr == "data"
        assert term.value == "birth_date"

    def test_equality_after_canonicalisation(self):
        assert RuleTerm("DATA", "Gender") == RuleTerm("data", "gender")

    def test_hashable(self):
        assert len({RuleTerm("data", "gender"), RuleTerm("Data", "GENDER")}) == 1

    def test_rejects_empty_value(self):
        with pytest.raises(PolicyError):
            RuleTerm("data", "  ")

    def test_rejects_non_string(self):
        with pytest.raises(PolicyError):
            RuleTerm("data", 5)  # type: ignore[arg-type]

    def test_str_matches_paper_notation(self):
        assert str(RuleTerm("data", "demographic")) == "(data, demographic)"


class TestGroundness:
    def test_leaf_value_is_ground(self, vocabulary):
        assert RuleTerm("data", "gender").is_ground(vocabulary)

    def test_internal_value_is_composite(self, vocabulary):
        assert not RuleTerm("data", "demographic").is_ground(vocabulary)

    def test_flat_attribute_is_ground(self, vocabulary):
        assert RuleTerm("user", "mark").is_ground(vocabulary)

    def test_ground_terms_of_composite(self, vocabulary):
        expanded = RuleTerm("data", "demographic").ground_terms(vocabulary)
        assert set(expanded) == {
            RuleTerm("data", "name"),
            RuleTerm("data", "address"),
            RuleTerm("data", "gender"),
            RuleTerm("data", "birth_date"),
        }

    def test_ground_terms_of_ground_is_singleton(self, vocabulary):
        # Definition 3: a ground term always exists.
        assert RuleTerm("data", "gender").ground_terms(vocabulary) == (
            RuleTerm("data", "gender"),
        )


class TestEquivalence:
    def test_definition4_example(self, vocabulary):
        # RT2=(data,address) and RT3=(data,gender) are equivalent to
        # RT1=(data,demographic) because ground terms of each lie in RT1'.
        rt1 = RuleTerm("data", "demographic")
        rt2 = RuleTerm("data", "address")
        rt3 = RuleTerm("data", "gender")
        assert rt2.equivalent(rt1, vocabulary)
        assert rt3.equivalent(rt1, vocabulary)
        assert rt1.equivalent(rt2, vocabulary)

    def test_different_attributes_never_equivalent(self, vocabulary):
        assert not RuleTerm("data", "billing").equivalent(
            RuleTerm("purpose", "billing"), vocabulary
        )

    def test_disjoint_subtrees_not_equivalent(self, vocabulary):
        assert not RuleTerm("data", "demographic").equivalent(
            RuleTerm("data", "psychiatry"), vocabulary
        )

    def test_equal_terms_equivalent(self, vocabulary):
        term = RuleTerm("purpose", "billing")
        assert term.equivalent(term, vocabulary)

    def test_unknown_values_equivalent_only_on_equality(self, vocabulary):
        assert RuleTerm("data", "martian").equivalent(
            RuleTerm("data", "martian"), vocabulary
        )
        assert not RuleTerm("data", "martian").equivalent(
            RuleTerm("data", "venusian"), vocabulary
        )


class TestSubsumption:
    def test_composite_subsumes_its_leaves(self, vocabulary):
        assert RuleTerm("data", "demographic").subsumes(
            RuleTerm("data", "address"), vocabulary
        )

    def test_leaf_does_not_subsume_composite(self, vocabulary):
        assert not RuleTerm("data", "address").subsumes(
            RuleTerm("data", "demographic"), vocabulary
        )

    def test_cross_attribute_never_subsumes(self, vocabulary):
        assert not RuleTerm("data", "billing").subsumes(
            RuleTerm("purpose", "billing"), vocabulary
        )
