"""Property tests: DurableAuditLog round-trips arbitrary audit logs.

The store persists whatever an in-memory :class:`AuditLog` can hold —
including empty logs, unicode attribute values (post-canonicalisation)
and degenerate single-entry segments — and every read-protocol method
must agree with the in-memory answer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import AccessOp, AccessStatus
from repro.store.durable import copy_to_durable
from repro.store.store import StoreConfig

users = st.sampled_from(["ann", "bob", "médecin_α", "看护_nurse"])
data_values = st.sampled_from(["referral", "prescription", "überweisung"])
purposes = st.sampled_from(["treatment", "registration", "billing"])
roles = st.sampled_from(["nurse", "clerk", "arzt_ä"])
ops = st.sampled_from([AccessOp.ALLOW, AccessOp.DENY])
statuses = st.sampled_from([AccessStatus.REGULAR, AccessStatus.EXCEPTION])
truths = st.sampled_from(["", "practice", "violation"])


@st.composite
def audit_logs(draw, max_size: int = 25) -> AuditLog:
    count = draw(st.integers(min_value=0, max_value=max_size))
    log = AuditLog()
    tick = 0
    for _ in range(count):
        tick += draw(st.integers(min_value=0, max_value=3))  # allow equal times
        log.append(
            AuditEntry(
                time=max(tick, 1),
                op=draw(ops),
                user=draw(users),
                data=draw(data_values),
                purpose=draw(purposes),
                authorized=draw(roles),
                status=draw(statuses),
                truth=draw(truths),
            )
        )
    return log


segment_limits = st.sampled_from([1, 2, 7, 100_000])


class TestRoundTripEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(log=audit_logs(), limit=segment_limits)
    def test_iteration_matches(self, tmp_path_factory, log, limit):
        directory = tmp_path_factory.mktemp("store") / "s"
        durable = copy_to_durable(
            log, directory, StoreConfig(max_segment_entries=limit, fsync="off")
        )
        assert len(durable) == len(log)
        assert list(durable) == list(log)
        assert durable.verify().ok
        durable.close()

    @settings(max_examples=40, deadline=None)
    @given(log=audit_logs(), limit=segment_limits,
           bounds=st.tuples(st.integers(0, 30), st.integers(0, 30)))
    def test_window_matches(self, tmp_path_factory, log, limit, bounds):
        directory = tmp_path_factory.mktemp("store") / "s"
        durable = copy_to_durable(
            log, directory, StoreConfig(max_segment_entries=limit, fsync="off")
        )
        start, end = min(bounds), max(bounds)
        assert list(durable.window(start, end)) == list(log.window(start, end))
        durable.close()

    @settings(max_examples=40, deadline=None)
    @given(log=audit_logs(), limit=segment_limits)
    def test_filters_match(self, tmp_path_factory, log, limit):
        directory = tmp_path_factory.mktemp("store") / "s"
        durable = copy_to_durable(
            log, directory, StoreConfig(max_segment_entries=limit, fsync="off")
        )
        assert list(durable.exceptions()) == list(log.exceptions())
        assert list(durable.regular()) == list(log.regular())
        assert list(durable.denials()) == list(log.denials())
        assert durable.distinct_users() == log.distinct_users()
        durable.close()

    @settings(max_examples=40, deadline=None)
    @given(log=audit_logs(), limit=segment_limits)
    def test_reopen_preserves_content(self, tmp_path_factory, log, limit):
        from repro.store.durable import DurableAuditLog

        directory = tmp_path_factory.mktemp("store") / "s"
        durable = copy_to_durable(
            log, directory, StoreConfig(max_segment_entries=limit, fsync="off")
        )
        durable.close()
        reopened = DurableAuditLog(directory, create=False)
        assert list(reopened) == list(log)
        reopened.close()

    @settings(max_examples=30, deadline=None)
    @given(log=audit_logs(), limit=st.sampled_from([1, 3, 7]))
    def test_compaction_preserves_content(self, tmp_path_factory, log, limit):
        directory = tmp_path_factory.mktemp("store") / "s"
        durable = copy_to_durable(
            log, directory, StoreConfig(max_segment_entries=limit, fsync="off")
        )
        durable.store.compact()
        assert list(durable) == list(log)
        assert durable.verify().ok
        durable.close()
