"""Unit tests for repro.vocab.vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import UnknownTermError, VocabularyError
from repro.vocab.tree import VocabularyTree
from repro.vocab.vocabulary import Vocabulary


@pytest.fixture()
def vocab() -> Vocabulary:
    vocabulary = Vocabulary("test")
    data = vocabulary.new_tree("data")
    data.add_branch("demographic", ["name", "address"])
    purpose = vocabulary.new_tree("purpose")
    purpose.add_branch("operations", ["billing", "registration"])
    return vocabulary


class TestRegistration:
    def test_attributes_lists_registered_trees(self, vocab):
        assert vocab.attributes == ("data", "purpose")

    def test_duplicate_tree_rejected(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.add_tree(VocabularyTree("data"))

    def test_tree_for_flat_attribute_is_none(self, vocab):
        assert vocab.tree_for("user") is None

    def test_contains(self, vocab):
        assert "data" in vocab
        assert "user" not in vocab
        assert "" not in vocab

    def test_iteration_yields_trees(self, vocab):
        assert {tree.attribute for tree in vocab} == {"data", "purpose"}


class TestGrounding:
    def test_flat_attribute_values_are_ground(self, vocab):
        assert vocab.is_ground("user", "mark")
        assert vocab.ground_values("user", "Mark") == ("mark",)

    def test_leaf_is_ground(self, vocab):
        assert vocab.is_ground("data", "name")

    def test_internal_node_is_composite(self, vocab):
        assert not vocab.is_ground("data", "demographic")

    def test_ground_values_of_composite(self, vocab):
        assert set(vocab.ground_values("data", "demographic")) == {"name", "address"}

    def test_ground_values_never_empty(self, vocab):
        assert vocab.ground_values("data", "name") == ("name",)

    def test_unknown_value_is_ground_in_lenient_mode(self, vocab):
        assert vocab.is_ground("data", "martian")
        assert vocab.ground_values("data", "martian") == ("martian",)

    def test_unknown_value_raises_in_strict_mode(self):
        strict = Vocabulary("strict", strict=True)
        tree = strict.new_tree("data")
        tree.add("name")
        with pytest.raises(UnknownTermError):
            strict.is_ground("data", "martian")

    def test_fanout(self, vocab):
        assert vocab.fanout("data", "demographic") == 2
        assert vocab.fanout("data", "name") == 1


class TestSubsumptionAndOverlap:
    def test_subsumes_in_tree(self, vocab):
        assert vocab.subsumes("data", "demographic", "name")
        assert not vocab.subsumes("data", "name", "demographic")

    def test_flat_attribute_subsumes_only_equal(self, vocab):
        assert vocab.subsumes("user", "mark", "Mark")
        assert not vocab.subsumes("user", "mark", "tim")

    def test_unknown_descendant_subsumed_only_by_itself(self, vocab):
        assert vocab.subsumes("data", "martian", "martian")
        assert not vocab.subsumes("data", "demographic", "martian")

    def test_overlap_composite_and_leaf(self, vocab):
        assert vocab.overlap("data", "demographic", "name")
        assert vocab.overlap("data", "name", "demographic")

    def test_overlap_disjoint(self, vocab):
        assert not vocab.overlap("purpose", "billing", "registration")

    def test_overlap_ground_equality(self, vocab):
        assert vocab.overlap("user", "mark", "mark")
        assert not vocab.overlap("user", "mark", "tim")


class TestSerialisation:
    def test_round_trip(self, vocab):
        rebuilt = Vocabulary.from_dict(vocab.to_dict())
        assert rebuilt.name == vocab.name
        assert rebuilt.attributes == vocab.attributes
        assert set(rebuilt.ground_values("data", "demographic")) == {"name", "address"}

    def test_malformed_payload_raises(self):
        with pytest.raises(VocabularyError):
            Vocabulary.from_dict({"name": "x"})
