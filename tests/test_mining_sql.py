"""Unit tests for the SQL pattern miner (Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner, build_analysis_sql
from repro.policy.rule import Rule
from repro.refinement.filtering import filter_practice


class TestBuildSql:
    def test_default_statement_shape(self):
        sql = build_analysis_sql("practice", MiningConfig())
        assert "GROUP BY data, purpose, authorized" in sql
        assert "COUNT(*) >= 5" in sql
        assert "COUNT(DISTINCT user) >= 2" in sql

    def test_custom_attributes(self):
        sql = build_analysis_sql(
            "t", MiningConfig(attributes=("data", "purpose"), min_support=3)
        )
        assert "GROUP BY data, purpose" in sql
        assert "COUNT(*) >= 3" in sql

    def test_unknown_attribute_rejected(self):
        with pytest.raises(MiningError):
            build_analysis_sql("t", MiningConfig(attributes=("bogus",)))

    def test_config_validation(self):
        with pytest.raises(MiningError):
            MiningConfig(min_support=0)
        with pytest.raises(MiningError):
            MiningConfig(min_distinct_users=0)
        with pytest.raises(MiningError):
            MiningConfig(attributes=())


class TestMine:
    def test_table1_pattern(self, table1_log):
        practice = filter_practice(table1_log)
        patterns = SqlPatternMiner().mine(practice, MiningConfig())
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.rule == Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        )
        assert pattern.support == 5
        assert pattern.distinct_users == 3

    def test_inclusive_support_boundary(self, table1_log):
        # exactly f occurrences must pass (the paper's worked example)
        practice = filter_practice(table1_log)
        assert SqlPatternMiner().mine(practice, MiningConfig(min_support=5))
        assert not SqlPatternMiner().mine(practice, MiningConfig(min_support=6))

    def test_distinct_user_condition(self, table1_log):
        practice = filter_practice(table1_log)
        assert not SqlPatternMiner().mine(
            practice, MiningConfig(min_distinct_users=4)
        )
        assert SqlPatternMiner().mine(practice, MiningConfig(min_distinct_users=3))

    def test_empty_log_yields_nothing(self):
        assert SqlPatternMiner().mine(AuditLog(), MiningConfig()) == ()

    def test_patterns_ordered_by_support(self):
        log = AuditLog()
        tick = 1
        for _ in range(3):
            for user in ("a", "b"):
                log.append(
                    make_entry(tick, user, "address", "billing", "clerk",
                               status=AccessStatus.EXCEPTION)
                )
                tick += 1
        for _ in range(5):
            for user in ("c", "d"):
                log.append(
                    make_entry(tick, user, "referral", "treatment", "nurse",
                               status=AccessStatus.EXCEPTION)
                )
                tick += 1
        patterns = SqlPatternMiner().mine(log, MiningConfig(min_support=2))
        assert [p.support for p in patterns] == [10, 6]

    def test_custom_attribute_subset(self, table1_log):
        practice = filter_practice(table1_log)
        config = MiningConfig(attributes=("data", "purpose"), min_support=5)
        patterns = SqlPatternMiner().mine(practice, config)
        assert patterns[0].rule == Rule.of(data="referral", purpose="registration")
