"""Tests for offline compaction of sealed segments."""

from __future__ import annotations

import pytest

from repro.audit.log import make_entry
from repro.store.manifest import load_manifest
from repro.store.store import AuditStore, StoreConfig


def _entry(tick: int):
    return make_entry(tick, f"user{tick % 3}", "referral", "registration", "nurse")


@pytest.fixture()
def fragmented(tmp_path):
    """A store with many tiny sealed segments, as after a long run."""
    directory = tmp_path / "s"
    with AuditStore(
        directory, StoreConfig(max_segment_entries=5, fsync="off")
    ) as store:
        store.extend(_entry(tick) for tick in range(1, 24))
        yield store


class TestCompaction:
    def test_merges_sealed_segments(self, fragmented):
        before = fragmented.stats()
        report = fragmented.compact()
        after = fragmented.stats()
        assert report.changed
        assert report.segments_before == 4
        assert report.segments_after < report.segments_before
        assert before.entries == after.entries == 23

    def test_content_identical_after_compaction(self, fragmented):
        before = list(fragmented)
        fragmented.compact()
        assert list(fragmented) == before

    def test_store_verifies_after_compaction(self, fragmented):
        fragmented.compact()
        assert fragmented.verify().ok

    def test_old_segment_files_deleted(self, fragmented):
        directory = fragmented.directory
        names_before = {p.name for p in directory.glob("seg-*.seg")}
        fragmented.compact()
        names_after = {p.name for p in directory.glob("seg-*.seg")}
        manifest = load_manifest(directory)
        expected = {meta.name for meta in manifest.sealed} | {manifest.active}
        assert names_after == expected
        assert names_after != names_before

    def test_queries_still_work_after_compaction(self, fragmented):
        fragmented.compact()
        assert [e.time for e in fragmented.scan_window(5, 9)] == [5, 6, 7, 8]
        hits = tuple(fragmented.lookup(user="user1"))
        assert all(entry.user == "user1" for entry in hits)
        assert [entry.time for entry in fragmented.tail(2)] == [22, 23]

    def test_compacted_store_reopens_cleanly(self, tmp_path):
        directory = tmp_path / "s"
        with AuditStore(
            directory, StoreConfig(max_segment_entries=5, fsync="off")
        ) as store:
            store.extend(_entry(tick) for tick in range(1, 24))
            store.compact()
        with AuditStore(directory, create=False) as store:
            assert len(store) == 23
            assert store.verify().ok

    def test_noop_when_nothing_to_merge(self, tmp_path):
        with AuditStore(tmp_path / "s", StoreConfig(fsync="off")) as store:
            store.extend(_entry(tick) for tick in range(1, 11))
            report = store.compact()
        assert not report.changed
        assert report.segments_before == report.segments_after

    def test_target_bytes_controls_output_granularity(self, fragmented):
        # A tiny target keeps segments small: compaction respects the bound
        # instead of always producing one giant file.
        report = fragmented.compact(target_bytes=200)
        assert report.changed
        assert report.segments_after > 1

    def test_append_continues_after_compaction(self, fragmented):
        fragmented.compact()
        fragmented.append(_entry(24))
        assert len(fragmented) == 24
        assert [entry.time for entry in fragmented.tail(1)] == [24]
