"""Unit tests for repro.coverage.engine (Algorithm 1, Definitions 9-10)."""

from __future__ import annotations

import pytest

from repro.coverage.engine import (
    completely_covers,
    compute_coverage,
    compute_entry_coverage,
)
from repro.errors import CoverageError
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.builtin import healthcare_vocabulary


def _rule(data: str, purpose: str = "treatment", role: str = "nurse") -> Rule:
    return Rule.of(data=data, purpose=purpose, authorized=role)


class TestFigure3:
    def test_paper_coverage_is_fifty_percent(self, vocabulary, fig3_policy, fig3_audit):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        assert report.ratio == pytest.approx(0.5)
        assert report.overlap.cardinality == 3
        assert report.reference.cardinality == 6

    def test_uncovered_rules_match_paper_narrative(
        self, vocabulary, fig3_policy, fig3_audit
    ):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        uncovered = set(report.uncovered)
        assert uncovered == {
            _rule("referral", "registration", "nurse"),
            _rule("psychiatry", "treatment", "nurse"),
            _rule("prescription", "billing", "clerk"),
        }

    def test_not_complete(self, vocabulary, fig3_policy, fig3_audit):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        assert not report.complete
        assert not completely_covers(fig3_policy, fig3_audit, vocabulary)


class TestSemantics:
    def test_self_coverage_is_complete(self, vocabulary, fig3_policy):
        report = compute_coverage(fig3_policy, fig3_policy, vocabulary)
        assert report.ratio == 1.0
        assert report.complete

    def test_coverage_is_directional(self, vocabulary, fig3_policy, fig3_audit):
        forward = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        backward = compute_coverage(fig3_audit, fig3_policy, vocabulary)
        # store covers 3 of 6 audit rules; audit covers 3 of 8 store rules
        assert forward.ratio == pytest.approx(0.5)
        assert backward.ratio == pytest.approx(3 / 8)

    def test_empty_reference_raises(self, vocabulary, fig3_policy):
        with pytest.raises(CoverageError):
            compute_coverage(fig3_policy, Policy([]), vocabulary)

    def test_empty_covering_gives_zero(self, vocabulary, fig3_audit):
        report = compute_coverage(Policy([]), fig3_audit, vocabulary)
        assert report.ratio == 0.0

    def test_ratio_bounds(self, vocabulary, fig3_policy, fig3_audit):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        assert 0.0 <= report.ratio <= 1.0

    def test_composite_reference_expands_before_comparison(self, vocabulary):
        # store grants one leaf; reference asks for the whole composite
        store = Policy([_rule("address", "billing", "clerk")])
        reference = Policy([_rule("demographic", "billing", "clerk")])
        report = compute_coverage(store, reference, vocabulary)
        assert report.ratio == pytest.approx(1 / 4)

    def test_shared_grounder_must_match_vocabulary(self, vocabulary, fig3_policy, fig3_audit):
        other = healthcare_vocabulary()
        grounder = Grounder(other)
        with pytest.raises(CoverageError):
            compute_coverage(fig3_policy, fig3_audit, vocabulary, grounder)

    def test_shared_grounder_reused(self, vocabulary, fig3_policy, fig3_audit):
        grounder = Grounder(vocabulary)
        first = compute_coverage(fig3_policy, fig3_audit, vocabulary, grounder)
        second = compute_coverage(fig3_policy, fig3_audit, vocabulary, grounder)
        assert first.ratio == second.ratio
        assert grounder.hits > 0

    def test_str_rendering(self, vocabulary, fig3_policy, fig3_audit):
        report = compute_coverage(fig3_policy, fig3_audit, vocabulary)
        assert "50.0%" in str(report)


class TestEntryCoverage:
    def test_table1_entry_coverage_is_thirty_percent(self, vocabulary, fig3_policy, table1_log):
        trace = [entry.to_rule() for entry in table1_log]
        report = compute_entry_coverage(fig3_policy, trace, vocabulary)
        assert report.ratio == pytest.approx(0.3)
        assert report.matched == 3
        assert report.total == 10

    def test_uncovered_entry_indices(self, vocabulary, fig3_policy, table1_log):
        trace = [entry.to_rule() for entry in table1_log]
        report = compute_entry_coverage(fig3_policy, trace, vocabulary)
        # t3, t4, t6, t7, t8, t9, t10 -> zero-based 2,3,5,6,7,8,9
        assert report.uncovered_entries == (2, 3, 5, 6, 7, 8, 9)

    def test_empty_trace_raises(self, vocabulary, fig3_policy):
        with pytest.raises(CoverageError):
            compute_entry_coverage(fig3_policy, [], vocabulary)

    def test_composite_entry_needs_full_expansion_covered(self, vocabulary):
        store = Policy([_rule("address", "billing", "clerk")])
        composite_entry = _rule("demographic", "billing", "clerk")
        report = compute_entry_coverage(store, [composite_entry], vocabulary)
        assert report.matched == 0
        full_store = Policy([_rule("demographic", "billing", "clerk")])
        report = compute_entry_coverage(full_store, [composite_entry], vocabulary)
        assert report.matched == 1

    def test_set_vs_entry_semantics_differ_on_duplicates(
        self, vocabulary, fig3_policy, table1_log
    ):
        # the documented paper discrepancy: dedup -> 50%, entries -> 30%
        audit_policy = table1_log.to_policy()
        set_report = compute_coverage(fig3_policy, audit_policy, vocabulary)
        entry_report = compute_entry_coverage(
            fig3_policy, iter(audit_policy), vocabulary
        )
        assert set_report.ratio == pytest.approx(0.5)
        assert entry_report.ratio == pytest.approx(0.3)
