"""Unit tests for temporal pattern mining."""

from __future__ import annotations

import pytest

from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig
from repro.mining.temporal import (
    TemporalPattern,
    hour_extractor,
    mine_temporal_patterns,
)
from repro.policy.conditions import TimeWindow
from repro.policy.rule import Rule


def _exception(tick: int, user: str, data: str = "referral",
               purpose: str = "registration", role: str = "nurse"):
    return make_entry(tick, user, data, purpose, role,
                      status=AccessStatus.EXCEPTION)


def _night_shift_log(ticks_per_hour: int = 1) -> AuditLog:
    """A practice performed only between 22:00 and 02:00, plus a
    round-the-clock one."""
    entries = []
    tick = 0
    users = ("a", "b", "c")
    for day in range(3):
        base = day * 24 * ticks_per_hour
        # the night practice: hours 22, 23, 0, 1 of each day
        for offset, hour in enumerate((22, 23, 24, 25)):
            entries.append(
                (base + hour * ticks_per_hour, users[offset % 3], "referral")
            )
        # an all-day practice: every 6 hours, rotating staff
        for index, hour in enumerate((1, 7, 13, 19)):
            entries.append(
                (base + hour * ticks_per_hour, users[index % 3], "prescription")
            )
    entries.sort()
    log = AuditLog()
    for tick, user, data in entries:
        log.append(_exception(tick, user, data))
    return log


class TestHourExtractor:
    def test_default_mapping(self):
        extract = hour_extractor()
        assert extract(_exception(0, "u")) == 0
        assert extract(_exception(23, "u")) == 23
        assert extract(_exception(25, "u")) == 1

    def test_ticks_per_hour(self):
        extract = hour_extractor(ticks_per_hour=10)
        assert extract(_exception(95, "u")) == 9

    def test_start_hour_offset(self):
        extract = hour_extractor(start_hour=8)
        assert extract(_exception(0, "u")) == 8

    def test_validation(self):
        with pytest.raises(MiningError):
            hour_extractor(ticks_per_hour=0)


class TestMineTemporalPatterns:
    def test_night_practice_gets_a_window(self):
        log = _night_shift_log()
        found = mine_temporal_patterns(
            log, MiningConfig(min_support=5), max_span=6
        )
        assert len(found) == 1
        temporal = found[0]
        assert temporal.pattern.rule == Rule.of(
            data="referral", purpose="registration", authorized="nurse"
        )
        assert temporal.window == TimeWindow(22, 2)
        assert temporal.concentration == 1.0

    def test_all_day_practice_excluded(self):
        log = _night_shift_log()
        found = mine_temporal_patterns(
            log, MiningConfig(min_support=5), max_span=6
        )
        rules = {t.pattern.rule for t in found}
        assert Rule.of(
            data="prescription", purpose="registration", authorized="nurse"
        ) not in rules

    def test_wider_span_catches_all_day_practice(self):
        log = _night_shift_log()
        found = mine_temporal_patterns(
            log, MiningConfig(min_support=5), max_span=23, min_concentration=1.0
        )
        # the 4x-daily practice needs a 19-hour window (1..19 inclusive)
        spans = {t.pattern.rule.value_of("data"): t.window.span for t in found}
        assert spans["referral"] == 4
        assert spans["prescription"] == 19

    def test_window_is_minimal(self):
        log = _night_shift_log()
        found = mine_temporal_patterns(log, MiningConfig(min_support=5), max_span=12)
        assert found[0].window.span == 4

    def test_concentration_threshold(self):
        log = AuditLog()
        tick = 0
        # 9 occurrences at hour 3, 1 at hour 15 -> 90% in a 1-hour window
        for day in range(9):
            log.append(_exception(day * 24 + 3, f"u{day % 3}"))
        log.append(_exception(9 * 24 + 15, "u0"))
        strict = mine_temporal_patterns(
            log, MiningConfig(min_support=5), min_concentration=0.95
        )
        lenient = mine_temporal_patterns(
            log, MiningConfig(min_support=5), min_concentration=0.9
        )
        assert strict == () or strict[0].window.span > 1
        assert lenient[0].window == TimeWindow(3, 4)
        assert lenient[0].concentration == pytest.approx(0.9)

    def test_ticks_per_hour_scaling(self):
        log = _night_shift_log(ticks_per_hour=5)
        found = mine_temporal_patterns(
            log,
            MiningConfig(min_support=5),
            hour_of=hour_extractor(ticks_per_hour=5),
            max_span=6,
        )
        assert found[0].window == TimeWindow(22, 2)

    def test_empty_log(self):
        assert mine_temporal_patterns(AuditLog()) == ()

    def test_validation(self):
        log = _night_shift_log()
        with pytest.raises(MiningError):
            mine_temporal_patterns(log, min_concentration=0.0)
        with pytest.raises(MiningError):
            mine_temporal_patterns(log, max_span=24)

    def test_to_conditional_rule(self, vocabulary):
        log = _night_shift_log()
        found = mine_temporal_patterns(log, MiningConfig(min_support=5), max_span=6)
        conditional = found[0].to_conditional_rule()
        request = Rule.of(data="referral", purpose="registration", authorized="nurse")
        assert conditional.covers(request, 23, vocabulary)
        assert not conditional.covers(request, 10, vocabulary)

    def test_str(self):
        log = _night_shift_log()
        found = mine_temporal_patterns(log, MiningConfig(min_support=5), max_span=6)
        assert "100%" in str(found[0])
