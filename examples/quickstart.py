"""Quickstart: the paper's own worked examples, end to end.

Runs the Figure 3 coverage computation (Section 3.3) and the Table 1
refinement use case (Section 5) against the library's public API.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import compute_coverage, compute_entry_coverage, refine
from repro.coverage import analyse_gaps
from repro.workload import (
    figure3_audit_policy,
    figure3_policy_store,
    figure3_vocabulary,
    table1_audit_log,
)


def main() -> None:
    vocabulary = figure3_vocabulary()
    store = figure3_policy_store()
    audit_policy = figure3_audit_policy()

    print("=== Figure 3: policy coverage ===")
    report = compute_coverage(store.policy(), audit_policy, vocabulary)
    print(f"store range   : {report.covering.cardinality} ground rules")
    print(f"audit range   : {report.reference.cardinality} ground rules")
    print(f"coverage      : {report}")
    print()
    print("Why the three accesses fall outside the policy:")
    gaps = analyse_gaps(report, store.policy(), vocabulary)
    for deviation in gaps.deviations:
        print(f"  - {deviation.describe()}")
    print()

    print("=== Section 5: refinement over the Table 1 audit trail ===")
    log = table1_audit_log()
    result = refine(store.policy(), log, vocabulary)
    print(result.summary())
    print()

    print("Adopting the candidate rule(s)...")
    for pattern in result.useful_patterns:
        store.add(pattern.rule, added_by="quickstart", origin="refinement")
    after = compute_entry_coverage(
        store.policy(), (entry.to_rule() for entry in log), vocabulary
    )
    print(f"entry coverage: {result.entry_coverage.ratio:.0%} -> {after.ratio:.0%}")
    print()
    print("Policy store history:")
    for event in store.history:
        print(f"  r{event.revision} {event.action:6s} {event.rule} by {event.added_by}")


if __name__ == "__main__":
    main()
