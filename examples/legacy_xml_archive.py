"""Legacy hierarchical records + time-scoped refinement (the extensions).

The paper's conclusion calls for adapting PRIMA to "hierarchical,
XML-like structures"; Section 4.2 notes the model "could be augmented
with the inclusion of conditions".  This example exercises both:

1. parse a legacy XML ward archive (from-scratch reader);
2. serve enforced subtree retrievals — policy pruning, consent,
   break-the-glass — through the tree enforcer;
3. simulate a fortnight of night-shift break-the-glass traffic and let
   the temporal miner propose a *time-windowed* conditional rule rather
   than a blanket grant.

    python examples/legacy_xml_archive.py
"""

from __future__ import annotations

from repro import ComplianceAuditor, ConsentStore, PolicyStore, healthcare_vocabulary
from repro.audit.schema import AccessStatus
from repro.mining import MiningConfig, hour_extractor, mine_temporal_patterns
from repro.policy import parse_rule
from repro.refinement import filter_practice
from repro.treestore import TreeBinding, TreeEnforcer, dumps, loads

ARCHIVE_XML = """\
<?xml version="1.0"?>
<!-- legacy ward export -->
<patients>
  <patient id="p1">
    <demographics><name>Alice Ames</name><address>12 Elm St</address></demographics>
    <record>
      <prescription>amoxicillin</prescription>
      <referral>cardiology</referral>
      <psychiatry>notes-a</psychiatry>
    </record>
  </patient>
  <patient id="p2">
    <demographics><name>Bob Brown</name><address>9 Oak Ave</address></demographics>
    <record>
      <prescription>ibuprofen</prescription>
      <referral>orthopedics</referral>
      <psychiatry>notes-b</psychiatry>
    </record>
  </patient>
</patients>
"""


def build_enforcer() -> TreeEnforcer:
    vocabulary = healthcare_vocabulary()
    store = PolicyStore()
    store.add(parse_rule("ALLOW nurse TO USE medical_records FOR treatment"))
    store.add(parse_rule("ALLOW physician TO USE psychiatry FOR treatment"))
    enforcer = TreeEnforcer(
        store, ConsentStore(vocabulary), ComplianceAuditor(), vocabulary
    )
    enforcer.bind_document(
        "ward",
        TreeBinding(
            patient_path="/patients/patient",
            patient_attribute="id",
            categories={
                "//demographics/name": "name",
                "//demographics/address": "address",
                "//record/prescription": "prescription",
                "//record/referral": "referral",
                "//record/psychiatry": "psychiatry",
            },
        ),
    )
    return enforcer


def main() -> None:
    document = loads(ARCHIVE_XML, name="ward")
    print(f"parsed legacy archive: {document.size()} elements")
    enforcer = build_enforcer()

    print()
    print("=== enforced subtree retrieval (nurse, treatment) ===")
    result = enforcer.retrieve(
        "nurse_kim", "nurse", "treatment", document, "/patients/patient"
    )
    print(f"masked categories: {result.categories_masked}")
    for subtree in result.subtrees:
        from repro.treestore import TreeDocument

        print(dumps(TreeDocument(subtree)))

    print()
    print("=== night-shift traffic: archive clerks file referrals 22:00-06:00 ===")
    tick = 0
    for night in range(14):
        base = night * 24
        for offset, user in ((22, "clerk_a"), (23, "clerk_b"), (24 + 1, "clerk_c")):
            tick = base + offset
            # one tick per hour: jump the audit clock to the access time
            enforcer.auditor.clock.advance_to(tick)
            enforcer.retrieve(
                user, "clerk", "registration", document,
                "//record/referral", exception=True,
            )
    log = enforcer.auditor.log
    exceptions = log.exceptions()
    print(f"collected {len(exceptions)} break-the-glass entries")

    practice = filter_practice(log)
    temporal = mine_temporal_patterns(
        practice,
        MiningConfig(min_support=5),
        hour_of=hour_extractor(ticks_per_hour=1),
        max_span=10,
    )
    print()
    print("temporal refinement proposes:")
    for item in temporal:
        print(f"  {item.to_conditional_rule().to_dsl()}")
        print(f"    (support={item.pattern.support}, "
              f"users={item.pattern.distinct_users}, "
              f"concentration={item.concentration:.0%})")
    assert temporal, "expected a night-shift window"


if __name__ == "__main__":
    main()
