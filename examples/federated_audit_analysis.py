"""Federated audit analysis across hospital departments.

Simulates three departments, each with its own audit log, consolidates
them through the Audit Management federation layer, runs the paper's
Algorithm 5 SQL directly against the *virtual* union view, and finishes
with Apriori + association rules — the Section 5 future-work upgrade that
finds cross-role correlations plain GROUP BY cannot see.

    python examples/federated_audit_analysis.py
"""

from __future__ import annotations

import random

from repro import AuditFederation, Database, refine
from repro.audit import AuditLog
from repro.mining import (
    AprioriPatternMiner,
    MiningConfig,
    derive_rules,
    transactions_from_log,
)
from repro.mining.apriori import apriori
from repro.refinement import filter_practice
from repro.vocab import healthcare_vocabulary
from repro.workload import (
    SyntheticHospitalEnvironment,
    WorkloadConfig,
    build_hospital,
)


def main() -> None:
    vocabulary = healthcare_vocabulary()
    hospital = build_hospital(vocabulary, departments=3, staff_per_role=3, seed=19)
    store = hospital.documented_store(0.5, random.Random(19))
    environment = SyntheticHospitalEnvironment(
        hospital, WorkloadConfig(accesses_per_round=2000, seed=19)
    )

    federation = AuditFederation("st-elsewhere")
    for index, department in enumerate(hospital.departments):
        window = environment.simulate_round(index, store)
        federation.register(department.name, AuditLog(window, name=department.name))
    print(f"federated sites: {federation.sites} ({len(federation)} entries total)")

    print()
    print("=== Algorithm 5 over the virtual federated view ===")
    analysis_db = Database()
    federation.register_view(analysis_db)
    result = analysis_db.query(
        "SELECT site, data, purpose, authorized, COUNT(*) AS freq "
        "FROM federated_audit WHERE status = 0 "
        "GROUP BY site, data, purpose, authorized "
        "HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) >= 2 "
        "ORDER BY freq DESC LIMIT 8"
    )
    for row in result:
        print(f"  {row}")

    print()
    print("=== organisation-wide refinement over the consolidated log ===")
    consolidated = federation.consolidated_log()
    outcome = refine(store.policy(), consolidated, vocabulary)
    print(outcome.summary())

    print()
    print("=== Apriori advisories (future-work extension) ===")
    practice = filter_practice(consolidated)
    config = MiningConfig(min_support=10)
    miner = AprioriPatternMiner()
    for correlation in miner.correlations(practice, config)[:6]:
        print(f"  correlated: {correlation}")
    transactions = transactions_from_log(practice, config.attributes)
    itemsets = apriori(transactions, config.min_support)
    for rule in derive_rules(itemsets, len(transactions), min_confidence=0.7)[:6]:
        print(f"  advisory  : {rule}")


if __name__ == "__main__":
    main()
