"""A working clinic on the HDB middleware: enforcement, consent, auditing.

Sets up a clinical database behind Active Enforcement, exercises the three
access paths the paper describes — sanctioned, denied, and break-the-glass
— plus patient consent masking, then shows the audit trail Compliance
Auditing produced and separates suspected violations from informal
practice.

    python examples/break_the_glass_clinic.py
"""

from __future__ import annotations

from repro import HdbControlCenter, TableBinding, healthcare_vocabulary
from repro.audit import classify_exceptions
from repro.errors import AccessDeniedError


def build_clinic() -> HdbControlCenter:
    center = HdbControlCenter(healthcare_vocabulary())
    center.database.execute(
        "CREATE TABLE patients (pid TEXT NOT NULL, name TEXT, address TEXT, "
        "prescription TEXT, referral TEXT, psychiatry TEXT)"
    )
    center.database.execute(
        "INSERT INTO patients VALUES "
        "('p1', 'Alice Ames', '12 Elm St', 'amoxicillin', 'cardiology', 'notes-a'), "
        "('p2', 'Bob Brown', '9 Oak Ave', 'ibuprofen', 'orthopedics', 'notes-b'), "
        "('p3', 'Cara Cole', '3 Fir Rd', 'statins', 'neurology', 'notes-c')"
    )
    center.bind_table(
        TableBinding(
            "patients",
            "pid",
            {
                "name": "name",
                "address": "address",
                "prescription": "prescription",
                "referral": "referral",
                "psychiatry": "psychiatry",
            },
        )
    )
    center.define_rules(
        [
            "ALLOW nurse TO USE medical_records FOR treatment",
            "ALLOW physician TO USE psychiatry FOR treatment",
            "ALLOW clerk TO USE demographic FOR billing",
        ]
    )
    return center


def main() -> None:
    clinic = build_clinic()

    print("=== sanctioned access ===")
    outcome = clinic.run(
        "nurse_kim", "nurse", "treatment",
        "SELECT prescription, referral FROM patients",
    )
    print(f"rewritten : {outcome.rewritten_sql}")
    for row in outcome.result:
        print(f"  {row}")

    print()
    print("=== cell masking: nurse asks for psychiatry notes too ===")
    outcome = clinic.run(
        "nurse_kim", "nurse", "treatment",
        "SELECT prescription, psychiatry FROM patients",
    )
    print(f"masked categories: {outcome.categories_masked}")
    for row in outcome.result:
        print(f"  {row}")

    print()
    print("=== denial, then break the glass ===")
    try:
        clinic.run("clerk_jo", "clerk", "billing",
                   "SELECT prescription FROM patients")
    except AccessDeniedError as error:
        print(f"denied: {error}")
    outcome = clinic.run(
        "clerk_jo", "clerk", "billing",
        "SELECT prescription FROM patients", exception=True,
    )
    print(f"break-the-glass returned {len(outcome.result)} rows "
          f"(status={outcome.status.name})")

    print()
    print("=== patient consent ===")
    clinic.record_consent("p2", "billing", allowed=False, data="demographic")
    outcome = clinic.run(
        "clerk_jo", "clerk", "billing", "SELECT name, address FROM patients"
    )
    print(f"cells masked by consent: {outcome.cells_masked_by_consent}")
    for row in outcome.result:
        print(f"  {row}")

    print()
    print("=== the audit trail Compliance Auditing wrote ===")
    print(f"{'t':>3} {'op':>3} {'user':12} {'data':14} {'purpose':12} "
          f"{'role':8} {'status'}")
    for entry in clinic.audit_log:
        print(
            f"{entry.time:>3} {int(entry.op):>3} {entry.user:12} {entry.data:14} "
            f"{entry.purpose:12} {entry.authorized:8} "
            f"{'EXCEPTION' if entry.is_exception else 'regular'}"
        )

    print()
    print("=== violation vs informal practice ===")
    report = classify_exceptions(clinic.audit_log)
    for item in report.classified:
        print(
            f"  {item.verdict:9s} {item.entry.to_rule()} "
            f"(support={item.support}, users={item.distinct_users})"
        )


if __name__ == "__main__":
    main()
