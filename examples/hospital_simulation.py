"""Closed-loop refinement over a synthetic hospital.

Builds the synthetic hospital (the stand-in for the audit-trail study
that motivated the paper), seeds a policy store that documents only 40 %
of the true clinical workflow, and drives six operate→audit→refine→amend
rounds.  Watch the break-the-glass rate collapse and entry coverage climb
as PRIMA codifies the informal practice.

    python examples/hospital_simulation.py
"""

from __future__ import annotations

import random

from repro import RefinementConfig, RefinementLoop, ThresholdReview
from repro.experiments.reporting import format_table
from repro.mining import MiningConfig
from repro.vocab import healthcare_vocabulary
from repro.workload import (
    SyntheticHospitalEnvironment,
    WorkloadConfig,
    build_hospital,
)


def main() -> None:
    vocabulary = healthcare_vocabulary()
    hospital = build_hospital(vocabulary, departments=3, staff_per_role=4, seed=7)
    store = hospital.documented_store(0.4, random.Random(7))
    print(
        f"hospital: {len(hospital.all_staff())} staff, "
        f"{len(hospital.practice_rules())} true workflow practices, "
        f"{len(store)} documented at deployment"
    )

    environment = SyntheticHospitalEnvironment(
        hospital,
        WorkloadConfig(
            accesses_per_round=5000, noise_rate=0.05, violation_rate=0.02, seed=7
        ),
    )
    loop = RefinementLoop(
        environment=environment,
        store=store,
        vocabulary=vocabulary,
        review=ThresholdReview(min_support=10, min_distinct_users=2),
        config=RefinementConfig(
            mining=MiningConfig(min_support=5, min_distinct_users=2),
            exclude_suspected_violations=True,
        ),
    )
    result = loop.run(6)

    print()
    print(
        format_table(
            ["round", "entries", "exception rate", "entry coverage",
             "patterns", "accepted", "store size"],
            [
                [r.round_index, r.entries, f"{r.exception_rate:.1%}",
                 f"{r.entry_coverage_after:.1%}", r.patterns_mined,
                 r.rules_accepted, r.store_size_after]
                for r in result.rounds
            ],
            title="refinement loop (threshold-gated review, violation screening on)",
        )
    )

    print()
    print("rules the loop codified (latest five):")
    refined = [
        record for record in store.records() if record.origin == "refinement"
    ]
    for record in refined[-5:]:
        print(f"  {record.rule}   [{record.note}]")
    print(f"... {len(refined)} refinement-origin rules in total")


if __name__ == "__main__":
    main()
