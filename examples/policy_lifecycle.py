"""The full policy lifecycle a privacy office would actually run.

1. author the initial policy in the DSL and persist the versioned store;
2. operate the synthetic hospital for a few days;
3. file the compliance report (coverage, trend, weakest corners, triage);
4. review and adopt refinement candidates, persist the amended store;
5. evolve the vocabulary (split a category) and check the migration
   impact before deploying it.

    python examples/policy_lifecycle.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import healthcare_vocabulary
from repro.audit.reports import compliance_report
from repro.policy import parse_policy, store_io
from repro.policy.store import PolicyStore
from repro.refinement import ReviewQueue, refine
from repro.vocab.evolution import assess_policy_impact
from repro.workload import SyntheticHospitalEnvironment, WorkloadConfig, build_hospital

INITIAL_POLICY = """
# St. Elsewhere privacy policy, v1 (authored by the privacy office)
ALLOW nurse TO USE medical_records FOR treatment
ALLOW nurse TO USE demographic FOR treatment
ALLOW physician TO USE clinical FOR treatment
ALLOW physician TO USE clinical FOR diagnosis
ALLOW clerk TO USE demographic FOR billing
ALLOW clerk TO USE insurance FOR billing
ALLOW registrar TO USE demographic FOR registration
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="prima-lifecycle-"))
    vocabulary = healthcare_vocabulary()

    # -- 1. author and persist ------------------------------------------
    store = PolicyStore("st-elsewhere")
    for rule in parse_policy(INITIAL_POLICY):
        store.add(rule, added_by="privacy-office", origin="manual")
    store_path = store_io.save(store, workdir / "policy_store.json")
    print(f"authored {len(store)} rules -> {store_path}")

    # -- 2. operate ------------------------------------------------------
    hospital = build_hospital(vocabulary, seed=47)
    environment = SyntheticHospitalEnvironment(
        hospital, WorkloadConfig(accesses_per_round=4000, seed=47)
    )
    log = environment.simulate_round(0, store)
    print(f"operated one interval: {len(log)} accesses, "
          f"{log.exception_rate():.1%} break-the-glass")

    # -- 3. report --------------------------------------------------------
    report = compliance_report(store.policy(), log, vocabulary)
    print()
    print(report.render(max_items=3))

    # -- 4. review and amend ----------------------------------------------
    result = refine(store.policy(), log, vocabulary)
    queue = ReviewQueue(result.useful_patterns)
    for pattern in result.useful_patterns:
        if pattern.distinct_users >= 3:
            queue.accept(pattern, reviewer="privacy-office",
                         note="recurring multi-user practice")
        else:
            queue.investigate(pattern, reviewer="privacy-office",
                              note="needs follow-up")
    adopted = queue.apply(store)
    store_io.save(store, workdir / "policy_store.json")
    print()
    print(f"review: {adopted} rules adopted, "
          f"{len(queue.pending())} pending, store revision {store.revision}")

    # -- 5. evolve the vocabulary safely -----------------------------------
    evolved = healthcare_vocabulary()
    data = evolved.tree_for("data")
    data.add("bloodwork", parent="lab_results")
    data.add("imaging", parent="lab_results")
    impact = assess_policy_impact(store.policy(), vocabulary, evolved)
    print()
    print(impact.summary())
    if not impact.safe:
        print("-> migration blocked: review the widened/orphaned rules first")


if __name__ == "__main__":
    main()
